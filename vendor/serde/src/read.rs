//! Minimal recursive-descent JSON tokenizer shared by `serde` impls, the
//! derive-generated code, and `serde_json`.

use crate::Error;

/// Byte-cursor over a JSON document.
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Start parsing at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Parser { bytes, pos: 0 }
    }

    /// Current byte offset (for error reporting).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Skip whitespace; true when no input remains.
    pub fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos >= self.bytes.len()
    }

    /// Error unless the entire input has been consumed.
    pub fn expect_end(&mut self) -> Result<(), Error> {
        if self.at_end() {
            Ok(())
        } else {
            Err(Error::msg("trailing characters after JSON value").at(self.pos))
        }
    }

    pub fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// Next non-whitespace byte without consuming it.
    pub fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    /// Consume `expected` if it is the next non-whitespace byte.
    pub fn consume_byte(&mut self, expected: u8) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Require `expected` as the next non-whitespace byte.
    pub fn expect_byte(&mut self, expected: u8) -> Result<(), Error> {
        if self.consume_byte(expected) {
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{}`", expected as char)).at(self.pos))
        }
    }

    /// Consume the keyword (`null`, `true`, `false`) if present.
    pub fn consume_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let end = self.pos + kw.len();
        if self.bytes.get(self.pos..end) == Some(kw.as_bytes())
            && !matches!(self.bytes.get(end), Some(b) if b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos = end;
            true
        } else {
            false
        }
    }

    /// Require a keyword.
    pub fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.consume_keyword(kw) {
            Ok(())
        } else {
            Err(Error::msg(format!("expected `{kw}`")).at(self.pos))
        }
    }

    /// Slice out one JSON number token; returns `(token, start_offset)`.
    pub fn number_token(&mut self) -> Result<(&'a str, usize), Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        if self.pos == start || (self.pos == start + 1 && self.bytes[start] == b'-') {
            return Err(Error::msg("expected number").at(start));
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid utf-8 in number").at(start))?;
        Ok((tok, start))
    }

    /// Parse a JSON string literal (with escape handling).
    pub fn string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let at = self.pos;
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string").at(at))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape").at(at))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error::msg("unpaired surrogate").at(at));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate").at(at));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid codepoint").at(at))?,
                            );
                        }
                        other => {
                            return Err(
                                Error::msg(format!("invalid escape `\\{}`", other as char)).at(at)
                            )
                        }
                    }
                }
                _ => {
                    // Copy a full UTF-8 sequence starting at `at`.
                    let len =
                        utf8_len(b).ok_or_else(|| Error::msg("invalid utf-8 in string").at(at))?;
                    let end = at + len;
                    let chunk = self
                        .bytes
                        .get(at..end)
                        .ok_or_else(|| Error::msg("truncated utf-8 in string").at(at))?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| Error::msg("invalid utf-8 in string").at(at))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let at = self.pos;
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape").at(at))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid \\u escape").at(at))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::msg("invalid \\u escape").at(at))?;
        self.pos += 4;
        Ok(v)
    }

    /// Skip one complete JSON value of any type (used to reject-with-context
    /// or ignore unknown content).
    pub fn skip_value(&mut self) -> Result<(), Error> {
        match self.peek() {
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b'{') => {
                self.expect_byte(b'{')?;
                if self.consume_byte(b'}') {
                    return Ok(());
                }
                loop {
                    self.string()?;
                    self.expect_byte(b':')?;
                    self.skip_value()?;
                    if self.consume_byte(b',') {
                        continue;
                    }
                    return self.expect_byte(b'}');
                }
            }
            Some(b'[') => {
                self.expect_byte(b'[')?;
                if self.consume_byte(b']') {
                    return Ok(());
                }
                loop {
                    self.skip_value()?;
                    if self.consume_byte(b',') {
                        continue;
                    }
                    return self.expect_byte(b']');
                }
            }
            Some(b't') => self.expect_keyword("true"),
            Some(b'f') => self.expect_keyword("false"),
            Some(b'n') => self.expect_keyword("null"),
            Some(_) => self.number_token().map(|_| ()),
            None => Err(Error::msg("unexpected end of input").at(self.pos)),
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skips_nested_values() {
        let doc = br#"{"a": [1, {"b": "x"}, null], "c": -1.5e3}  "#;
        let mut p = Parser::new(doc);
        p.skip_value().unwrap();
        assert!(p.at_end());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let mut p = Parser::new("\"😀\"".as_bytes());
        assert_eq!(p.string().unwrap(), "\u{1F600}");
    }

    #[test]
    fn rejects_garbage() {
        let mut p = Parser::new(b"not json");
        assert!(p.skip_value().is_err() || !p.at_end());
    }
}
