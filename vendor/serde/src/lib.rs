//! Offline, JSON-only stand-in for the `serde` crate.
//!
//! The growth container has no network access and no registry cache, so the
//! real serde cannot be fetched. This crate keeps the same *surface* the
//! workspace uses — `serde::{Serialize, Deserialize}` derives,
//! `serde::de::DeserializeOwned`, field attributes `#[serde(skip)]` and
//! `#[serde(default)]` — but is specialised to JSON: `Serialize` writes JSON
//! text directly and `Deserialize` reads from a small recursive-descent
//! parser. `serde_json` (also vendored) is a thin façade over this machinery.
//!
//! Guarantees the workspace relies on:
//! - derived round-trips are loss-free (floats use shortest-round-trip
//!   formatting; map/set orders are canonicalised on write);
//! - unknown enum variants and unknown struct fields are hard errors;
//! - missing `Option` fields deserialize to `None`, `#[serde(default)]`
//!   containers/fields fall back to `Default`.

pub use serde_derive::{Deserialize, Serialize};

pub mod read;

use read::Parser;
use std::fmt;

/// Serialisation/deserialisation error (shared with `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    /// Byte offset in the input, when known.
    pub offset: Option<usize>,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn msg(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
            offset: None,
        }
    }

    /// Attach a byte offset.
    pub fn at(mut self, offset: usize) -> Self {
        self.offset = Some(offset);
        self
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} at byte {o}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

/// Types that can write themselves as JSON.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);

    /// Append this value as a JSON *object key*. Values whose encoding is
    /// already a JSON string reuse it; everything else is re-quoted so the
    /// output stays valid JSON.
    fn write_json_key(&self, out: &mut String) {
        let mut tmp = String::new();
        self.write_json(&mut tmp);
        if tmp.starts_with('"') {
            out.push_str(&tmp);
        } else {
            write_escaped_str(&tmp, out);
        }
    }
}

/// Types that can read themselves from JSON.
pub trait Deserialize: Sized {
    /// Parse one JSON value.
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error>;

    /// Parse from a JSON *object key* (always a string on the wire). The
    /// default tries the raw key text as a JSON document first (numbers,
    /// structured keys), then the re-quoted form (plain strings).
    fn read_json_key(key: &str) -> Result<Self, Error> {
        let mut p = Parser::new(key.as_bytes());
        if let Ok(v) = Self::read_json(&mut p) {
            if p.at_end() {
                return Ok(v);
            }
        }
        let mut quoted = String::new();
        write_escaped_str(key, &mut quoted);
        let mut p = Parser::new(quoted.as_bytes());
        Self::read_json(&mut p)
    }

    /// Value for a field absent from the input. Overridden by `Option` to
    /// yield `None`; everything else errors like real serde.
    fn missing_field(field: &'static str) -> Result<Self, Error> {
        Err(Error::msg(format!("missing field `{field}`")))
    }
}

/// `serde::ser` compatibility alias.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// `serde::de` compatibility: `DeserializeOwned` is what generic byte-level
/// transports (e.g. the pipeline's wire mode) bound on.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// Owned deserialisation — trivially satisfied here since the vendored
    /// `Deserialize` has no borrowed variants.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Escape `s` as a JSON string (with quotes) onto `out`.
pub fn write_escaped_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
                let (tok, at) = p.number_token()?;
                tok.parse::<$t>().map_err(|e| {
                    Error::msg(format!("invalid {}: {e}", stringify!($t))).at(at)
                })
            }
        }
    )*};
}

int_impl!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    // Rust's Display is shortest-round-trip for floats.
                    out.push_str(&self.to_string());
                } else {
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
                if p.consume_keyword("null") {
                    return Ok(<$t>::NAN);
                }
                let (tok, at) = p.number_token()?;
                tok.parse::<$t>().map_err(|e| {
                    Error::msg(format!("invalid {}: {e}", stringify!($t))).at(at)
                })
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        if p.consume_keyword("true") {
            Ok(true)
        } else if p.consume_keyword("false") {
            Ok(false)
        } else {
            Err(Error::msg("expected boolean").at(p.offset()))
        }
    }
}

impl Serialize for char {
    fn write_json(&self, out: &mut String) {
        write_escaped_str(&self.to_string(), out);
    }
}

impl Deserialize for char {
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        let at = p.offset();
        let s = p.string()?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string").at(at)),
        }
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_escaped_str(self, out);
    }
}

impl Deserialize for String {
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.string()
    }

    fn read_json_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_escaped_str(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }

    fn write_json_key(&self, out: &mut String) {
        (**self).write_json_key(out);
    }
}

impl Serialize for () {
    fn write_json(&self, out: &mut String) {
        out.push_str("null");
    }
}

impl Deserialize for () {
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.expect_keyword("null")
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        if p.consume_keyword("null") {
            Ok(None)
        } else {
            Ok(Some(T::read_json(p)?))
        }
    }

    fn missing_field(_field: &'static str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(Box::new(T::read_json(p)?))
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(std::sync::Arc::new(T::read_json(p)?))
    }
}

// Sequences ------------------------------------------------------------------

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.write_json(out);
    }
    out.push(']');
}

fn read_seq<T: Deserialize>(p: &mut Parser<'_>) -> Result<Vec<T>, Error> {
    p.expect_byte(b'[')?;
    let mut items = Vec::new();
    if p.consume_byte(b']') {
        return Ok(items);
    }
    loop {
        items.push(T::read_json(p)?);
        if p.consume_byte(b',') {
            continue;
        }
        p.expect_byte(b']')?;
        return Ok(items);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        read_seq(p)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        let at = p.offset();
        let items: Vec<T> = read_seq(p)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {n}")).at(at))
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(read_seq(p)?.into())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(read_seq::<T>(p)?.into_iter().collect())
    }
}

impl<T: Serialize + Ord + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn write_json(&self, out: &mut String) {
        // Canonical (sorted) order so equal sets always encode identically.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        write_seq(items.into_iter().map(|r| &*Box::leak(Box::new(r))), out);
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(read_seq::<T>(p)?.into_iter().collect())
    }
}

// Tuples ---------------------------------------------------------------------

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
                p.expect_byte(b'[')?;
                let mut first = true;
                let tuple = ($(
                    {
                        if !first { p.expect_byte(b',')?; }
                        first = false;
                        $name::read_json(p)?
                    },
                )+);
                let _ = first;
                p.expect_byte(b']')?;
                Ok(tuple)
            }
        }
    )+};
}

tuple_impl!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

// Maps -----------------------------------------------------------------------

fn write_map_entries<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
    out: &mut String,
) {
    out.push('{');
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        k.write_json_key(out);
        out.push(':');
        v.write_json(out);
    }
    out.push('}');
}

fn read_map_entries<K: Deserialize, V: Deserialize>(
    p: &mut Parser<'_>,
) -> Result<Vec<(K, V)>, Error> {
    p.expect_byte(b'{')?;
    let mut entries = Vec::new();
    if p.consume_byte(b'}') {
        return Ok(entries);
    }
    loop {
        let at = p.offset();
        let key = p.string()?;
        let key = K::read_json_key(&key).map_err(|e| e.at(at))?;
        p.expect_byte(b':')?;
        let value = V::read_json(p)?;
        entries.push((key, value));
        if p.consume_byte(b',') {
            continue;
        }
        p.expect_byte(b'}')?;
        return Ok(entries);
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn write_json(&self, out: &mut String) {
        write_map_entries(self.iter(), out);
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(read_map_entries::<K, V>(p)?.into_iter().collect())
    }
}

impl<K: Serialize + Ord + std::hash::Hash, V: Serialize> Serialize
    for std::collections::HashMap<K, V>
{
    fn write_json(&self, out: &mut String) {
        // Canonical (sorted) order: HashMap iteration order is per-instance
        // random, which would make snapshots non-deterministic.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        write_map_entries(entries.into_iter(), out);
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn read_json(p: &mut Parser<'_>) -> Result<Self, Error> {
        Ok(read_map_entries::<K, V>(p)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    fn from_json<T: Deserialize>(s: &str) -> T {
        let mut p = Parser::new(s.as_bytes());
        let v = T::read_json(&mut p).unwrap();
        assert!(p.at_end(), "trailing input in {s:?}");
        v
    }

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_json(&42u64), "42");
        assert_eq!(from_json::<u64>("42"), 42);
        assert_eq!(to_json(&-1.5f64), "-1.5");
        assert_eq!(from_json::<f64>("-1.5"), -1.5);
        assert_eq!(to_json(&"a\"b\n".to_owned()), r#""a\"b\n""#);
        assert_eq!(from_json::<String>(r#""a\"b\n""#), "a\"b\n");
        assert_eq!(from_json::<Option<u32>>("null"), None);
        assert_eq!(from_json::<Option<u32>>("7"), Some(7));
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [
            0.1f64,
            1.0 / 3.0,
            1e-12,
            123456.789,
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            let s = to_json(&f);
            assert_eq!(from_json::<f64>(&s), f, "{s}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, "a".to_owned()), (2, "b".to_owned())];
        assert_eq!(from_json::<Vec<(u32, String)>>(&to_json(&v)), v);
        let mut m = std::collections::HashMap::new();
        m.insert(3u64, vec![1i64, -2]);
        m.insert(1u64, vec![]);
        assert_eq!(to_json(&m), r#"{"1":[],"3":[1,-2]}"#);
        assert_eq!(
            from_json::<std::collections::HashMap<u64, Vec<i64>>>(&to_json(&m)),
            m
        );
    }

    #[test]
    fn unicode_escapes() {
        let s = "héllo \u{1F600} \u{0007}".to_owned();
        assert_eq!(from_json::<String>(&to_json(&s)), s);
        assert_eq!(from_json::<String>(r#""😀""#), "\u{1F600}");
    }
}
