//! Offline stand-in for `serde_json`, backed by the vendored JSON-only
//! `serde`. Provides the subset the workspace uses: `to_vec` / `to_string` /
//! `to_string_pretty` / `from_slice` / `from_str`, a dynamic [`Value`] with
//! the `json!` macro, and [`Map`] (a `BTreeMap`, so object keys are always
//! sorted and output is deterministic).

// The `json!` array arm expands to a push-per-element tt-muncher; the
// init-then-push shape is inherent to the macro.
#![allow(clippy::vec_init_then_push)]

use serde::read::Parser;
use serde::{Deserialize, Serialize};

pub use serde::Error;

/// `serde_json::Result` alias.
pub type Result<T> = std::result::Result<T, Error>;

/// JSON object representation. Real serde_json preserves insertion order by
/// default; this stand-in sorts keys, which the workspace's determinism
/// tests rely on.
pub type Map = std::collections::BTreeMap<String, Value>;

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serialize `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(prettify(&to_string(value)?))
}

/// Serialize `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Deserialize `T` from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    from_slice(text.as_bytes())
}

/// Deserialize `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let mut p = Parser::new(bytes);
    let value = T::read_json(&mut p)?;
    p.expect_end()?;
    Ok(value)
}

/// Re-indent a compact JSON document (string-literal aware).
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut chars = compact.chars().peekable();
    let push_indent = |out: &mut String, n: usize| {
        out.push('\n');
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                out.push('"');
                let mut escaped = false;
                for s in chars.by_ref() {
                    out.push(s);
                    if escaped {
                        escaped = false;
                    } else if s == '\\' {
                        escaped = true;
                    } else if s == '"' {
                        break;
                    }
                }
            }
            '{' | '[' => {
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(c);
                    out.push(close);
                    chars.next();
                } else {
                    out.push(c);
                    indent += 1;
                    push_indent(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                push_indent(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(',');
                push_indent(&mut out, indent);
            }
            ':' => out.push_str(": "),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Number
// ---------------------------------------------------------------------------

/// A JSON number: integer when possible, float otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Fits in `i64`.
    Int(i64),
    /// Positive and larger than `i64::MAX`.
    UInt(u64),
    /// Everything else.
    Float(f64),
}

impl Number {
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(v) => Some(v),
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Float(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(v) => u64::try_from(v).ok(),
            Number::UInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::Int(v) => Some(v as f64),
            Number::UInt(v) => Some(v as f64),
            Number::Float(v) => Some(v),
        }
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Number::Int(v) => write!(f, "{v}"),
            Number::UInt(v) => write!(f, "{v}"),
            Number::Float(v) => write!(f, "{v}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

/// A dynamically-typed JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object member lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write_json(&mut out);
        f.write_str(&out)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::Float(v as f64))
    }
}

macro_rules! value_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                match i64::try_from(v) {
                    Ok(i) => Value::Number(Number::Int(i)),
                    Err(_) => Value::Number(Number::UInt(v as u64)),
                }
            }
        }
    )*};
}

value_from_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Self {
        Value::Object(v)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64().map(|v| v == *other as i64).unwrap_or(false)
                    || self.as_u64().map(|v| v == *other as u64).unwrap_or(false)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Conversion used by `json!` in expression position. Borrows its input so
/// `json!(name)` doesn't consume `name` (matching real serde_json, which
/// serializes through `&T`).
pub trait ToValue {
    fn to_value(&self) -> Value;
}

impl<T: ToValue + ?Sized> ToValue for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl ToValue for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToValue for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! to_value_via_from {
    ($($t:ty),*) => {$(
        impl ToValue for $t {
            fn to_value(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}

to_value_via_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: ToValue> ToValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue> ToValue for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl ToValue for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl Serialize for Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => b.write_json(out),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => s.write_json(out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    k.write_json(out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

impl Deserialize for Value {
    fn read_json(p: &mut Parser<'_>) -> std::result::Result<Self, Error> {
        match p.peek() {
            Some(b'n') => {
                p.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') | Some(b'f') => Ok(Value::Bool(bool::read_json(p)?)),
            Some(b'"') => Ok(Value::String(p.string()?)),
            Some(b'[') => {
                p.expect_byte(b'[')?;
                let mut items = Vec::new();
                if p.consume_byte(b']') {
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(Value::read_json(p)?);
                    if p.consume_byte(b',') {
                        continue;
                    }
                    p.expect_byte(b']')?;
                    return Ok(Value::Array(items));
                }
            }
            Some(b'{') => {
                p.expect_byte(b'{')?;
                let mut map = Map::new();
                if p.consume_byte(b'}') {
                    return Ok(Value::Object(map));
                }
                loop {
                    let key = p.string()?;
                    p.expect_byte(b':')?;
                    let value = Value::read_json(p)?;
                    map.insert(key, value);
                    if p.consume_byte(b',') {
                        continue;
                    }
                    p.expect_byte(b'}')?;
                    return Ok(Value::Object(map));
                }
            }
            Some(_) => {
                let (tok, at) = p.number_token()?;
                parse_number(tok).map(Value::Number).map_err(|e| e.at(at))
            }
            None => Err(Error::msg("unexpected end of input").at(p.offset())),
        }
    }
}

fn parse_number(tok: &str) -> std::result::Result<Number, Error> {
    if !tok.contains(['.', 'e', 'E']) {
        if let Ok(i) = tok.parse::<i64>() {
            return Ok(Number::Int(i));
        }
        if let Ok(u) = tok.parse::<u64>() {
            return Ok(Number::UInt(u));
        }
    }
    tok.parse::<f64>()
        .map(Number::Float)
        .map_err(|e| Error::msg(format!("invalid number: {e}")))
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Build a [`Value`] from JSON-like syntax. Supports literals, nested
/// arrays/objects, and arbitrary Rust expressions in value position.
#[macro_export]
macro_rules! json {
    // -- internal: array elements ------------------------------------------
    (@arr $vec:ident ()) => {};
    (@arr $vec:ident (, $($rest:tt)*)) => {
        $crate::json!(@arr $vec ($($rest)*));
    };
    (@arr $vec:ident (null $($rest:tt)*)) => {
        $vec.push($crate::Value::Null);
        $crate::json!(@arr $vec ($($rest)*));
    };
    (@arr $vec:ident ([$($arr:tt)*] $($rest:tt)*)) => {
        $vec.push($crate::json!([$($arr)*]));
        $crate::json!(@arr $vec ($($rest)*));
    };
    (@arr $vec:ident ({$($map:tt)*} $($rest:tt)*)) => {
        $vec.push($crate::json!({$($map)*}));
        $crate::json!(@arr $vec ($($rest)*));
    };
    (@arr $vec:ident ($value:expr , $($rest:tt)*)) => {
        $vec.push($crate::json!($value));
        $crate::json!(@arr $vec ($($rest)*));
    };
    (@arr $vec:ident ($value:expr)) => {
        $vec.push($crate::json!($value));
    };

    // -- internal: object members ------------------------------------------
    (@obj $object:ident ()) => {};
    (@obj $object:ident (, $($rest:tt)*)) => {
        $crate::json!(@obj $object ($($rest)*));
    };
    (@obj $object:ident ($key:tt : null $($rest:tt)*)) => {
        $object.insert(($key).into(), $crate::Value::Null);
        $crate::json!(@obj $object ($($rest)*));
    };
    (@obj $object:ident ($key:tt : [$($arr:tt)*] $($rest:tt)*)) => {
        $object.insert(($key).into(), $crate::json!([$($arr)*]));
        $crate::json!(@obj $object ($($rest)*));
    };
    (@obj $object:ident ($key:tt : {$($map:tt)*} $($rest:tt)*)) => {
        $object.insert(($key).into(), $crate::json!({$($map)*}));
        $crate::json!(@obj $object ($($rest)*));
    };
    (@obj $object:ident ($key:tt : $value:expr , $($rest:tt)*)) => {
        $object.insert(($key).into(), $crate::json!($value));
        $crate::json!(@obj $object ($($rest)*));
    };
    (@obj $object:ident ($key:tt : $value:expr)) => {
        $object.insert(($key).into(), $crate::json!($value));
    };

    // -- entry points ------------------------------------------------------
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut vec: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json!(@arr vec ($($tt)*));
        $crate::Value::Array(vec)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut object = $crate::Map::new();
        $crate::json!(@obj object ($($tt)*));
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::ToValue::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_documents() {
        let n = 2u64;
        let v = json!({
            "type": "bundle",
            "count": n,
            "flag": true,
            "none": null,
            "objects": [
                {"id": "a", "score": 1.5},
                {"id": format!("b{n}")}
            ],
        });
        assert_eq!(v["type"].as_str(), Some("bundle"));
        assert_eq!(v["count"].as_u64(), Some(2));
        assert_eq!(v["flag"].as_bool(), Some(true));
        assert!(v["none"].is_null());
        let objects = v["objects"].as_array().unwrap();
        assert_eq!(objects.len(), 2);
        assert_eq!(objects[1]["id"].as_str(), Some("b2"));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn value_round_trips_through_text() {
        let v = json!({"a": [1, -2.5, "x", null, {"b": false}], "c": {}});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_print_is_reparsable_and_indented() {
        let v = json!({"a": [1, 2], "s": "he said \"hi\\\" {ok}", "e": [], "o": {}});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1,\n    2\n  ]"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2] trailing").is_err());
    }
}
