//! Offline stand-in for `criterion`. Keeps the macro/builder API the
//! workspace's benches use, but measures each benchmark with a single timed
//! run (a handful of iterations) instead of statistical sampling — enough to
//! print comparable numbers without the statistics machinery.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Benchmark identifier (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` a few times and record the mean duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up, then a short measured run.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed() / self.iters;
    }
}

/// Top-level driver; collects per-benchmark one-shot timings.
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_STUB_ITERS overrides the per-benchmark iteration count.
        let iters = std::env::var("CRITERION_STUB_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3);
        Criterion { iters }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stub has no CLI options.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let iters = self.iters;
        run_one(&id.into().id, iters, None, f);
    }

    /// Compatibility no-op (real criterion prints a summary at exit).
    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs a fixed number
    /// of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.criterion.iters, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    iters: u32,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters: iters.max(1),
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if !per_iter.is_zero() => {
            format!(
                "  {:.1} MiB/s",
                bytes as f64 / per_iter.as_secs_f64() / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) if !per_iter.is_zero() => {
            format!("  {:.0} elem/s", n as f64 / per_iter.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench: {name:<50} {per_iter:>12.3?}/iter{rate}");
}

/// Define a benchmark group function, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench binary's `main`, like real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { iters: 2 };
        let mut group = c.benchmark_group("smoke");
        let mut runs = 0u32;
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(runs >= 3);
    }
}
