//! Offline stand-in for `proptest`. Covers the surface the workspace's
//! property tests use: the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros, range and tuple strategies, `prop::collection::vec`, `any::<T>()`,
//! regex-literal string strategies (`[class]{m,n}` and `\PC{m,n}`), and
//! `ProptestConfig { cases }`.
//!
//! Differences from real proptest: generation is deterministic (seeded from
//! the test name, so failures reproduce across runs), and failing cases are
//! reported with their inputs but not shrunk.

use std::fmt;
use std::ops::Range;

/// Failure raised by `prop_assert!`-style macros inside a test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure from any displayable message.
    pub fn fail(message: impl fmt::Display) -> Self {
        TestCaseError(message.to_string())
    }

    /// Alias kept for API compatibility with real proptest's `Reject`.
    pub fn reject(message: impl fmt::Display) -> Self {
        TestCaseError(message.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for struct-update syntax; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator, seeded per test from the test path.
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test path so every property gets a distinct, stable
    /// stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A value generator. Unlike real proptest there is no shrinking tree; a
/// strategy just produces values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing arbitrary values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full value domain of `T` as a strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// String strategies from regex literals
// ---------------------------------------------------------------------------

/// Printable sample pool for `\PC` (any non-control character), including
/// multi-byte characters so byte-offset handling gets exercised.
const PRINTABLE_EXTRA: &[char] = &[
    'é', 'ß', 'Ω', 'ж', '中', '文', '→', '€', '\u{00A0}', '😀', '🛡', '\u{FF01}',
];

struct CharClass {
    /// Inclusive ranges of allowed characters.
    ranges: Vec<(char, char)>,
    /// Extra single characters.
    singles: Vec<char>,
}

impl CharClass {
    fn sample(&self, rng: &mut TestRng) -> char {
        let total = self.ranges.len() + self.singles.len();
        let pick = rng.below(total as u64) as usize;
        if pick < self.ranges.len() {
            let (lo, hi) = self.ranges[pick];
            let span = hi as u32 - lo as u32 + 1;
            char::from_u32(lo as u32 + rng.below(span as u64) as u32).unwrap_or(lo)
        } else {
            self.singles[pick - self.ranges.len()]
        }
    }
}

/// Parse the regex subset the workspace uses: `[class]{m,n}`, `\PC{m,n}`,
/// with `{m}` also accepted. Panics on anything else, loudly, so an
/// unsupported pattern fails the test instead of silently generating junk.
fn parse_pattern(pattern: &str) -> (CharClass, usize, usize) {
    let (class, rest) = if let Some(rest) = pattern.strip_prefix("\\PC") {
        // Any printable: ASCII printable plus a multi-byte sample pool.
        let class = CharClass {
            ranges: vec![(' ', '~')],
            singles: PRINTABLE_EXTRA.to_vec(),
        };
        (class, rest)
    } else if let Some(body_and_rest) = pattern.strip_prefix('[') {
        let end = body_and_rest
            .find(']')
            .unwrap_or_else(|| panic!("unterminated char class in pattern {pattern:?}"));
        let body: Vec<char> = body_and_rest[..end].chars().collect();
        let mut ranges = Vec::new();
        let mut singles = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                ranges.push((body[i], body[i + 2]));
                i += 3;
            } else {
                singles.push(body[i]);
                i += 1;
            }
        }
        (CharClass { ranges, singles }, &body_and_rest[end + 1..])
    } else {
        panic!("unsupported pattern {pattern:?}: expected `[class]...` or `\\PC...`");
    };

    let reps = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in pattern {pattern:?}"));
    let (min, max) = match reps.split_once(',') {
        Some((m, n)) => (
            m.trim().parse().expect("pattern min repeat"),
            n.trim().parse().expect("pattern max repeat"),
        ),
        None => {
            let n = reps.trim().parse().expect("pattern repeat");
            (n, n)
        }
    };
    (class, min, max)
}

impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, min, max) = parse_pattern(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| class.sample(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection size specification (`m..n` or an exact count).
pub struct SizeRange {
    min: usize,
    /// Exclusive, matching `Range` semantics.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// `prop::collection` equivalents.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.min < self.size.max, "empty size range");
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and `#[test] fn name(arg in strategy, ...)`
/// items, mirroring real proptest's syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                #[allow(unreachable_code)]
                let outcome = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                    { $body }
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err,
                        inputs
                    );
                }
            }
        }
    )*};
}

/// Assert a condition inside a property, failing the case (not panicking)
/// so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Any, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn char_classes_respected(s in "[a-c x]{2,6}") {
            prop_assert!(s.len() >= 2 && s.len() <= 6, "{s:?}");
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | ' ' | 'x')), "{s:?}");
        }

        #[test]
        fn printable_strings_have_no_controls(s in "\\PC{0,40}") {
            prop_assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }

        #[test]
        fn vec_of_tuples_generates(v in prop::collection::vec((0u8..4, 0usize..9), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 4 && b < 9);
            }
        }

        #[test]
        fn early_ok_return_is_supported(n in 0u8..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen_once = || {
            let mut rng = TestRng::for_test("determinism-check");
            "[a-z]{8,8}".generate(&mut rng)
        };
        assert_eq!(gen_once(), gen_once());
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failures_report_inputs() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u8..2) {
                prop_assert!(false, "forced failure");
            }
        }
        always_fails();
    }
}
