//! `#[derive(Serialize, Deserialize)]` for the vendored JSON-only serde.
//!
//! The container has no registry access, so `syn`/`quote` are unavailable;
//! the item is parsed directly from `proc_macro::TokenStream` and the impls
//! are emitted as source text. Supported shapes cover everything the
//! workspace derives: named/tuple/unit structs, enums with unit, newtype,
//! tuple, and struct variants (externally tagged, like real serde), simple
//! type generics, and the `#[serde(skip)]` / `#[serde(default)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&item),
        Mode::Deserialize => gen_deserialize(&item),
    };
    code.parse().unwrap_or_else(|e| {
        compile_error(&format!("serde_derive produced invalid code: {e}\n{code}"))
    })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({});", rust_str(msg))
        .parse()
        .unwrap()
}

/// Quote `s` as a Rust string literal.
fn rust_str(s: &str) -> String {
    format!("{s:?}")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    /// Type-parameter identifiers (bounds from the definition are dropped;
    /// the impls re-bound each parameter on Serialize/Deserialize).
    generics: Vec<String>,
    /// Container-level `#[serde(default)]`.
    default: bool,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    /// Tuple struct; one entry per field, `true` = `#[serde(skip)]`.
    TupleStruct(Vec<bool>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Attrs {
    skip: bool,
    default: bool,
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn at_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == name)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consume leading attributes, folding any `#[serde(...)]` flags.
    fn eat_attrs(&mut self) -> Attrs {
        let mut attrs = Attrs {
            skip: false,
            default: false,
        };
        loop {
            if !self.at_punct('#') {
                return attrs;
            }
            let Some(TokenTree::Group(g)) = self.toks.get(self.pos + 1) else {
                return attrs;
            };
            if g.delimiter() != Delimiter::Bracket {
                return attrs;
            }
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let [TokenTree::Ident(name), TokenTree::Group(args)] = &inner[..] {
                if name.to_string() == "serde" {
                    for tok in args.stream() {
                        if let TokenTree::Ident(flag) = tok {
                            match flag.to_string().as_str() {
                                "skip" => attrs.skip = true,
                                "default" => attrs.default = true,
                                _ => {}
                            }
                        }
                    }
                }
            }
            self.pos += 2;
        }
    }

    /// Skip `pub` / `pub(...)`.
    fn eat_vis(&mut self) {
        if self.at_ident("pub") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    /// Parse `<...>`, returning type-parameter names (bounds dropped).
    fn eat_generics(&mut self) -> Result<Vec<String>, String> {
        let mut params = Vec::new();
        if !self.eat_punct('<') {
            return Ok(params);
        }
        let mut depth = 1usize;
        let mut take_next_ident = true;
        while depth > 0 {
            match self.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => take_next_ident = true,
                    ':' => take_next_ident = false,
                    '\'' => {
                        return Err(
                            "lifetimes are not supported by the vendored serde derive".into()
                        )
                    }
                    _ => {}
                },
                Some(TokenTree::Ident(i)) => {
                    if depth == 1 && take_next_ident {
                        let name = i.to_string();
                        if name == "const" {
                            return Err(
                                "const generics are not supported by the vendored serde derive"
                                    .into(),
                            );
                        }
                        params.push(name);
                        take_next_ident = false;
                    }
                }
                Some(_) => {}
                None => return Err("unterminated generic parameter list".into()),
            }
        }
        Ok(params)
    }

    /// Skip a field type: everything up to a top-level `,` (or the end).
    fn skip_type(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    let container = c.eat_attrs();
    c.eat_vis();

    let keyword = c.expect_ident()?;
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        "union" => return Err("unions cannot derive Serialize/Deserialize".into()),
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    let name = c.expect_ident()?;
    let generics = c.eat_generics()?;
    if c.at_ident("where") {
        return Err("where clauses are not supported by the vendored serde derive".into());
    }

    let kind = if is_enum {
        let Some(TokenTree::Group(body)) = c.next() else {
            return Err(format!("expected enum body for `{name}`"));
        };
        ItemKind::Enum(parse_variants(body.stream())?)
    } else {
        match c.next() {
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(body.stream())?)
            }
            Some(TokenTree::Group(body)) if body.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(parse_tuple_fields(body.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => return Err(format!("unsupported struct body for `{name}`: {other:?}")),
        }
    };

    Ok(Item {
        name,
        generics,
        default: container.default,
        kind,
    })
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let attrs = c.eat_attrs();
        c.eat_vis();
        let name = c.expect_ident()?;
        if !c.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        c.skip_type();
        c.eat_punct(',');
        fields.push(Field {
            name,
            skip: attrs.skip,
        });
    }
    Ok(fields)
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<bool> {
    let mut c = Cursor::new(stream);
    let mut skips = Vec::new();
    while c.peek().is_some() {
        let attrs = c.eat_attrs();
        c.eat_vis();
        c.skip_type();
        c.eat_punct(',');
        skips.push(attrs.skip);
    }
    skips
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.eat_attrs();
        let name = c.expect_ident()?;
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_fields(g.stream()).len();
                c.pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.pos += 1;
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        if c.eat_punct('=') {
            // Explicit discriminant: skip the expression.
            c.skip_type();
        }
        c.eat_punct(',');
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    let mut out = String::from(
        "#[automatically_derived]\n#[allow(warnings, clippy::all, clippy::pedantic)]\n",
    );
    out.push_str("impl");
    if !item.generics.is_empty() {
        out.push('<');
        for (i, p) in item.generics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{p}: ::serde::{trait_name}"));
        }
        out.push('>');
    }
    out.push_str(&format!(" ::serde::{trait_name} for {}", item.name));
    if !item.generics.is_empty() {
        out.push('<');
        out.push_str(&item.generics.join(", "));
        out.push('>');
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let mut body = String::new();
    let mut extra = String::new();
    match &item.kind {
        ItemKind::NamedStruct(fields) => {
            gen_write_named(fields, "&self.", &mut body);
        }
        ItemKind::TupleStruct(skips) => {
            let live: Vec<usize> = (0..skips.len()).filter(|i| !skips[*i]).collect();
            if skips.len() == 1 && live.len() == 1 {
                body.push_str("::serde::Serialize::write_json(&self.0, out);\n");
                extra.push_str(
                    "fn write_json_key(&self, out: &mut String) {\n\
                     ::serde::Serialize::write_json_key(&self.0, out);\n}\n",
                );
            } else {
                body.push_str("out.push('[');\n");
                for (i, idx) in live.iter().enumerate() {
                    if i > 0 {
                        body.push_str("out.push(',');\n");
                    }
                    body.push_str(&format!(
                        "::serde::Serialize::write_json(&self.{idx}, out);\n"
                    ));
                }
                body.push_str("out.push(']');\n");
            }
        }
        ItemKind::UnitStruct => {
            body.push_str("out.push_str(\"null\");\n");
        }
        ItemKind::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let name = &item.name;
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let lit = rust_str(&format!("\"{vname}\""));
                        body.push_str(&format!("{name}::{vname} => out.push_str({lit}),\n"));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let open = rust_str(&format!("{{\"{vname}\":"));
                        body.push_str(&format!(
                            "{name}::{vname}({}) => {{\nout.push_str({open});\n",
                            binds.join(", ")
                        ));
                        if *arity == 1 {
                            body.push_str("::serde::Serialize::write_json(f0, out);\n");
                        } else {
                            body.push_str("out.push('[');\n");
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    body.push_str("out.push(',');\n");
                                }
                                body.push_str(&format!(
                                    "::serde::Serialize::write_json({b}, out);\n"
                                ));
                            }
                            body.push_str("out.push(']');\n");
                        }
                        body.push_str("out.push('}');\n}\n");
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let open = rust_str(&format!("{{\"{vname}\":"));
                        body.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\nout.push_str({open});\n",
                            binds.join(", ")
                        ));
                        gen_write_named(fields, "", &mut body);
                        body.push_str("out.push('}');\n}\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }

    format!(
        "{header} {{\nfn write_json(&self, out: &mut String) {{\n{body}}}\n{extra}}}\n",
        header = impl_header(item, "Serialize"),
    )
}

/// Emit the `{"a":...,"b":...}` writer for named fields. `access` prefixes
/// each field name (`&self.` for structs, empty for match bindings).
fn gen_write_named(fields: &[Field], access: &str, body: &mut String) {
    body.push_str("out.push('{');\n");
    let mut first = true;
    for f in fields {
        if f.skip {
            continue;
        }
        let key = if first {
            rust_str(&format!("\"{}\":", f.name))
        } else {
            rust_str(&format!(",\"{}\":", f.name))
        };
        first = false;
        body.push_str(&format!(
            "out.push_str({key});\n::serde::Serialize::write_json({access}{field}, out);\n",
            field = f.name,
        ));
    }
    body.push_str("out.push('}');\n");
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    let mut extra = String::new();
    match &item.kind {
        ItemKind::NamedStruct(fields) => {
            gen_read_named(name, "", fields, item.default, &mut body);
            body.push_str("::core::result::Result::Ok(__value)\n");
        }
        ItemKind::TupleStruct(skips) => {
            let live: Vec<usize> = (0..skips.len()).filter(|i| !skips[*i]).collect();
            let ctor_args = |reads: &[String]| -> String {
                let mut args = Vec::new();
                let mut it = reads.iter();
                for skip in skips {
                    if *skip {
                        args.push("::core::default::Default::default()".to_string());
                    } else {
                        args.push(it.next().cloned().unwrap_or_default());
                    }
                }
                args.join(", ")
            };
            if skips.len() == 1 && live.len() == 1 {
                body.push_str(&format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::read_json(p)?))\n"
                ));
                extra.push_str(&format!(
                    "fn read_json_key(key: &str) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                     ::core::result::Result::Ok({name}(::serde::Deserialize::read_json_key(key)?))\n}}\n"
                ));
            } else {
                body.push_str("p.expect_byte(b'[')?;\n");
                let mut reads = Vec::new();
                for (i, _) in live.iter().enumerate() {
                    if i > 0 {
                        body.push_str("p.expect_byte(b',')?;\n");
                    }
                    body.push_str(&format!(
                        "let __v{i} = ::serde::Deserialize::read_json(p)?;\n"
                    ));
                    reads.push(format!("__v{i}"));
                }
                body.push_str("p.expect_byte(b']')?;\n");
                body.push_str(&format!(
                    "::core::result::Result::Ok({name}({}))\n",
                    ctor_args(&reads)
                ));
            }
        }
        ItemKind::UnitStruct => {
            body.push_str(&format!(
                "p.expect_keyword(\"null\")?;\n::core::result::Result::Ok({name})\n"
            ));
        }
        ItemKind::Enum(variants) => {
            body.push_str("match p.peek() {\n");
            // String form: unit variants.
            body.push_str(
                "::core::option::Option::Some(b'\"') => {\nlet __at = p.offset();\nlet __s = p.string()?;\nmatch __s.as_str() {\n",
            );
            for v in variants {
                if let VariantKind::Unit = v.kind {
                    body.push_str(&format!(
                        "{lit} => ::core::result::Result::Ok({name}::{vname}),\n",
                        lit = rust_str(&v.name),
                        vname = v.name,
                    ));
                }
            }
            body.push_str(
                "__other => ::core::result::Result::Err(::serde::Error::msg(format!(\"unknown variant `{}`\", __other)).at(__at)),\n}\n}\n",
            );
            // Map form: payload variants.
            body.push_str(
                "::core::option::Option::Some(b'{') => {\np.expect_byte(b'{')?;\nlet __at = p.offset();\nlet __key = p.string()?;\np.expect_byte(b':')?;\nlet __value = match __key.as_str() {\n",
            );
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(arity) => {
                        body.push_str(&format!("{} => {{\n", rust_str(vname)));
                        if *arity == 1 {
                            body.push_str(&format!(
                                "{name}::{vname}(::serde::Deserialize::read_json(p)?)\n"
                            ));
                        } else {
                            body.push_str("p.expect_byte(b'[')?;\n");
                            let mut reads = Vec::new();
                            for i in 0..*arity {
                                if i > 0 {
                                    body.push_str("p.expect_byte(b',')?;\n");
                                }
                                body.push_str(&format!(
                                    "let __v{i} = ::serde::Deserialize::read_json(p)?;\n"
                                ));
                                reads.push(format!("__v{i}"));
                            }
                            body.push_str("p.expect_byte(b']')?;\n");
                            body.push_str(&format!("{name}::{vname}({})\n", reads.join(", ")));
                        }
                        body.push_str("}\n");
                    }
                    VariantKind::Named(fields) => {
                        body.push_str(&format!("{} => {{\n", rust_str(vname)));
                        gen_read_named(
                            &format!("{name}::{vname}"),
                            "__variant_",
                            fields,
                            false,
                            &mut body,
                        );
                        body.push_str("__value\n}\n");
                    }
                }
            }
            body.push_str(
                "__other => return ::core::result::Result::Err(::serde::Error::msg(format!(\"unknown variant `{}`\", __other)).at(__at)),\n};\np.expect_byte(b'}')?;\n::core::result::Result::Ok(__value)\n}\n",
            );
            body.push_str(
                "_ => ::core::result::Result::Err(::serde::Error::msg(\"expected enum value\").at(p.offset())),\n}\n",
            );
        }
    }

    format!(
        "{header} {{\nfn read_json(p: &mut ::serde::read::Parser<'_>) -> ::core::result::Result<Self, ::serde::Error> {{\n{body}}}\n{extra}}}\n",
        header = impl_header(item, "Deserialize"),
    )
}

/// Emit the named-field object reader; leaves the constructed value in
/// `__value`. `prefix` namespaces the per-field locals (enum variants parse
/// inside a surrounding match and must not collide).
fn gen_read_named(
    ctor: &str,
    prefix: &str,
    fields: &[Field],
    container_default: bool,
    body: &mut String,
) {
    body.push_str("p.expect_byte(b'{')?;\n");
    for f in fields.iter().filter(|f| !f.skip) {
        body.push_str(&format!(
            "let mut __f_{prefix}{} = ::core::option::Option::None;\n",
            f.name
        ));
    }
    body.push_str("if !p.consume_byte(b'}') {\nloop {\nlet __key = p.string()?;\np.expect_byte(b':')?;\nmatch __key.as_str() {\n");
    for f in fields.iter().filter(|f| !f.skip) {
        body.push_str(&format!(
            "{lit} => {{ __f_{prefix}{field} = ::core::option::Option::Some(::serde::Deserialize::read_json(p)?); }}\n",
            lit = rust_str(&f.name),
            field = f.name,
        ));
    }
    body.push_str("_ => { p.skip_value()?; }\n}\nif p.consume_byte(b',') { continue; }\np.expect_byte(b'}')?;\nbreak;\n}\n}\n");

    if container_default {
        body.push_str(&format!(
            "let __container_default: {ctor} = ::core::default::Default::default();\n"
        ));
    }
    body.push_str(&format!("let __value = {ctor} {{\n"));
    for f in fields {
        if f.skip {
            if container_default {
                body.push_str(&format!("{0}: __container_default.{0},\n", f.name));
            } else {
                body.push_str(&format!(
                    "{}: ::core::default::Default::default(),\n",
                    f.name
                ));
            }
        } else if container_default {
            body.push_str(&format!(
                "{0}: match __f_{prefix}{0} {{ ::core::option::Option::Some(__v) => __v, ::core::option::Option::None => __container_default.{0} }},\n",
                f.name
            ));
        } else {
            body.push_str(&format!(
                "{0}: match __f_{prefix}{0} {{ ::core::option::Option::Some(__v) => __v, ::core::option::Option::None => ::serde::Deserialize::missing_field({lit})? }},\n",
                f.name,
                lit = rust_str(&f.name),
            ));
        }
    }
    body.push_str("};\n");
}
