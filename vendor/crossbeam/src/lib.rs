//! Offline stand-in for the `crossbeam` crate: the `channel` module only,
//! implemented as an MPMC queue over `std` mutex + condvars. Semantics match
//! what the workspace relies on: bounded channels block senders at capacity,
//! `recv`/iteration end cleanly when every sender is dropped, and `send`
//! fails (returning the message) when every receiver is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        cap: Option<usize>,
    }

    /// Sending half; clonable for multi-producer use.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clonable for multi-consumer use.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The channel is disconnected (no receivers); returns the message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The channel is empty and disconnected (no senders).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Outcome of a non-blocking receive.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Channel blocking senders once `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap))
    }

    /// Channel with no capacity limit.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    impl<T> Sender<T> {
        /// Block until the message is queued; error with the message when no
        /// receiver remains.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.inner.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.inner.not_full.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; error when the channel is empty
        /// and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.state.lock().unwrap();
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.state.lock().unwrap().queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator; ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }

        /// Non-blocking iterator over currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.inner.not_full.notify_all();
            }
        }
    }

    /// Borrowing blocking iterator (see [`Receiver::iter`]).
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Borrowing non-blocking iterator (see [`Receiver::try_iter`]).
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    /// Owning blocking iterator (`for msg in rx`).
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn bounded_channel_round_trip_across_threads() {
            let (tx, rx) = bounded::<u32>(2);
            let producer = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = rx.into_iter().collect();
            producer.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn send_fails_when_receiver_dropped() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn try_iter_drains_without_blocking() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let got: Vec<i32> = rx.try_iter().collect();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn multi_consumer_sees_every_message_once() {
            let (tx, rx) = bounded::<u64>(4);
            let rx2 = rx.clone();
            let consumer =
                |rx: Receiver<u64>| std::thread::spawn(move || rx.into_iter().sum::<u64>());
            let a = consumer(rx);
            let b = consumer(rx2);
            let total: u64 = (0..1000).sum();
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(a.join().unwrap() + b.join().unwrap(), total);
        }
    }
}
