//! Offline stand-in for `parking_lot`: the `Mutex`/`RwLock` API (panic-free
//! `lock()` without a `Result`, poisoning ignored) over `std::sync`.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with parking_lot's `lock() -> Guard` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// Reader-writer lock with parking_lot's `read()`/`write()` signatures.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
