//! Demo scenario 1 (paper §3): investigate the wannacry ransomware.
//!
//! ```sh
//! cargo run --example wannacry_investigation --release
//! ```
//!
//! Reproduces the paper's first walkthrough: keyword search for "wannacry",
//! detailed information display, node expansion, automatic graph layout,
//! node dragging (lock-in-place), collapse — ending "with a subgraph that
//! shows all the relevant information (entities) of the wannacry
//! ransomware".

use securitykg::corpus::WorldConfig;
use securitykg::{SecurityKg, SystemConfig, TrainingConfig};

fn main() {
    // Dense coverage of a compact world so wannacry is richly reported.
    let config = SystemConfig {
        world: WorldConfig {
            malware_count: 25,
            actor_count: 12,
            cve_count: 40,
            campaign_count: 10,
            seed: 0xD340,
        },
        articles_per_source: 30,
        training: TrainingConfig {
            articles: 150,
            ..TrainingConfig::default()
        },
        ..SystemConfig::default()
    };
    println!("building the knowledge graph (bootstrap + crawl + ingest + fuse)...");
    let mut kg = SecurityKg::bootstrap(&config);
    kg.crawl_and_ingest();
    kg.fuse();
    println!(
        "graph ready: {} nodes, {} edges\n",
        kg.graph().node_count(),
        kg.graph().edge_count()
    );

    // Step 1: keyword search.
    println!("step 1 — keyword search \"wannacry\"");
    let mut explorer = kg.explorer();
    explorer.search("wannacry", 8);
    let wannacry = kg
        .graph()
        .node_by_name("Malware", "wannacry")
        .expect("wannacry node (dense corpus covers it)");
    assert!(explorer.visible().contains(&wannacry));
    println!(
        "  {} result nodes; wannacry node found\n",
        explorer.visible().len()
    );

    // Step 2: detailed information display (hover).
    let node = kg.graph().node(wannacry).unwrap();
    println!("step 2 — node details (hover):");
    println!("  label: {}", node.label);
    for (key, value) in &node.props {
        println!("  {key}: {value}");
    }
    println!("  degree: {}\n", kg.graph().degree(wannacry));

    // Step 3: expansion (double-click) + automatic layout.
    println!("step 3 — double-click to expand neighbours; Barnes–Hut layout runs");
    explorer.show(vec![wannacry]);
    explorer.toggle(wannacry);
    explorer.run_layout(150);
    let snapshot = explorer.snapshot();
    println!(
        "  visible subgraph: {} nodes, {} edges",
        snapshot.nodes.len(),
        snapshot.edges.len()
    );
    for (a, b, rel) in snapshot.edges.iter().take(12) {
        println!(
            "    ({}) -[{}]-> ({})",
            snapshot.nodes[*a].name, rel, snapshot.nodes[*b].name
        );
    }
    println!();

    // Step 4: drag a node — it locks in place.
    if let Some(other) = explorer.visible().iter().copied().find(|&n| n != wannacry) {
        println!("step 4 — drag a node; it locks in place while layout continues");
        explorer.drag(other, 250.0, 0.0);
        explorer.run_layout(60);
        let snap = explorer.snapshot();
        let dragged = snap.nodes.iter().find(|n| n.id == other.0).unwrap();
        println!(
            "  dragged node {:?} stayed at ({:.0}, {:.0}), locked = {}\n",
            dragged.name, dragged.x, dragged.y, dragged.locked
        );
    }

    // Step 5: the final investigation subgraph.
    println!("step 5 — final wannacry subgraph (what the demo ends with):");
    let facts = kg
        .graph()
        .query_readonly(
            "MATCH (m:Malware {name: 'wannacry'})-[r]->(x) RETURN x.name ORDER BY x.name",
        )
        .unwrap();
    let outgoing = kg.graph().outgoing(wannacry);
    for edge in &outgoing {
        let target = kg.graph().node(edge.to).unwrap();
        println!(
            "  wannacry -[{}]-> [{}] {}",
            edge.rel_type,
            target.label,
            target.name().unwrap_or("?")
        );
    }
    println!(
        "\n{} outgoing facts; {} mentioned-by reports (Cypher row count: {})",
        outgoing.len(),
        kg.graph()
            .incoming(wannacry)
            .iter()
            .filter(|e| e.rel_type == "MENTIONS")
            .count(),
        facts.rows.len()
    );

    // Step 6: collapse back (double-click again).
    explorer.toggle(wannacry);
    println!(
        "\nstep 6 — double-click again collapses the expansion: {} node(s) visible",
        explorer.visible().len()
    );
}
