//! Knowledge fusion walkthrough (paper §2.5): how vendor naming conventions
//! get unified after storage, without losing information.
//!
//! ```sh
//! cargo run --example knowledge_fusion --release
//! ```

use securitykg::fusion::{fuse, FusionConfig};
use securitykg::graph::{GraphStore, Value};

fn main() {
    // Build a miniature graph the way three different vendors would: the
    // same malware under three naming conventions, each with facts the
    // others don't have.
    let mut graph = GraphStore::new();
    let securelist = graph.create_node("Malware", [("name", Value::from("wannacry"))]);
    let talos = graph.create_node("Malware", [("name", Value::from("wannacrypt"))]);
    let msrc = graph.create_node("Malware", [("name", Value::from("wanna decryptor"))]);
    let unrelated = graph.create_node("Malware", [("name", Value::from("emotet"))]);

    let file = graph.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
    let cve = graph.create_node("Vulnerability", [("name", Value::from("CVE-2017-0144"))]);
    let domain = graph.create_node(
        "Domain",
        [(
            "name",
            Value::from("iuqerfsodp9ifjaposdfjhgosurijfaewrwergwea.com"),
        )],
    );
    // Vendors overlap on the dropped file (the IOC corroboration fusion
    // requires — shared CVEs deliberately do NOT corroborate, since many
    // unrelated threats exploit the same vulnerability) and each vendor
    // adds one fact of its own.
    graph
        .create_edge(securelist, "DROP", file, [] as [(&str, Value); 0])
        .unwrap();
    graph
        .create_edge(talos, "DROP", file, [] as [(&str, Value); 0])
        .unwrap();
    graph
        .create_edge(talos, "EXPLOITS", cve, [] as [(&str, Value); 0])
        .unwrap();
    graph
        .create_edge(msrc, "DROP", file, [] as [(&str, Value); 0])
        .unwrap();
    graph
        .create_edge(msrc, "RESOLVES", domain, [] as [(&str, Value); 0])
        .unwrap();
    graph
        .create_edge(unrelated, "DROP", file, [] as [(&str, Value); 0])
        .unwrap();

    println!(
        "before fusion: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );
    for id in graph.nodes_with_label("Malware") {
        let node = graph.node(id).unwrap();
        let facts: Vec<String> = graph
            .outgoing(id)
            .iter()
            .map(|e| {
                format!(
                    "{} {}",
                    e.rel_type,
                    graph.node(e.to).unwrap().name().unwrap_or("?")
                )
            })
            .collect();
        println!("  {} → {:?}", node.name().unwrap(), facts);
    }

    // The storage stage would NOT merge these (different description text);
    // the fusion stage does.
    let report = fuse(&mut graph, &FusionConfig::default());
    println!(
        "\nfusion: {} cluster(s) merged, {} node(s) removed, {} edge(s) migrated",
        report.clusters_merged, report.nodes_removed, report.edges_migrated
    );
    for (kept, absorbed) in &report.merges {
        println!("  kept {kept:?}, absorbed {absorbed:?}");
    }

    println!(
        "\nafter fusion: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );
    for id in graph.nodes_with_label("Malware") {
        let node = graph.node(id).unwrap();
        let facts: Vec<String> = graph
            .outgoing(id)
            .iter()
            .map(|e| {
                format!(
                    "{} {}",
                    e.rel_type,
                    graph.node(e.to).unwrap().name().unwrap_or("?")
                )
            })
            .collect();
        println!("  {} → {:?}", node.name().unwrap(), facts);
        if let Some(aliases) = node.props.get("aliases") {
            println!("    aliases: {aliases}");
        }
    }

    // All three vendors' facts now hang off one canonical node; emotet was
    // untouched.
    let canonical = graph
        .nodes_with_label("Malware")
        .into_iter()
        .find(|&id| graph.node(id).unwrap().name().unwrap().starts_with("wanna"))
        .expect("canonical wannacry survives");
    assert_eq!(graph.outgoing(canonical).len(), 3, "no facts lost");
    assert!(graph.node_by_name("Malware", "emotet").is_some());
    println!("\n✓ all three vendors' facts preserved on the canonical node");
}
