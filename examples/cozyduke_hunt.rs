//! Demo scenarios 2 and 3 (paper §3): the cozyduke investigation and the
//! Cypher cross-check.
//!
//! ```sh
//! cargo run --example cozyduke_hunt --release
//! ```
//!
//! Scenario 2: keyword search the threat actor "cozyduke", investigate the
//! techniques it uses, and "check if there are other threat actors that use
//! the same set of techniques".
//!
//! Scenario 3: execute `match (n) where n.name = "wannacry" return n` and
//! demonstrate "that the same wannacry node will be returned as in the
//! first scenario".

use securitykg::corpus::WorldConfig;
use securitykg::{SecurityKg, SystemConfig, TrainingConfig};

fn main() {
    let config = SystemConfig {
        world: WorldConfig {
            malware_count: 25,
            actor_count: 12,
            cve_count: 40,
            campaign_count: 10,
            seed: 0xD340, // same world as wannacry_investigation
        },
        articles_per_source: 30,
        training: TrainingConfig {
            articles: 150,
            ..TrainingConfig::default()
        },
        ..SystemConfig::default()
    };
    // Without the analyst alias table, cozyduke's tradecraft scatters over
    // its vendor names (apt29 / cozy bear / the dukes); fusing with the
    // table unifies it onto one canonical actor node.
    let mut config = config;
    config.fusion.alias_groups = securitykg::corpus::names::MALWARE_ALIASES
        .iter()
        .chain(securitykg::corpus::names::ACTOR_ALIASES.iter())
        .map(|group| group.iter().map(|s| (*s).to_owned()).collect())
        .collect();
    println!("building the knowledge graph...");
    let mut kg = SecurityKg::bootstrap(&config);
    kg.crawl_and_ingest();
    kg.fuse();
    println!(
        "graph ready: {} nodes, {} edges\n",
        kg.graph().node_count(),
        kg.graph().edge_count()
    );

    // ---- Scenario 2 -------------------------------------------------------
    println!("scenario 2 — keyword search \"cozyduke\"");
    let hits = kg.keyword_search("cozyduke", 8);
    println!("  {} hits", hits.len());
    let cozyduke = kg
        .find_entity("ThreatActor", "cozyduke")
        .expect("cozyduke node (dense corpus covers it)");
    // The investigated actor: cozyduke if the sampled corpus captured its
    // tradecraft, otherwise the best-covered actor (small corpora may not
    // include a cozyduke USES sentence the extractor caught).
    let subject = if kg
        .graph()
        .outgoing(cozyduke)
        .iter()
        .any(|e| e.rel_type == "USES")
    {
        cozyduke
    } else {
        println!("  (corpus sample has no cozyduke technique edges; using the best-covered actor)");
        kg.graph()
            .nodes_with_label("ThreatActor")
            .into_iter()
            .max_by_key(|&a| {
                kg.graph()
                    .outgoing(a)
                    .iter()
                    .filter(|e| e.rel_type == "USES")
                    .count()
            })
            .unwrap()
    };
    let subject_name = kg.graph().node(subject).unwrap().name().unwrap().to_owned();

    println!("\n  techniques used by {subject_name}:");
    let techniques = kg
        .cypher(&format!(
            "MATCH (a:ThreatActor {{name: '{subject_name}'}})-[:USES]->(t:Technique) \
             RETURN t.name ORDER BY t.name",
        ))
        .unwrap();
    for row in &techniques.rows {
        println!("    - {}", row[0]);
    }

    println!("\n  other actors sharing those techniques:");
    let overlap = kg
        .cypher(&format!(
            "MATCH (a:ThreatActor {{name: '{subject_name}'}})-[:USES]->(t:Technique)\
             <-[:USES]-(other:ThreatActor) \
             RETURN other.name, count(t) AS shared ORDER BY count(t) DESC",
        ))
        .unwrap();
    if overlap.rows.is_empty() {
        println!("    (none in this corpus sample)");
    }
    for row in &overlap.rows {
        println!(
            "    {:<25} shares {} technique(s)",
            row[0].to_string(),
            row[1]
        );
    }
    // The world seeds a "technique twin" for cozyduke, so with dense
    // coverage at least one actor shares the full set.
    if let Some(top) = overlap.rows.first() {
        let shared = top[1].as_int().unwrap_or(0) as usize;
        println!(
            "\n  verdict: {} shares {}/{} of {subject_name}'s techniques",
            top[0],
            shared,
            techniques.rows.len()
        );
    }

    // ---- Scenario 3 -------------------------------------------------------
    println!("\nscenario 3 — cypher: match (n) where n.name = \"wannacry\" return n");
    let result = kg
        .cypher("match (n) where n.name = \"wannacry\" return n")
        .unwrap();
    println!("  returned {} node(s)", result.rows.len());
    let keyword_hit = kg.graph().node_by_name("Malware", "wannacry");
    match (result.node_ids().first(), keyword_hit) {
        (Some(&from_cypher), Some(from_keyword)) => {
            assert_eq!(from_cypher, from_keyword);
            println!("  ✓ identical to the node scenario 1's keyword search returns");
        }
        _ => println!("  (wannacry not covered by this corpus sample)"),
    }

    // "We then execute other queries."
    println!("\nother queries:");
    for query in [
        "MATCH (m:Malware)-[:EXPLOITS]->(v:Vulnerability) RETURN m.name, v.name LIMIT 5",
        "MATCH (v:CtiVendor)-[:PUBLISHES]->(r) RETURN v.name, count(r) AS reports \
         ORDER BY count(r) DESC LIMIT 3",
        "MATCH (m:Malware)-[:ATTRIBUTED_TO]->(a:ThreatActor) RETURN m.name, a.name LIMIT 5",
    ] {
        println!("  > {query}");
        match kg.cypher(query) {
            Ok(result) => {
                for row in result.rows.iter().take(5) {
                    let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                    println!("      {}", cells.join(" | "));
                }
            }
            Err(e) => println!("      error: {e}"),
        }
    }
}
