//! Inside the backend (paper §2.1, §2.4): run each pipeline stage by hand,
//! swap components, and use the configuration file.
//!
//! ```sh
//! cargo run --example pipeline_anatomy --release
//! ```
//!
//! Shows the modular design: porter → checker → parser → extractor →
//! connector, the config file selecting components, and the SQL-style
//! connector swap the paper calls out as the extensibility story.

use securitykg::crawler::{crawl_all, CrawlState, CrawlerConfig};
use securitykg::extract::RegexNerBaseline;
use securitykg::pipeline::{
    run_pipelined, Checker, Connector, DefaultChecker, DefaultPorter, GraphConnector,
    IocOnlyExtractor, ParserRegistry, PipelineConfig, Porter, TabularConnector,
};
use std::sync::Arc;

fn main() {
    // A small simulated web and one crawl cycle.
    let web = securitykg::corpus::standard_web(6, 42);
    let mut state = CrawlState::new();
    let (raw_pages, metrics) = crawl_all(&web, &mut state, &CrawlerConfig::default(), u64::MAX / 4);
    println!(
        "collection: {} raw pages from {} sources ({} whole reports)",
        raw_pages.len(),
        metrics.sources_crawled,
        metrics.new_reports
    );

    // ---- Stage by stage, by hand ------------------------------------------
    println!("\nprocessing one report through each stage:");
    let mut porter = DefaultPorter::new();
    let mut first_report = None;
    for page in raw_pages.clone() {
        if let Some(report) = porter.feed(page) {
            first_report = Some(report);
            break;
        }
    }
    let report = first_report.expect("at least one single-page report");
    println!(
        "  porter   → IntermediateReport {} ({} page(s))",
        report.id,
        report.pages.len()
    );

    let checker = DefaultChecker::default();
    println!("  checker  → keep = {}", checker.check(&report));

    let registry = ParserRegistry::new();
    let mut cti = registry.parse(&report).expect("parses");
    println!(
        "  parser   → IntermediateCti: category={:?}, {} structured fields, {} text bytes",
        cti.category,
        cti.structured.len(),
        cti.text.len()
    );

    let extractor = IocOnlyExtractor {
        baseline: Arc::new(RegexNerBaseline::new(vec![])),
    };
    use securitykg::pipeline::Extractor as _;
    extractor.extract(&mut cti);
    println!(
        "  extractor→ {} entity mentions, {} relations",
        cti.mentions.len(),
        cti.relations.len()
    );

    let mut connector = GraphConnector::new();
    connector.connect(&cti);
    println!(
        "  connector→ graph now has {} nodes, {} edges",
        connector.graph.node_count(),
        connector.graph.edge_count()
    );

    // ---- The configuration file -------------------------------------------
    println!("\nconfiguration file (JSON):");
    let config_text = r#"{
        "checker_min_text_len": 60,
        "extractor": "IocOnly",
        "connector": "Tabular",
        "workers": {"check": 1, "parse": 2, "extract": 4},
        "serialize_transport": true
    }"#;
    let config = PipelineConfig::from_json(config_text).expect("valid config");
    println!("{}", config.to_json());

    // ---- Full pipelined run with the SQL-style connector swapped in --------
    let out = run_pipelined(
        raw_pages,
        &registry,
        &extractor,
        TabularConnector::new(),
        &config,
    );
    println!(
        "\npipelined run with TabularConnector (serialized transport on):\n  \
         {} reports connected, {} screened out, entity table: {} rows, \
         relation table: {} rows, mention table: {} rows",
        out.metrics.connected,
        out.metrics.screened_out,
        out.connector.entities.len(),
        out.connector.relations.len(),
        out.connector.mentions.len()
    );
    println!("  per-stage busy ms: {:?}", out.metrics.stage_busy_ms);
}
