//! Knowledge-enhanced threat hunting — the paper's future-work section,
//! built: "we plan to connect SecurityKG to our system-auditing-based threat
//! protection systems to achieve knowledge-enhanced threat protection."
//!
//! ```sh
//! cargo run --example threat_hunting --release
//! ```
//!
//! Builds the knowledge graph from the crawled corpus, extracts per-malware
//! behaviour graphs (dropped files, C2 endpoints, persistence keys), then
//! scans a simulated host audit log — benign noise with one implanted
//! intrusion — and ranks threats by behavioural alignment.

use securitykg::corpus::WorldConfig;
use securitykg::hunting::{behavior, AuditGenerator, Hunter};
use securitykg::{SecurityKg, SystemConfig, TrainingConfig};

fn main() {
    let config = SystemConfig {
        world: WorldConfig {
            malware_count: 25,
            actor_count: 12,
            cve_count: 40,
            campaign_count: 10,
            seed: 0xD340,
        },
        articles_per_source: 30,
        training: TrainingConfig {
            articles: 150,
            ..TrainingConfig::default()
        },
        ..SystemConfig::default()
    };
    // Alias table: without fusion, vendor aliases (wannacry / wcry /
    // wannacrypt / "wanna decryptor") fragment into four behaviour graphs
    // that all fire on the same intrusion — fusing first yields one
    // canonical threat per detection.
    let mut config = config;
    config.fusion.alias_groups = securitykg::corpus::names::MALWARE_ALIASES
        .iter()
        .map(|group| group.iter().map(|s| (*s).to_owned()).collect())
        .collect();
    println!("building the knowledge graph from the crawled corpus...");
    let mut kg = SecurityKg::bootstrap(&config);
    kg.crawl_and_ingest();
    let fusion = kg.fuse();
    println!(
        "graph: {} nodes / {} edges after fusing {} alias clusters\n",
        kg.graph().node_count(),
        kg.graph().edge_count(),
        fusion.clusters_merged
    );

    // Extract behaviour graphs for every malware with ≥3 IOC indicators.
    let hunter: Hunter = kg.hunter(3);
    println!(
        "extracted {} threat behaviour graphs, e.g.:",
        hunter.behaviors.len()
    );
    let canonical = kg
        .find_entity("Malware", "wannacry")
        .expect("wannacry canonical node");
    let canonical_name = kg
        .graph()
        .node(canonical)
        .unwrap()
        .name()
        .unwrap_or("?")
        .to_owned();
    let wannacry = behavior::behavior_of(kg.graph(), canonical).expect("wannacry behaviour");
    println!("  (canonical name for wannacry after fusion: {canonical_name:?})");
    for ind in wannacry.indicators.iter().take(8) {
        println!(
            "  {canonical_name} expects [{} via {}] {} (weight {:.2})",
            ind.kind, ind.relation, ind.value, ind.weight
        );
    }

    // Simulate an enterprise audit log: 5,000 benign events, then implant a
    // wannacry-shaped intrusion on host4.
    println!("\nsimulating an audit log: 5,000 benign events + implanted wannacry trace on host4");
    let mut generator = AuditGenerator::new(0xA0D17);
    let mut log = generator.benign_log(5_000, 0);
    generator.implant(
        &mut log,
        &wannacry.as_audit_steps(),
        "mssecsvc.exe",
        "host4",
    );

    // Hunt.
    let reports = hunter.scan(&log);
    println!(
        "\nhunt results ({} threats above the noise floor):",
        reports.len()
    );
    println!(
        "{:<20} {:>7} {:>10} {:>12}",
        "threat", "score", "coverage", "focus host"
    );
    for report in reports.iter().take(8) {
        println!(
            "{:<20} {:>6.2} {:>7}/{:<3} {:>12}",
            report.threat_name,
            report.score,
            report.coverage.0,
            report.coverage.1,
            report.focus_host.as_deref().unwrap_or("-")
        );
    }
    let top = reports.first().expect("a detection");
    assert_eq!(top.threat_name, canonical_name);
    assert_eq!(top.focus_host.as_deref(), Some("host4"));
    println!(
        "\n✓ the implanted intrusion is ranked first ({}, score {:.2}) and localised to {}",
        top.threat_name,
        top.score,
        top.focus_host.as_deref().unwrap()
    );

    // A clean log stays quiet.
    let clean = AuditGenerator::new(0xC1EA7).benign_log(5_000, 0);
    let false_alarms = hunter.scan(&clean);
    println!(
        "control: clean log of the same size raises {} detections",
        false_alarms.len()
    );
}
