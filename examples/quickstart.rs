//! Quickstart: build a small SecurityKG end-to-end and query it.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```
//!
//! The five minutes of SecurityKG: bootstrap (generate the simulated OSCTI
//! web + train the extraction model), crawl, process, store, then query the
//! knowledge graph by keyword and by Cypher.

use securitykg::corpus::WorldConfig;
use securitykg::{SecurityKg, SystemConfig, TrainingConfig};

fn main() {
    // A small but complete configuration: 42 sources, ~8 articles each.
    let config = SystemConfig {
        world: WorldConfig {
            malware_count: 30,
            actor_count: 15,
            cve_count: 40,
            campaign_count: 10,
            seed: 1,
        },
        articles_per_source: 8,
        training: TrainingConfig {
            articles: 120,
            ..TrainingConfig::default()
        },
        ..SystemConfig::default()
    };

    println!("bootstrapping SecurityKG (world generation + extractor training)...");
    let mut kg = SecurityKg::bootstrap(&config);

    println!("crawling all 42 sources and ingesting through the pipeline...");
    let report = kg.crawl_and_ingest();
    println!(
        "  crawled {} new reports ({} pages), ingested {}",
        report.crawl.new_reports, report.crawl.pages_fetched, report.reports_ingested
    );
    println!(
        "  knowledge graph: {} nodes, {} edges",
        kg.graph().node_count(),
        kg.graph().edge_count()
    );

    println!("\nnode counts by label:");
    for (label, count) in kg.graph().label_histogram() {
        println!("  {label:<20} {count}");
    }

    // Knowledge fusion: merge vendor naming conventions.
    let fusion = kg.fuse();
    println!(
        "\nknowledge fusion: merged {} alias clusters, removed {} duplicate nodes",
        fusion.clusters_merged, fusion.nodes_removed
    );

    // Keyword search (the Elasticsearch path).
    let malware = kg.graph().nodes_with_label("Malware");
    let example = kg
        .graph()
        .node(*malware.first().expect("some malware"))
        .unwrap()
        .name()
        .unwrap()
        .to_owned();
    println!("\nkeyword search {example:?}:");
    for id in kg.keyword_search(&example, 5) {
        let node = kg.graph().node(id).unwrap();
        println!("  [{}] {}", node.label, node.name().unwrap_or("?"));
    }

    // Cypher (the Neo4j path).
    println!("\ncypher: top threat actors by technique count");
    let result = kg
        .cypher(
            "MATCH (a:ThreatActor)-[:USES]->(t:Technique) \
             RETURN a.name, count(t) AS techniques ORDER BY count(t) DESC LIMIT 5",
        )
        .expect("valid query");
    for row in &result.rows {
        println!("  {:<25} {}", row[0], row[1]);
    }

    println!("\ndone. Try the wannacry_investigation and cozyduke_hunt examples next.");
}
