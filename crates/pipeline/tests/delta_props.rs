//! Property tests for the split connector's delta representation.
//!
//! The writer may receive a batch of resolved deltas in any arrival order
//! (workers race); `Connector::apply_batch` must produce the same graph no
//! matter how a batch is permuted, because it re-establishes sequence order
//! before applying. This is the invariant the reorder buffer leans on when
//! it drains out-of-order stragglers at channel close.

use kg_fusion::ResolverConfig;
use kg_ir::{EntityMention, IntermediateCti, RelationMention, ReportId, ReportMeta, SourceId};
use kg_ontology::{EntityKind, ReportCategory};
use kg_pipeline::{Connector, GraphConnector, GraphDelta};
use proptest::prelude::*;

/// A small pool of near-duplicate names so the similarity resolver has real
/// fusion work to do (not just identity commits).
const NAME_POOL: [&str; 8] = [
    "zarbot", "zar-bot", "ZarBot", "vexworm", "vex worm", "Lazarus", "lazarus", "krodown",
];

fn cti(i: usize, name_picks: &[usize], relate: bool) -> IntermediateCti {
    let meta = ReportMeta {
        id: ReportId::new("propsrc", &format!("r{i}")),
        source: SourceId(0),
        vendor: "PropVendor".to_owned(),
        title: format!("prop report {i}"),
        url: format!("https://propsrc.example/r{i}"),
        fetched_at_ms: 1_000 + i as u64,
        published_at_ms: None,
    };
    let mut out = IntermediateCti::new(meta, ReportCategory::Malware);
    let names: Vec<&str> = name_picks
        .iter()
        .map(|&p| NAME_POOL[p % NAME_POOL.len()])
        .collect();
    out.text = format!("the {} campaign used {}.", names.join(" and "), "mimikatz");
    for name in &names {
        out.mentions
            .push(EntityMention::new(EntityKind::Malware, *name, 0, 0));
    }
    if relate && out.mentions.len() >= 2 {
        out.relations.push(RelationMention::new(0, 1, "used"));
    }
    out
}

fn digest(connector: &GraphConnector) -> u64 {
    kg_ir::fnv1a64(&serde_json::to_vec(&connector.graph).expect("graph serialises"))
}

/// Resolve every CTI against an empty canon snapshot and stamp sequence
/// numbers in corpus order — exactly what the parallel resolve stage does.
fn resolve_all(ctis: &[IntermediateCti]) -> Vec<GraphDelta> {
    let connector = GraphConnector::with_resolver(ResolverConfig::standard());
    let resolver = connector.resolver().expect("graph connector resolves");
    ctis.iter()
        .enumerate()
        .map(|(i, c)| {
            let mut delta = resolver.resolve(c);
            delta.seq = i as u64;
            delta
        })
        .collect()
}

proptest! {
    /// apply_batch(permuted deltas) == apply_delta in sequence order.
    #[test]
    fn apply_batch_is_shuffle_invariant(
        picks in prop::collection::vec(
            (prop::collection::vec(0usize..8, 1..4), any::<bool>()),
            1..8,
        ),
        shuffle_seed in any::<u64>(),
    ) {
        let ctis: Vec<IntermediateCti> = picks
            .iter()
            .enumerate()
            .map(|(i, (names, relate))| cti(i, names, *relate))
            .collect();
        let deltas = resolve_all(&ctis);

        // Reference: strict sequence order, one delta at a time.
        let mut ordered = GraphConnector::with_resolver(ResolverConfig::standard());
        for delta in deltas.clone() {
            ordered.apply_delta(delta);
        }

        // Candidate: one batch, Fisher–Yates-permuted by the proptest seed.
        let mut shuffled = deltas;
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let mut batched = GraphConnector::with_resolver(ResolverConfig::standard());
        let outcomes = batched.apply_batch(shuffled);

        prop_assert_eq!(outcomes.len(), ctis.len());
        prop_assert_eq!(digest(&batched), digest(&ordered));
        prop_assert_eq!(batched.canon().len(), ordered.canon().len());
        prop_assert_eq!(batched.rejected_relations, ordered.rejected_relations);
    }
}
