//! The parallel connector's intermediate representation: self-contained
//! graph deltas.
//!
//! The classic connector did everything under the single writer: name
//! canonicalisation, ontology validation, BM25 tokenization, and the actual
//! hash-map merges. [`resolve_cti`] moves all of the CPU-heavy work into a
//! *resolve* phase that N workers run in parallel against read-only state (an
//! [`Ontology`], an [`IocMatcher`], a [`CanonSnapshot`]), producing a
//! [`GraphDelta`]: canonicalised entities with their [`Resolution`] evidence,
//! pre-validated relation edges, and pre-tokenized BM25 term counts. The
//! writer's apply phase is reduced to hash-map inserts/merges plus O(1)
//! canon-commit probes (see `GraphConnector::apply_delta`).
//!
//! Deltas are ordered by the port-assigned sequence number `seq`, and the
//! writer applies them in that order — so the final graph is byte-identical
//! to a sequential build no matter how many resolve workers raced.

use crate::stages::{plausible_concept_name, StyleParser};
use kg_fusion::{CanonSnapshot, Resolution};
use kg_ir::{EntityMention, IntermediateCti};
use kg_nlp::IocMatcher;
use kg_ontology::{EntityKind, Ontology, RelationKind};
use kg_search::SearchIndex;
use serde::{Deserialize, Serialize};

/// One canonicalised entity mention inside a delta.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaEntity {
    /// Entity label (the mention kind's label).
    pub label: String,
    /// Raw canonical name from the mention text.
    pub raw: String,
    /// Worker-side resolution of `raw` against the canon snapshot; the
    /// writer commits it against the live table.
    pub resolution: Resolution,
}

/// One ontology-validated relation inside a delta, referencing entity slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaRelation {
    /// Index into [`GraphDelta::entities`].
    pub subject: usize,
    /// Index into [`GraphDelta::entities`].
    pub object: usize,
    /// Validated relation label.
    pub rel_label: String,
    /// The extracted verb, kept as an edge property on `RELATED_TO` edges.
    pub verb: Option<String>,
}

/// Everything the writer needs to merge one report into the graph and the
/// keyword index — no tokenization, no similarity scoring, no string
/// normalisation left to do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphDelta {
    /// Port-assigned sequence number; the writer applies deltas in `seq`
    /// order (batches may arrive shuffled, `apply_batch` sorts).
    pub seq: u64,
    pub report_id: String,
    /// The report node's label (report-category entity kind).
    pub report_label: String,
    pub title: String,
    pub source_url: String,
    pub fetched_at_ms: u64,
    pub vendor: String,
    /// Per-mention entities, `None` for skipped implausible/empty names.
    pub entities: Vec<Option<DeltaEntity>>,
    pub relations: Vec<DeltaRelation>,
    /// Relations that failed ontology validation (diagnostics counter).
    pub rejected_relations: usize,
    /// DESCRIBES candidates `(label, canonical name)` from structured
    /// metadata; linked at apply time only if the node exists then (the
    /// classic connector's only-if-present semantics).
    pub describes: Vec<(String, String)>,
    /// Pre-tokenized BM25 term counts, sorted by term.
    pub terms: Vec<(String, u32)>,
    /// Total token count of the indexed text.
    pub token_len: u32,
}

/// What applying one delta did (surfaced into metrics and the trace).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Worker resolutions re-resolved at commit (stale-snapshot conflicts).
    pub conflicts: usize,
    /// `Some(entries)` when this apply republished the canon snapshot.
    pub canon_published: Option<usize>,
}

/// What flows from the resolve stage to the writer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Resolved {
    /// A precomputed delta (connectors that provide a resolver).
    Delta(GraphDelta),
    /// Passthrough for plain connectors: the writer calls `connect` itself,
    /// still in sequence order.
    Cti(IntermediateCti),
}

impl Resolved {
    /// Report id, for quarantine records.
    pub fn report_id(&self) -> &str {
        match self {
            Resolved::Delta(delta) => &delta.report_id,
            Resolved::Cti(cti) => cti.meta.id.as_str(),
        }
    }
}

/// A resolve-phase worker: turns an extracted CTI into a [`GraphDelta`]
/// using only shared read-only state.
pub trait CtiResolver: Send + Sync {
    fn resolve(&self, cti: &IntermediateCti) -> GraphDelta;
}

/// The structured-metadata keys the classic connector promoted to DESCRIBES
/// edges.
pub(crate) const DESCRIBES_KEYS: [&str; 3] = ["family", "cve id", "threat actor"];

/// The resolve phase, shared verbatim by the parallel workers, the
/// sequential baseline and `GraphConnector::connect`: canonicalise every
/// mention against `snapshot`, validate relations against `ontology`, and
/// tokenize the report text for BM25. `seq` is left 0 — the engine stamps it.
pub fn resolve_cti(
    cti: &IntermediateCti,
    ontology: &Ontology,
    matcher: &IocMatcher,
    snapshot: &CanonSnapshot,
) -> GraphDelta {
    let mut entities: Vec<Option<DeltaEntity>> = Vec::with_capacity(cti.mentions.len());
    for mention in &cti.mentions {
        let name = mention.canonical_name();
        if name.is_empty() || (!mention.kind.is_ioc() && !plausible_concept_name(&name)) {
            entities.push(None);
            continue;
        }
        let label = mention.kind.label();
        let resolution = snapshot.resolve(label, &name);
        entities.push(Some(DeltaEntity {
            label: label.to_owned(),
            raw: name,
            resolution,
        }));
    }

    let mut describes = Vec::new();
    for key in DESCRIBES_KEYS {
        if let Some(value) = cti.structured.get(key) {
            if let Some(kind) = StyleParser::kind_for_key(key) {
                let name = EntityMention::new(kind, value.clone(), 0, 0).canonical_name();
                describes.push((kind.label().to_owned(), name));
            }
        }
    }

    let mut relations = Vec::new();
    let mut rejected_relations = 0usize;
    for rel in &cti.relations {
        let (Some(Some(_)), Some(Some(_))) = (entities.get(rel.subject), entities.get(rel.object))
        else {
            continue;
        };
        let s_kind = cti.mentions[rel.subject].kind;
        let o_kind = cti.mentions[rel.object].kind;
        let kind = rel
            .kind
            .or_else(|| ontology.resolve_extracted(s_kind, &rel.verb, o_kind));
        match kind {
            Some(kind) if ontology.allows(s_kind, kind, o_kind) => {
                relations.push(DeltaRelation {
                    subject: rel.subject,
                    object: rel.object,
                    rel_label: kind.label().to_owned(),
                    verb: (kind == RelationKind::RelatedTo).then(|| rel.verb.clone()),
                });
            }
            _ => rejected_relations += 1,
        }
    }

    let (terms, token_len) =
        SearchIndex::<u32>::term_counts_with(matcher, &format!("{}\n{}", cti.meta.title, cti.text));

    GraphDelta {
        seq: 0,
        report_id: cti.meta.id.as_str().to_owned(),
        report_label: cti.category.entity_kind().label().to_owned(),
        title: cti.meta.title.clone(),
        source_url: cti.meta.url.clone(),
        fetched_at_ms: cti.meta.fetched_at_ms,
        vendor: cti.meta.vendor.clone(),
        entities,
        relations,
        rejected_relations,
        describes,
        terms,
        token_len,
    }
}

/// The vendor provenance label, needed at apply time.
pub(crate) fn vendor_label() -> &'static str {
    EntityKind::CtiVendor.label()
}
