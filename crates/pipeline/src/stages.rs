//! Pipeline components (paper §2.4): porters, checkers, source-dependent
//! parsers, source-independent extractors, and storage connectors.

use crate::delta::{resolve_cti, vendor_label, ApplyOutcome, CtiResolver, GraphDelta};
use crate::html;
use kg_fusion::{CanonSnapshot, CanonTable, ResolverConfig};
use kg_graph::{GraphStore, NodeId, Value};
use kg_ir::{
    EntityMention, IntermediateCti, IntermediateReport, MentionOrigin, RawReport, RelationMention,
    ReportId, ReportMeta,
};
use kg_nlp::IocMatcher;
use kg_ontology::{EntityKind, Ontology, RelationKind, ReportCategory};
use kg_search::SearchIndex;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Porter
// ---------------------------------------------------------------------------

/// Porters "take the input report files and convert them into intermediate
/// report representations; they group multi-page reports and add metadata".
pub trait Porter: Send {
    /// Feed one raw page; returns a completed report when all of its pages
    /// have arrived.
    fn feed(&mut self, raw: RawReport) -> Option<IntermediateReport>;
    /// Flush incomplete groups at end of stream (best-effort reports).
    fn flush(&mut self) -> Vec<IntermediateReport>;
}

/// The default porter: groups pages by `(source, report_key)`.
#[derive(Debug, Default)]
pub struct DefaultPorter {
    pending: HashMap<(u32, String), Vec<RawReport>>,
}

impl DefaultPorter {
    /// New empty porter.
    pub fn new() -> Self {
        Self::default()
    }

    fn assemble(mut pages: Vec<RawReport>) -> IntermediateReport {
        pages.sort_by_key(|p| p.page);
        let first = &pages[0];
        let mut metadata = BTreeMap::new();
        metadata.insert("pages".to_owned(), pages.len().to_string());
        IntermediateReport {
            id: ReportId::new(&first.source_name, &first.report_key),
            source: first.source,
            source_name: first.source_name.clone(),
            title: html::first_tag(&first.body, "title").unwrap_or_default(),
            url: first.url.clone(),
            fetched_at_ms: pages.iter().map(|p| p.fetched_at_ms).max().unwrap_or(0),
            location: Some(format!(
                "archive/{}/{}",
                first.source_name, first.report_key
            )),
            pages: pages.into_iter().map(|p| p.body).collect(),
            metadata,
        }
    }
}

impl Porter for DefaultPorter {
    fn feed(&mut self, raw: RawReport) -> Option<IntermediateReport> {
        let expected = raw.total_pages.unwrap_or(1) as usize;
        let key = (raw.source.0, raw.report_key.clone());
        let entry = self.pending.entry(key.clone()).or_default();
        entry.push(raw);
        if entry.len() >= expected {
            let pages = self.pending.remove(&key).unwrap();
            Some(Self::assemble(pages))
        } else {
            None
        }
    }

    fn flush(&mut self) -> Vec<IntermediateReport> {
        let pending = std::mem::take(&mut self.pending);
        pending.into_values().map(Self::assemble).collect()
    }
}

// ---------------------------------------------------------------------------
// Checker
// ---------------------------------------------------------------------------

/// Checkers "work as filters ...; they screen out irrelevant reports like
/// empty pages or ads by running condition checks".
pub trait Checker: Send + Sync {
    /// Keep the report?
    fn check(&self, report: &IntermediateReport) -> bool;
}

/// The default checker: drops ad pages and empty/near-empty articles.
#[derive(Debug, Clone)]
pub struct DefaultChecker {
    /// Minimum total paragraph text length to count as a real article.
    pub min_text_len: usize,
}

impl Default for DefaultChecker {
    fn default() -> Self {
        DefaultChecker { min_text_len: 40 }
    }
}

impl Checker for DefaultChecker {
    fn check(&self, report: &IntermediateReport) -> bool {
        let body = report.full_body();
        if html::has_class(&body, "ad") {
            return false;
        }
        let text_len: usize = html::content_paragraphs(&body)
            .iter()
            .map(String::len)
            .sum();
        text_len >= self.min_text_len
    }
}

/// Cross-source duplicate screening: drops a report whose *article text*
/// was already seen under a different report id (mirrored articles,
/// syndicated feeds). Hashing the extracted paragraphs rather than raw HTML
/// makes the check template-independent.
#[derive(Debug, Default)]
pub struct DedupChecker {
    seen: parking_lot::Mutex<HashMap<u64, String>>,
}

impl DedupChecker {
    /// Fresh checker with an empty seen-set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct article texts observed so far.
    pub fn distinct_seen(&self) -> usize {
        self.seen.lock().len()
    }
}

impl Checker for DedupChecker {
    fn check(&self, report: &IntermediateReport) -> bool {
        let text = report
            .pages
            .iter()
            .flat_map(|p| html::content_paragraphs(p))
            .collect::<Vec<_>>()
            .join("\n");
        if text.is_empty() {
            // Nothing to fingerprint; leave the decision to other checkers.
            return true;
        }
        let hash = kg_ir::fnv1a64(text.as_bytes());
        let mut seen = self.seen.lock();
        match seen.get(&hash) {
            Some(first) => first == report.id.as_str(),
            None => {
                seen.insert(hash, report.id.as_str().to_owned());
                true
            }
        }
    }
}

/// Checker composition: a report passes only if every member passes — the
/// paper's "multiple components with the same interface work together in
/// the same processing step".
pub struct CompositeChecker {
    pub members: Vec<Box<dyn Checker>>,
}

impl Checker for CompositeChecker {
    fn check(&self, report: &IntermediateReport) -> bool {
        self.members.iter().all(|c| c.check(report))
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The page has no recognisable article structure.
    NoContent,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::NoContent => f.write_str("page has no article content"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parsers are source-dependent: they know the source's page structure and
/// "extract keys and values from report files".
pub trait Parser: Send + Sync {
    fn parse(&self, report: &IntermediateReport) -> Result<IntermediateCti, ParseError>;
}

/// Which structured-metadata dialect a source uses. Mirrors the corpus
/// template styles; [`StyleParser::sniff`] can detect it from a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaDialect {
    Table,
    DefinitionList,
    None,
}

/// A parser for one HTML dialect.
#[derive(Debug, Clone)]
pub struct StyleParser {
    pub dialect: MetaDialect,
}

impl StyleParser {
    /// Detect the dialect from a page body.
    pub fn sniff(body: &str) -> MetaDialect {
        if body.contains("<table class=\"meta\">") {
            MetaDialect::Table
        } else if body.contains("<dl class=\"meta\">") {
            MetaDialect::DefinitionList
        } else {
            MetaDialect::None
        }
    }

    /// The entity kind implied by a structured-metadata key.
    pub fn kind_for_key(key: &str) -> Option<EntityKind> {
        Some(match key {
            "family" => EntityKind::Malware,
            "md5" => EntityKind::HashMd5,
            "sha1" => EntityKind::HashSha1,
            "sha256" => EntityKind::HashSha256,
            "c2 server" => EntityKind::Domain,
            "cve id" => EntityKind::Vulnerability,
            "affected product" => EntityKind::Software,
            "threat actor" => EntityKind::ThreatActor,
            "campaign" => EntityKind::Campaign,
            _ => return None,
        })
    }
}

impl Parser for StyleParser {
    fn parse(&self, report: &IntermediateReport) -> Result<IntermediateCti, ParseError> {
        let body = report.full_body();
        let category = match html::first_with_class(&body, "category").as_deref() {
            Some("malware") => ReportCategory::Malware,
            Some("vulnerability") => ReportCategory::Vulnerability,
            Some("attack") => ReportCategory::Attack,
            _ => ReportCategory::Attack,
        };
        // Paragraphs from every page, in order, joined canonically.
        let paragraphs: Vec<String> = report
            .pages
            .iter()
            .flat_map(|p| html::content_paragraphs(p))
            .collect();
        if paragraphs.is_empty() {
            return Err(ParseError::NoContent);
        }
        let text = paragraphs.join("\n");

        let meta = ReportMeta {
            id: report.id.clone(),
            source: report.source,
            vendor: report.source_name.clone(),
            title: if report.title.is_empty() {
                html::first_tag(&body, "h1").unwrap_or_default()
            } else {
                report.title.clone()
            },
            url: report.url.clone(),
            fetched_at_ms: report.fetched_at_ms,
            published_at_ms: None,
        };
        let mut cti = IntermediateCti::new(meta, category);
        cti.text = text;

        let rows = match self.dialect {
            MetaDialect::Table => html::meta_table_rows(&body),
            MetaDialect::DefinitionList => html::meta_dl_rows(&body),
            MetaDialect::None => Vec::new(),
        };
        for (key, value) in rows {
            let key = key.to_lowercase();
            if let Some(kind) = Self::kind_for_key(&key) {
                cti.push_mention(
                    EntityMention::new(kind, value.clone(), 0, 0)
                        .with_origin(MentionOrigin::Structured),
                );
            }
            cti.structured.insert(key, value);
        }
        Ok(cti)
    }
}

/// The per-source parser registry (source-dependence), with a sniffing
/// fallback for unknown sources (extensibility).
#[derive(Default)]
pub struct ParserRegistry {
    by_source: HashMap<String, Arc<dyn Parser>>,
}

impl ParserRegistry {
    /// Empty registry (sniffing fallback only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a parser for a source.
    pub fn register(&mut self, source_name: &str, parser: Arc<dyn Parser>) {
        self.by_source.insert(source_name.to_owned(), parser);
    }

    /// Parse using the source's parser or the sniffing fallback.
    pub fn parse(&self, report: &IntermediateReport) -> Result<IntermediateCti, ParseError> {
        if let Some(parser) = self.by_source.get(&report.source_name) {
            return parser.parse(report);
        }
        let dialect = StyleParser::sniff(&report.full_body());
        StyleParser { dialect }.parse(report)
    }
}

// ---------------------------------------------------------------------------
// Extractor
// ---------------------------------------------------------------------------

/// Extractors are source-independent: they "refine these intermediate CTI
/// representations by completing some of the fields using entity recognition
/// and relation extraction".
pub trait Extractor: Send + Sync {
    fn extract(&self, cti: &mut IntermediateCti);
}

/// The full NER + relation extractor backed by the trained CRF pipeline.
pub struct NerExtractor {
    pub pipeline: Arc<kg_extract::NerPipeline>,
}

impl Extractor for NerExtractor {
    fn extract(&self, cti: &mut IntermediateCti) {
        let extractions = self.pipeline.extract(&cti.text);
        for se in &extractions {
            // Map sentence-local span indices to cti mention indices.
            let mention_ids: Vec<usize> = kg_extract::ner::sentence_mentions(se)
                .into_iter()
                .map(|m| cti.push_mention(m))
                .collect();
            for rel in &se.relations {
                cti.relations.push(
                    RelationMention::new(
                        mention_ids[rel.subject],
                        mention_ids[rel.object],
                        rel.verb.clone(),
                    )
                    .with_kind(rel.kind),
                );
            }
        }
    }
}

/// The baseline extractor: IOC scanning + gazetteer lookup only (what the
/// paper's "naive entity recognition solution that relies on regex rules"
/// would produce).
pub struct IocOnlyExtractor {
    pub baseline: Arc<kg_extract::RegexNerBaseline>,
}

impl Extractor for IocOnlyExtractor {
    fn extract(&self, cti: &mut IntermediateCti) {
        let extractions = self.baseline.extract(&cti.text);
        for se in &extractions {
            let mention_ids: Vec<usize> = kg_extract::ner::sentence_mentions(se)
                .into_iter()
                .map(|m| cti.push_mention(m))
                .collect();
            for rel in &se.relations {
                cti.relations.push(
                    RelationMention::new(
                        mention_ids[rel.subject],
                        mention_ids[rel.object],
                        rel.verb.clone(),
                    )
                    .with_kind(rel.kind),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Connector
// ---------------------------------------------------------------------------

/// How often the connect writer republishes the canon snapshot handed to
/// resolve workers. Purely a performance knob: commits are authoritative for
/// any snapshot staleness, so the cadence never changes the final graph.
pub const CANON_REFRESH_EVERY: usize = 64;

/// Connectors "merge the intermediate CTI representations into the
/// corresponding storage by refactoring them to match our ontology".
///
/// A connector may additionally *split* its work into a parallel resolve
/// phase and a serial apply phase by providing a [`CtiResolver`]. The engine
/// then runs N resolve workers producing [`GraphDelta`]s and calls
/// [`Connector::apply_delta`] on the single writer, in sequence order.
/// Connectors without a resolver keep the classic single-phase `connect`
/// path, also called in sequence order.
pub trait Connector: Send {
    fn connect(&mut self, cti: &IntermediateCti);

    /// A shareable resolve-phase worker, or `None` for single-phase
    /// connectors.
    fn resolver(&self) -> Option<Arc<dyn CtiResolver>> {
        None
    }

    /// Apply one precomputed delta. Called only when [`Connector::resolver`]
    /// returned `Some`.
    fn apply_delta(&mut self, _delta: GraphDelta) -> ApplyOutcome {
        unreachable!("apply_delta called on a connector without a resolver")
    }

    /// Apply a batch of deltas. Order inside the batch is irrelevant: the
    /// batch is sorted by sequence number before applying, so any
    /// interleaving the resolve workers produced converges to the same
    /// state.
    fn apply_batch(&mut self, mut deltas: Vec<GraphDelta>) -> Vec<ApplyOutcome> {
        deltas.sort_by_key(|d| d.seq);
        deltas.into_iter().map(|d| self.apply_delta(d)).collect()
    }
}

/// The graph connector (the default "Neo4j" path): merges entities by exact
/// canonical name (§2.5), creates report/vendor provenance nodes, ontology-
/// validated relation edges, and feeds the keyword index.
///
/// Provides the split resolve/apply path: its resolver canonicalises names
/// against a [`CanonSnapshot`] and pre-tokenizes BM25 terms off the writer
/// thread; [`GraphConnector::apply_delta`] is left with hash-map merges and
/// O(1) canon-commit probes.
pub struct GraphConnector {
    pub graph: GraphStore,
    pub search: SearchIndex<NodeId>,
    pub ontology: Ontology,
    /// Reports whose relations failed ontology validation (diagnostics).
    pub rejected_relations: usize,
    /// Worker resolutions invalidated by canon entries appended after their
    /// snapshot and re-resolved at apply time.
    pub canon_conflicts: usize,
    canon: CanonTable,
    snapshot_cell: Arc<RwLock<CanonSnapshot>>,
    matcher: IocMatcher,
    applied: usize,
}

impl Default for GraphConnector {
    fn default() -> Self {
        Self::with_resolver(ResolverConfig::default())
    }
}

impl GraphConnector {
    /// Fresh empty backend with ingest-time canonicalisation disabled (the
    /// classic exact-name merge behaviour).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh empty backend with the given canonicalisation policy.
    pub fn with_resolver(config: ResolverConfig) -> Self {
        let canon = CanonTable::new(config);
        let snapshot_cell = Arc::new(RwLock::new(canon.snapshot()));
        GraphConnector {
            graph: GraphStore::new(),
            search: SearchIndex::default(),
            ontology: Ontology::standard(),
            rejected_relations: 0,
            canon_conflicts: 0,
            canon,
            snapshot_cell,
            matcher: IocMatcher::standard(),
            applied: 0,
        }
    }

    /// Rebuild a connector around pre-existing state (durable resume). The
    /// canon table is re-seeded from the graph so resumed runs resolve names
    /// exactly as the original run would have continued to.
    pub fn with_state(graph: GraphStore, search: SearchIndex<NodeId>) -> Self {
        let mut connector = Self::new();
        connector.canon.seed_from_graph(&graph);
        connector.graph = graph;
        connector.search = search;
        *connector.snapshot_cell.write() = connector.canon.snapshot();
        connector
    }

    /// The live canon table (entry count is what tests care about).
    pub fn canon(&self) -> &CanonTable {
        &self.canon
    }
}

/// Function words and other strings that can never be a real concept-entity
/// name; NER false positives on these would otherwise pollute the graph.
const IMPLAUSIBLE_NAMES: &[&str] = &[
    "the", "a", "an", "in", "on", "to", "of", "and", "or", "by", "it", "its", "is", "was", "for",
    "with", "from", "as", "at", "this", "that", "new", "via",
];

/// Whether a canonical name is plausible for a concept (non-IOC) entity.
pub(crate) fn plausible_concept_name(name: &str) -> bool {
    name.len() >= 3 && !IMPLAUSIBLE_NAMES.contains(&name)
}

/// The graph connector's resolve-phase worker: read-only ontology + IOC
/// matcher, plus the snapshot cell the writer republishes into.
struct GraphResolver {
    ontology: Ontology,
    matcher: IocMatcher,
    snapshot: Arc<RwLock<CanonSnapshot>>,
}

impl CtiResolver for GraphResolver {
    fn resolve(&self, cti: &IntermediateCti) -> GraphDelta {
        let snapshot = self.snapshot.read().clone();
        resolve_cti(cti, &self.ontology, &self.matcher, &snapshot)
    }
}

impl Connector for GraphConnector {
    /// The single-phase path is literally resolve-then-apply against the
    /// live table — the exact code the split pipeline runs, which is what
    /// makes sequential and parallel builds byte-identical.
    fn connect(&mut self, cti: &IntermediateCti) {
        let snapshot = self.snapshot_cell.read().clone();
        let delta = resolve_cti(cti, &self.ontology, &self.matcher, &snapshot);
        self.apply_delta(delta);
    }

    fn resolver(&self) -> Option<Arc<dyn CtiResolver>> {
        *self.snapshot_cell.write() = self.canon.snapshot();
        Some(Arc::new(GraphResolver {
            ontology: self.ontology.clone(),
            matcher: IocMatcher::standard(),
            snapshot: Arc::clone(&self.snapshot_cell),
        }))
    }

    /// The serial apply phase: pure hash-map inserts/merges plus O(1)
    /// canon-commit probes (similarity is only recomputed over entries
    /// appended after the worker's snapshot).
    fn apply_delta(&mut self, delta: GraphDelta) -> ApplyOutcome {
        let mut outcome = ApplyOutcome::default();
        let report_node = self.graph.merge_node(
            &delta.report_label,
            &delta.report_id,
            [
                ("title", Value::from(delta.title)),
                ("source_url", Value::from(delta.source_url)),
                ("timestamp", Value::from(delta.fetched_at_ms as i64)),
            ],
        );
        let vendor = self
            .graph
            .merge_node(vendor_label(), &delta.vendor, [] as [(&str, Value); 0]);
        let _ = self
            .graph
            .merge_edge(vendor, RelationKind::Publishes.label(), report_node);

        // Entity mentions → canon commit → merged entity nodes + MENTIONS.
        let mut nodes: Vec<Option<NodeId>> = Vec::with_capacity(delta.entities.len());
        for entity in &delta.entities {
            let Some(entity) = entity else {
                nodes.push(None);
                continue;
            };
            let committed = self
                .canon
                .commit(&entity.label, &entity.raw, &entity.resolution);
            if committed.conflict {
                outcome.conflicts += 1;
            }
            let node = self.graph.merge_node(
                &entity.label,
                &committed.name,
                [("description", Value::from(committed.name.clone()))],
            );
            let _ = self
                .graph
                .merge_edge(report_node, RelationKind::Mentions.label(), node);
            nodes.push(Some(node));
        }

        // DESCRIBES: linked only when the subject node already exists (same
        // only-if-present rule as the classic connector; looked up by raw
        // canonical name).
        for (label, name) in &delta.describes {
            if let Some(node) = self.graph.node_by_name(label, name) {
                let _ = self
                    .graph
                    .merge_edge(report_node, RelationKind::Describes.label(), node);
            }
        }

        // Relations were already ontology-validated worker-side.
        for rel in &delta.relations {
            let (Some(Some(s)), Some(Some(o))) = (nodes.get(rel.subject), nodes.get(rel.object))
            else {
                continue;
            };
            if let Ok(edge) = self.graph.merge_edge(*s, &rel.rel_label, *o) {
                if let Some(verb) = &rel.verb {
                    if let Some(e) = self.graph.edge_mut(edge) {
                        e.props
                            .entry("verb".to_owned())
                            .or_insert_with(|| Value::from(verb.clone()));
                    }
                }
            }
        }
        self.rejected_relations += delta.rejected_relations;

        // Keyword index entry for the report, pre-tokenized worker-side.
        self.search
            .add_pretokenized(report_node, delta.terms, delta.token_len);

        self.canon_conflicts += outcome.conflicts;
        self.applied += 1;
        if self.applied.is_multiple_of(CANON_REFRESH_EVERY) {
            *self.snapshot_cell.write() = self.canon.snapshot();
            outcome.canon_published = Some(self.canon.len());
        }
        outcome
    }
}

/// The alternative RDBMS-style connector (paper §2.1: "he may switch to a
/// RDBMS using a SQL connector"): flat entity and relation tables.
#[derive(Debug, Default)]
pub struct TabularConnector {
    /// (label, name) rows, unique.
    pub entities: Vec<(String, String)>,
    entity_index: HashMap<(String, String), usize>,
    /// (subject row, relation, object row) rows.
    pub relations: Vec<(usize, String, usize)>,
    /// (report id, entity row) provenance rows.
    pub mentions: Vec<(String, usize)>,
}

impl TabularConnector {
    /// Fresh empty tables.
    pub fn new() -> Self {
        Self::default()
    }

    fn upsert(&mut self, label: &str, name: &str) -> usize {
        let key = (label.to_owned(), name.to_owned());
        if let Some(&row) = self.entity_index.get(&key) {
            return row;
        }
        let row = self.entities.len();
        self.entities.push(key.clone());
        self.entity_index.insert(key, row);
        row
    }
}

impl Connector for TabularConnector {
    fn connect(&mut self, cti: &IntermediateCti) {
        let mut rows = Vec::with_capacity(cti.mentions.len());
        for mention in &cti.mentions {
            let name = mention.canonical_name();
            let row = self.upsert(mention.kind.label(), &name);
            self.mentions.push((cti.meta.id.as_str().to_owned(), row));
            rows.push(row);
        }
        for rel in &cti.relations {
            if rel.subject < rows.len() && rel.object < rows.len() {
                let kind = rel
                    .kind
                    .map(|k| k.label().to_owned())
                    .unwrap_or_else(|| RelationKind::RelatedTo.label().to_owned());
                self.relations
                    .push((rows[rel.subject], kind, rows[rel.object]));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_ir::FetchStatus;

    fn raw(key: &str, page: u32, total: u32, body: &str) -> RawReport {
        RawReport {
            source: kg_ir::SourceId(1),
            source_name: "securelist".into(),
            url: format!("https://securelist.example/reports/{key}?page={page}"),
            report_key: key.into(),
            page,
            total_pages: Some(total),
            status: FetchStatus::Ok,
            body: body.into(),
            fetched_at_ms: page as u64,
        }
    }

    const ARTICLE: &str = r#"<html><head><title>Emotet deep dive</title></head><body>
<h1>Emotet deep dive</h1>
<span class="category">malware</span>
<table class="meta">
<tr><th>family</th><td>emotet</td></tr>
<tr><th>sha256</th><td>aaabbb</td></tr>
</table>
<div class="content">
<p>The emotet malware dropped invoice7.exe on infected hosts.</p>
<p>Organizations are advised to apply the latest security updates.</p>
</div>
</body></html>"#;

    #[test]
    fn porter_groups_multipage_reports() {
        let mut porter = DefaultPorter::new();
        assert!(porter.feed(raw("r1", 1, 2, "<p>page1</p>")).is_none());
        let done = porter.feed(raw("r1", 2, 2, "<p>page2</p>")).unwrap();
        assert_eq!(done.pages.len(), 2);
        assert_eq!(done.id.as_str(), "securelist/r1");
        assert_eq!(done.fetched_at_ms, 2);
        // Single-page reports complete immediately.
        assert!(porter.feed(raw("r2", 1, 1, ARTICLE)).is_some());
        assert!(porter.flush().is_empty());
    }

    #[test]
    fn porter_flush_emits_partials() {
        let mut porter = DefaultPorter::new();
        assert!(porter.feed(raw("r9", 1, 2, "<p>only page</p>")).is_none());
        let flushed = porter.flush();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].pages.len(), 1);
    }

    #[test]
    fn checker_screens_ads_and_empty_pages() {
        let mut porter = DefaultPorter::new();
        let checker = DefaultChecker::default();
        let good = porter.feed(raw("r1", 1, 1, ARTICLE)).unwrap();
        assert!(checker.check(&good));
        let ad = porter
            .feed(raw(
                "ad",
                1,
                1,
                "<div class=\"ad\">Sponsored</div><div class=\"content\"></div>",
            ))
            .unwrap();
        assert!(!checker.check(&ad));
        let empty = porter
            .feed(raw("e", 1, 1, "<div class=\"content\"><p>hi</p></div>"))
            .unwrap();
        assert!(!checker.check(&empty));
    }

    #[test]
    fn dedup_checker_drops_mirrored_articles() {
        let mut porter = DefaultPorter::new();
        let dedup = DedupChecker::new();
        let original = porter.feed(raw("r1", 1, 1, ARTICLE)).unwrap();
        assert!(dedup.check(&original));
        // Re-checking the same report id passes (idempotent re-processing).
        assert!(dedup.check(&original));
        // The same article under a different id (a mirror) is dropped.
        let mut mirror = porter.feed(raw("r2", 1, 1, ARTICLE)).unwrap();
        mirror.source_name = "mirror-site".into();
        assert!(!dedup.check(&mirror));
        assert_eq!(dedup.distinct_seen(), 1);
        // A contentless page is not fingerprinted.
        let empty = porter.feed(raw("r3", 1, 1, "<p>x</p>")).unwrap();
        assert!(dedup.check(&empty));
    }

    #[test]
    fn composite_checker_requires_all_members() {
        let composite = CompositeChecker {
            members: vec![
                Box::new(DefaultChecker::default()),
                Box::new(DedupChecker::new()),
            ],
        };
        let mut porter = DefaultPorter::new();
        let good = porter.feed(raw("r1", 1, 1, ARTICLE)).unwrap();
        assert!(composite.check(&good));
        // Fails the dedup member under a new id.
        let copy = porter.feed(raw("r9", 1, 1, ARTICLE)).unwrap();
        assert!(!composite.check(&copy));
        // Fails the default member (ad page).
        let ad = porter
            .feed(raw("ad", 1, 1, "<div class=\"ad\">x</div><div class=\"content\"><p>some long enough article body text here</p></div>"))
            .unwrap();
        assert!(!composite.check(&ad));
    }

    #[test]
    fn style_parser_extracts_structure() {
        let mut porter = DefaultPorter::new();
        let report = porter.feed(raw("r1", 1, 1, ARTICLE)).unwrap();
        let cti = StyleParser {
            dialect: MetaDialect::Table,
        }
        .parse(&report)
        .unwrap();
        assert_eq!(cti.category, ReportCategory::Malware);
        assert_eq!(cti.meta.title, "Emotet deep dive");
        assert_eq!(cti.structured["family"], "emotet");
        assert!(cti.text.starts_with("The emotet malware dropped"));
        assert_eq!(cti.text.split('\n').count(), 2);
        // Structured mentions carry their kinds.
        assert!(cti
            .mentions
            .iter()
            .any(|m| m.kind == EntityKind::Malware && m.origin == MentionOrigin::Structured));
        assert!(cti
            .mentions
            .iter()
            .any(|m| m.kind == EntityKind::HashSha256));
    }

    #[test]
    fn registry_sniffs_unknown_sources() {
        let mut porter = DefaultPorter::new();
        let report = porter.feed(raw("r1", 1, 1, ARTICLE)).unwrap();
        let registry = ParserRegistry::new();
        let cti = registry.parse(&report).unwrap();
        assert_eq!(cti.structured.len(), 2);
        assert_eq!(StyleParser::sniff(ARTICLE), MetaDialect::Table);
        assert_eq!(StyleParser::sniff("<p>plain</p>"), MetaDialect::None);
    }

    #[test]
    fn graph_connector_builds_provenance_and_merges() {
        let mut porter = DefaultPorter::new();
        let registry = ParserRegistry::new();
        let mut connector = GraphConnector::new();
        for key in ["r1", "r2"] {
            let report = porter.feed(raw(key, 1, 1, ARTICLE)).unwrap();
            let cti = registry.parse(&report).unwrap();
            connector.connect(&cti);
        }
        let g = &connector.graph;
        // Two reports, one vendor, one malware entity (merged), one hash.
        assert_eq!(g.nodes_with_label("MalwareReport").len(), 2);
        assert_eq!(g.nodes_with_label("CtiVendor").len(), 1);
        assert_eq!(g.nodes_with_label("Malware").len(), 1);
        let emotet = g.node_by_name("Malware", "emotet").unwrap();
        // Both reports mention it.
        assert_eq!(
            g.incoming(emotet)
                .iter()
                .filter(|e| e.rel_type == "MENTIONS")
                .count(),
            2
        );
        // DESCRIBES from structured metadata.
        assert!(g.incoming(emotet).iter().any(|e| e.rel_type == "DESCRIBES"));
        // Keyword search reaches the reports.
        assert_eq!(connector.search.search("emotet", 10).len(), 2);
    }

    #[test]
    fn graph_connector_validates_relations() {
        let meta = ReportMeta {
            id: ReportId::new("s", "k"),
            source: kg_ir::SourceId(0),
            vendor: "s".into(),
            title: "t".into(),
            url: "u".into(),
            fetched_at_ms: 0,
            published_at_ms: None,
        };
        let mut cti = IntermediateCti::new(meta, ReportCategory::Malware);
        cti.text = "x".into();
        let m = cti.push_mention(EntityMention::new(EntityKind::Malware, "zeus", 0, 0));
        let f = cti.push_mention(EntityMention::new(EntityKind::FileName, "a.exe", 0, 0));
        // Valid: zeus DROP a.exe. Invalid: a.exe DROP zeus.
        cti.relations
            .push(RelationMention::new(m, f, "drop").with_kind(RelationKind::Drop));
        cti.relations
            .push(RelationMention::new(f, m, "drop").with_kind(RelationKind::Drop));
        let mut connector = GraphConnector::new();
        connector.connect(&cti);
        assert_eq!(connector.rejected_relations, 1);
        let zeus = connector.graph.node_by_name("Malware", "zeus").unwrap();
        assert_eq!(
            connector
                .graph
                .outgoing(zeus)
                .iter()
                .filter(|e| e.rel_type == "DROP")
                .count(),
            1
        );
    }

    #[test]
    fn graph_connector_drops_implausible_concept_names() {
        let meta = ReportMeta {
            id: ReportId::new("s", "k"),
            source: kg_ir::SourceId(0),
            vendor: "s".into(),
            title: "t".into(),
            url: "u".into(),
            fetched_at_ms: 0,
            published_at_ms: None,
        };
        let mut cti = IntermediateCti::new(meta, ReportCategory::Attack);
        cti.text = "x".into();
        // NER false positives on function words must not become entities...
        cti.push_mention(EntityMention::new(EntityKind::ThreatActor, "in", 0, 0));
        cti.push_mention(EntityMention::new(EntityKind::Malware, "to", 0, 0));
        // ...but real names and short IOCs survive.
        cti.push_mention(EntityMention::new(EntityKind::ThreatActor, "apt29", 0, 0));
        let mut connector = GraphConnector::new();
        connector.connect(&cti);
        assert!(connector.graph.node_by_name("ThreatActor", "in").is_none());
        assert!(connector.graph.node_by_name("Malware", "to").is_none());
        assert!(connector
            .graph
            .node_by_name("ThreatActor", "apt29")
            .is_some());
    }

    #[test]
    fn tabular_connector_flattens() {
        let mut porter = DefaultPorter::new();
        let registry = ParserRegistry::new();
        let mut connector = TabularConnector::new();
        for key in ["r1", "r2"] {
            let report = porter.feed(raw(key, 1, 1, ARTICLE)).unwrap();
            let cti = registry.parse(&report).unwrap();
            connector.connect(&cti);
        }
        // emotet + hash, deduplicated across reports.
        assert_eq!(connector.entities.len(), 2);
        assert_eq!(connector.mentions.len(), 4);
    }
}
