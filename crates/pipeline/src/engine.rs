//! Pipelined execution (paper §2.1, "Scalability").
//!
//! "To make the system scalable, we parallelize the processing procedure of
//! OSCTI reports. We further pipeline the processing steps ... Between
//! different steps in the pipeline, we specify the formats of intermediate
//! representations and make them serializable."
//!
//! Five stages — port → check → parse → extract → connect — joined by
//! bounded crossbeam channels. Check/parse/extract run configurable worker
//! counts; port (stateful page grouping) and connect (single-writer storage)
//! are sequential by construction. With `serialize_transport` every message
//! crossing a stage boundary round-trips through bytes, measuring the real
//! cost of the multi-host deployment mode.

use crate::config::PipelineConfig;
use crate::stages::{
    Checker, Connector, DefaultChecker, DefaultPorter, Extractor, ParserRegistry, Porter,
};
use crossbeam::channel::{bounded, Sender};
use kg_ir::{IntermediateCti, IntermediateReport, RawReport};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Counters for one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineMetrics {
    pub input_pages: usize,
    /// Whole reports assembled by the porter.
    pub ported: usize,
    /// Reports dropped by the checker (ads, empty pages).
    pub screened_out: usize,
    pub parsed: usize,
    pub parse_errors: usize,
    pub extracted: usize,
    pub connected: usize,
    pub wall_ms: u64,
    /// Busy milliseconds per stage (summed over its workers).
    pub stage_busy_ms: BTreeMap<&'static str, u64>,
}

impl PipelineMetrics {
    /// Reports connected per second of wall-clock.
    pub fn reports_per_second(&self) -> f64 {
        if self.wall_ms == 0 {
            return 0.0;
        }
        self.connected as f64 * 1000.0 / self.wall_ms as f64
    }
}

/// Result of a run that owns its connector.
pub struct PipelineOutput<C> {
    pub connector: C,
    pub metrics: PipelineMetrics,
}

/// Optionally byte-serialised hand-off.
fn wire_send<T: Serialize>(tx: &Sender<Vec<u8>>, value: &T) {
    let bytes = serde_json::to_vec(value).expect("intermediate representations serialise");
    let _ = tx.send(bytes);
}

fn wire_recv<T: DeserializeOwned>(bytes: Vec<u8>) -> T {
    serde_json::from_slice(&bytes).expect("intermediate representations deserialise")
}

/// Run the full pipeline over raw pages, pipelined and parallel.
pub fn run_pipelined<C: Connector>(
    reports: Vec<RawReport>,
    registry: &ParserRegistry,
    extractor: &dyn Extractor,
    mut connector: C,
    config: &PipelineConfig,
) -> PipelineOutput<C> {
    let start = Instant::now();
    let mut metrics = PipelineMetrics { input_pages: reports.len(), ..Default::default() };
    let checker = DefaultChecker { min_text_len: config.checker_min_text_len };
    let cap = config.channel_capacity.max(1);
    let serialize = config.serialize_transport;

    let ported = AtomicUsize::new(0);
    let screened = AtomicUsize::new(0);
    let parsed = AtomicUsize::new(0);
    let parse_errors = AtomicUsize::new(0);
    let extracted = AtomicUsize::new(0);
    let busy_port = AtomicU64::new(0);
    let busy_check = AtomicU64::new(0);
    let busy_parse = AtomicU64::new(0);
    let busy_extract = AtomicU64::new(0);
    let busy_connect = AtomicU64::new(0);

    // Channels carry bytes when serialising, values otherwise; to keep one
    // code path we always move `Vec<u8>` on the wire in serialised mode and
    // a typed channel otherwise. Two generic pumps cover both.
    let connected;
    {
        if serialize {
            let (tx_report, rx_report) = bounded::<Vec<u8>>(cap);
            let (tx_checked, rx_checked) = bounded::<Vec<u8>>(cap);
            let (tx_cti, rx_cti) = bounded::<Vec<u8>>(cap);
            let (tx_final, rx_final) = bounded::<Vec<u8>>(cap);
            connected = std::thread::scope(|scope| {
                // Port.
                scope.spawn(|| {
                    let t = Instant::now();
                    let mut porter = DefaultPorter::new();
                    for raw in reports {
                        if let Some(report) = porter.feed(raw) {
                            ported.fetch_add(1, Ordering::Relaxed);
                            wire_send(&tx_report, &report);
                        }
                    }
                    for report in porter.flush() {
                        ported.fetch_add(1, Ordering::Relaxed);
                        wire_send(&tx_report, &report);
                    }
                    drop(tx_report);
                    busy_port.fetch_add(t.elapsed().as_millis() as u64, Ordering::Relaxed);
                });
                // Check.
                for _ in 0..config.workers.check.max(1) {
                    let rx = rx_report.clone();
                    let tx = tx_checked.clone();
                    let checker = &checker;
                    let screened = &screened;
                    let busy = &busy_check;
                    scope.spawn(move || {
                        let t = Instant::now();
                        for bytes in rx {
                            let report: IntermediateReport = wire_recv(bytes);
                            if checker.check(&report) {
                                wire_send(&tx, &report);
                            } else {
                                screened.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        busy.fetch_add(t.elapsed().as_millis() as u64, Ordering::Relaxed);
                    });
                }
                drop(rx_report);
                drop(tx_checked);
                // Parse.
                for _ in 0..config.workers.parse.max(1) {
                    let rx = rx_checked.clone();
                    let tx = tx_cti.clone();
                    let parsed = &parsed;
                    let parse_errors = &parse_errors;
                    let busy = &busy_parse;
                    scope.spawn(move || {
                        let t = Instant::now();
                        for bytes in rx {
                            let report: IntermediateReport = wire_recv(bytes);
                            match registry.parse(&report) {
                                Ok(cti) => {
                                    parsed.fetch_add(1, Ordering::Relaxed);
                                    wire_send(&tx, &cti);
                                }
                                Err(_) => {
                                    parse_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        busy.fetch_add(t.elapsed().as_millis() as u64, Ordering::Relaxed);
                    });
                }
                drop(rx_checked);
                drop(tx_cti);
                // Extract.
                for _ in 0..config.workers.extract.max(1) {
                    let rx = rx_cti.clone();
                    let tx = tx_final.clone();
                    let extracted = &extracted;
                    let busy = &busy_extract;
                    scope.spawn(move || {
                        let t = Instant::now();
                        for bytes in rx {
                            let mut cti: IntermediateCti = wire_recv(bytes);
                            extractor.extract(&mut cti);
                            extracted.fetch_add(1, Ordering::Relaxed);
                            wire_send(&tx, &cti);
                        }
                        busy.fetch_add(t.elapsed().as_millis() as u64, Ordering::Relaxed);
                    });
                }
                drop(rx_cti);
                drop(tx_final);
                // Connect (on this thread).
                let t = Instant::now();
                let mut n = 0usize;
                for bytes in rx_final {
                    let cti: IntermediateCti = wire_recv(bytes);
                    connector.connect(&cti);
                    n += 1;
                }
                busy_connect.fetch_add(t.elapsed().as_millis() as u64, Ordering::Relaxed);
                n
            });
        } else {
            let (tx_report, rx_report) = bounded::<IntermediateReport>(cap);
            let (tx_checked, rx_checked) = bounded::<IntermediateReport>(cap);
            let (tx_cti, rx_cti) = bounded::<IntermediateCti>(cap);
            let (tx_final, rx_final) = bounded::<IntermediateCti>(cap);
            connected = std::thread::scope(|scope| {
                scope.spawn(|| {
                    let t = Instant::now();
                    let mut porter = DefaultPorter::new();
                    for raw in reports {
                        if let Some(report) = porter.feed(raw) {
                            ported.fetch_add(1, Ordering::Relaxed);
                            let _ = tx_report.send(report);
                        }
                    }
                    for report in porter.flush() {
                        ported.fetch_add(1, Ordering::Relaxed);
                        let _ = tx_report.send(report);
                    }
                    drop(tx_report);
                    busy_port.fetch_add(t.elapsed().as_millis() as u64, Ordering::Relaxed);
                });
                for _ in 0..config.workers.check.max(1) {
                    let rx = rx_report.clone();
                    let tx = tx_checked.clone();
                    let checker = &checker;
                    let screened = &screened;
                    let busy = &busy_check;
                    scope.spawn(move || {
                        let t = Instant::now();
                        for report in rx {
                            if checker.check(&report) {
                                let _ = tx.send(report);
                            } else {
                                screened.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        busy.fetch_add(t.elapsed().as_millis() as u64, Ordering::Relaxed);
                    });
                }
                drop(rx_report);
                drop(tx_checked);
                for _ in 0..config.workers.parse.max(1) {
                    let rx = rx_checked.clone();
                    let tx = tx_cti.clone();
                    let parsed = &parsed;
                    let parse_errors = &parse_errors;
                    let busy = &busy_parse;
                    scope.spawn(move || {
                        let t = Instant::now();
                        for report in rx {
                            match registry.parse(&report) {
                                Ok(cti) => {
                                    parsed.fetch_add(1, Ordering::Relaxed);
                                    let _ = tx.send(cti);
                                }
                                Err(_) => {
                                    parse_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        busy.fetch_add(t.elapsed().as_millis() as u64, Ordering::Relaxed);
                    });
                }
                drop(rx_checked);
                drop(tx_cti);
                for _ in 0..config.workers.extract.max(1) {
                    let rx = rx_cti.clone();
                    let tx = tx_final.clone();
                    let extracted = &extracted;
                    let busy = &busy_extract;
                    scope.spawn(move || {
                        let t = Instant::now();
                        for mut cti in rx {
                            extractor.extract(&mut cti);
                            extracted.fetch_add(1, Ordering::Relaxed);
                            let _ = tx.send(cti);
                        }
                        busy.fetch_add(t.elapsed().as_millis() as u64, Ordering::Relaxed);
                    });
                }
                drop(rx_cti);
                drop(tx_final);
                let t = Instant::now();
                let mut n = 0usize;
                for cti in rx_final {
                    connector.connect(&cti);
                    n += 1;
                }
                busy_connect.fetch_add(t.elapsed().as_millis() as u64, Ordering::Relaxed);
                n
            });
        }
    }

    metrics.ported = ported.into_inner();
    metrics.screened_out = screened.into_inner();
    metrics.parsed = parsed.into_inner();
    metrics.parse_errors = parse_errors.into_inner();
    metrics.extracted = extracted.into_inner();
    metrics.connected = connected;
    metrics.wall_ms = start.elapsed().as_millis() as u64;
    metrics.stage_busy_ms = BTreeMap::from([
        ("port", busy_port.into_inner()),
        ("check", busy_check.into_inner()),
        ("parse", busy_parse.into_inner()),
        ("extract", busy_extract.into_inner()),
        ("connect", busy_connect.into_inner()),
    ]);
    PipelineOutput { connector, metrics }
}

/// The sequential baseline: same stages, one thread, no channels (E4's
/// comparison point).
pub fn run_sequential<C: Connector>(
    reports: Vec<RawReport>,
    registry: &ParserRegistry,
    extractor: &dyn Extractor,
    mut connector: C,
    config: &PipelineConfig,
) -> PipelineOutput<C> {
    let start = Instant::now();
    let mut metrics = PipelineMetrics { input_pages: reports.len(), ..Default::default() };
    let checker = DefaultChecker { min_text_len: config.checker_min_text_len };
    let mut porter = DefaultPorter::new();
    let mut completed = Vec::new();
    for raw in reports {
        if let Some(report) = porter.feed(raw) {
            completed.push(report);
        }
    }
    completed.extend(porter.flush());
    metrics.ported = completed.len();
    for report in completed {
        if !checker.check(&report) {
            metrics.screened_out += 1;
            continue;
        }
        let mut cti = match registry.parse(&report) {
            Ok(cti) => {
                metrics.parsed += 1;
                cti
            }
            Err(_) => {
                metrics.parse_errors += 1;
                continue;
            }
        };
        extractor.extract(&mut cti);
        metrics.extracted += 1;
        connector.connect(&cti);
        metrics.connected += 1;
    }
    metrics.wall_ms = start.elapsed().as_millis() as u64;
    PipelineOutput { connector, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::stages::{GraphConnector, IocOnlyExtractor, TabularConnector};
    use kg_crawler::{crawl_all, CrawlState, CrawlerConfig};
    use std::sync::Arc;

    fn crawled_reports() -> Vec<RawReport> {
        let web = kg_corpus::SimulatedWeb::new(
            kg_corpus::World::generate(kg_corpus::WorldConfig::tiny(3)),
            kg_corpus::standard_sources(6),
            11,
        );
        let mut state = CrawlState::new();
        let (reports, _) = crawl_all(&web, &mut state, &CrawlerConfig::default(), u64::MAX / 4);
        reports
    }

    fn ioc_extractor() -> IocOnlyExtractor {
        IocOnlyExtractor {
            baseline: Arc::new(kg_extract::RegexNerBaseline::new(vec![])),
        }
    }

    #[test]
    fn pipelined_processes_crawled_corpus() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let out = run_pipelined(
            reports.clone(),
            &registry,
            &extractor,
            GraphConnector::new(),
            &PipelineConfig::default(),
        );
        let m = &out.metrics;
        assert_eq!(m.input_pages, reports.len());
        assert!(m.ported > 0);
        assert!(m.screened_out > 0, "ads must be screened: {m:?}");
        assert_eq!(m.parsed, m.extracted);
        assert_eq!(m.extracted, m.connected);
        assert_eq!(m.ported, m.screened_out + m.parsed + m.parse_errors);
        assert!(out.connector.graph.node_count() > 0);
        assert!(out.connector.graph.edge_count() > 0);
    }

    #[test]
    fn sequential_and_pipelined_agree() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let seq = run_sequential(
            reports.clone(),
            &registry,
            &extractor,
            GraphConnector::new(),
            &PipelineConfig::default(),
        );
        let pip = run_pipelined(
            reports,
            &registry,
            &extractor,
            GraphConnector::new(),
            &PipelineConfig::default(),
        );
        assert_eq!(seq.metrics.connected, pip.metrics.connected);
        assert_eq!(seq.connector.graph.node_count(), pip.connector.graph.node_count());
        assert_eq!(seq.connector.graph.edge_count(), pip.connector.graph.edge_count());
    }

    #[test]
    fn serialized_transport_agrees_with_direct() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let direct = run_pipelined(
            reports.clone(),
            &registry,
            &extractor,
            GraphConnector::new(),
            &PipelineConfig::default(),
        );
        let serialized = run_pipelined(
            reports,
            &registry,
            &extractor,
            GraphConnector::new(),
            &PipelineConfig { serialize_transport: true, ..PipelineConfig::default() },
        );
        assert_eq!(direct.metrics.connected, serialized.metrics.connected);
        assert_eq!(
            direct.connector.graph.node_count(),
            serialized.connector.graph.node_count()
        );
    }

    #[test]
    fn tabular_connector_swaps_in() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let out = run_pipelined(
            reports,
            &registry,
            &extractor,
            TabularConnector::new(),
            &PipelineConfig::default(),
        );
        assert!(out.metrics.connected > 0);
        assert!(!out.connector.entities.is_empty());
        assert!(!out.connector.mentions.is_empty());
    }

    #[test]
    fn metrics_track_stages() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let out = run_pipelined(
            reports,
            &registry,
            &extractor,
            GraphConnector::new(),
            &PipelineConfig::default(),
        );
        assert_eq!(out.metrics.stage_busy_ms.len(), 5);
        assert!(out.metrics.reports_per_second() >= 0.0);
    }
}
