//! Pipelined execution (paper §2.1, "Scalability").
//!
//! "To make the system scalable, we parallelize the processing procedure of
//! OSCTI reports. We further pipeline the processing steps ... Between
//! different steps in the pipeline, we specify the formats of intermediate
//! representations and make them serializable."
//!
//! Five stages — port → check → parse → extract → connect — joined by
//! bounded crossbeam channels. Check/parse/extract run configurable worker
//! counts; port (stateful page grouping) and connect (single-writer storage)
//! are sequential by construction. With `serialize_transport` every message
//! crossing a stage boundary round-trips through bytes, measuring the real
//! cost of the multi-host deployment mode.
//!
//! Hardening: a message that cannot cross a boundary (corrupt wire payload,
//! dead downstream stage, panicking connector) is *quarantined* — counted,
//! captured with its stage and error, and skipped — instead of panicking the
//! run or silently vanishing. The run always completes and the accounting
//! invariant `ported == screened_out + parsed + parse_errors + quarantined`
//! holds in both transport modes.

use crate::config::PipelineConfig;
use crate::delta::{CtiResolver, Resolved};
use crate::stages::{
    Checker, Connector, DefaultChecker, DefaultPorter, Extractor, ParserRegistry, Porter,
};
use crate::trace::{TraceEvent, TraceLog};
use crossbeam::channel::{bounded, Receiver, SendError, Sender};
use kg_ir::{IntermediateCti, IntermediateReport, RawReport};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stage names, in pipeline order. `resolve` and `connect` are the two
/// halves of the split connector: N resolve workers produce self-contained
/// graph deltas; the single connect writer applies them in sequence order.
const STAGE_NAMES: [&str; 6] = ["port", "check", "parse", "extract", "resolve", "connect"];

/// Channel-boundary names, in pipeline order.
const BOUNDARY_NAMES: [&str; 5] = [
    "port->check",
    "check->parse",
    "parse->extract",
    "extract->resolve",
    "resolve->connect",
];

/// The sequencing envelope every message travels in. The porter stamps each
/// report with a monotone sequence number; a stage that terminates a report
/// (screened out, parse error, quarantined) forwards a `Gone` marker in its
/// place, so the connect writer can apply items in exact port order without
/// waiting forever on sequence numbers that will never arrive.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Tagged<T> {
    Item { seq: u64, item: T },
    Gone { seq: u64 },
}

/// At most this many quarantined messages keep their full details; the
/// counter keeps counting past it.
const QUARANTINE_CAPTURE: usize = 32;

/// A send blocking longer than this emits a backpressure-stall trace event.
const STALL_TRACE_US: u64 = 1_000;

/// Queue-depth sampling cadence.
const SAMPLE_INTERVAL: Duration = Duration::from_micros(500);

/// A message that left the normal flow: where it died, which report it
/// carried (best effort for undecodable payloads), and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedMessage {
    /// Stage that detected the failure.
    pub stage: &'static str,
    /// Report id, or a description when the payload could not be decoded.
    pub source: String,
    pub error: String,
}

/// Queue-depth samples for one stage boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueDepthStats {
    pub samples: u64,
    /// Sum of sampled depths (for the mean).
    pub sum: u64,
    pub max: u64,
}

impl QueueDepthStats {
    /// Mean sampled depth.
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.sum as f64 / self.samples as f64
    }
}

/// Counters for one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineMetrics {
    pub input_pages: usize,
    /// Whole reports assembled by the porter.
    pub ported: usize,
    /// Reports dropped by the checker (ads, empty pages).
    pub screened_out: usize,
    pub parsed: usize,
    pub parse_errors: usize,
    pub extracted: usize,
    pub connected: usize,
    /// Messages that left the normal flow (corrupt wire payloads, dead
    /// stages, connector panics). A report quarantined after parsing is
    /// moved out of `parsed`/`extracted`, so each ported report has exactly
    /// one terminal fate and the accounting invariant holds.
    pub quarantined: usize,
    /// Details of the first [`QUARANTINE_CAPTURE`] quarantined messages.
    pub quarantine: Vec<QuarantinedMessage>,
    /// Worker-side canon resolutions invalidated by entries the writer
    /// appended after the worker's snapshot, re-resolved at apply time.
    pub canon_conflicts: usize,
    pub wall_ms: u64,
    /// Wall-clock in microseconds (`wall_ms` rounds this down).
    pub wall_us: u64,
    /// Milliseconds each stage spent actively processing items, summed over
    /// its workers. Time blocked on an empty input or a full output channel
    /// is *not* busy — see `stage_blocked_ms`.
    pub stage_busy_ms: BTreeMap<&'static str, u64>,
    /// Milliseconds each stage spent waiting on channels, summed over its
    /// workers.
    pub stage_blocked_ms: BTreeMap<&'static str, u64>,
    /// Items each stage completed.
    pub stage_items: BTreeMap<&'static str, u64>,
    /// Queue-depth samples per stage boundary (pipelined runs only).
    pub queue_depths: BTreeMap<&'static str, QueueDepthStats>,
}

impl PipelineMetrics {
    /// Reports connected per second of wall-clock. Uses microsecond
    /// resolution so sub-millisecond runs do not truncate to zero.
    pub fn reports_per_second(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.connected as f64 * 1_000_000.0 / self.wall_us as f64
    }

    /// Items per wall-clock second for one stage.
    pub fn stage_throughput(&self, stage: &str) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        let items = self.stage_items.get(stage).copied().unwrap_or(0);
        items as f64 * 1_000_000.0 / self.wall_us as f64
    }

    /// The quarantine accounting invariant: every ported report has exactly
    /// one terminal fate.
    pub fn accounting_balanced(&self) -> bool {
        self.ported == self.screened_out + self.parsed + self.parse_errors + self.quarantined
    }

    /// Human-readable per-stage breakdown (busy/blocked/throughput, queue
    /// depths, quarantine) for the CLI and the E4 bench.
    pub fn stage_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pipeline: {} pages -> {} reports -> {} connected in {} ms ({:.1} reports/s)\n",
            self.input_pages,
            self.ported,
            self.connected,
            self.wall_ms,
            self.reports_per_second()
        ));
        out.push_str(&format!(
            "{:<10} {:>8} {:>10} {:>12} {:>10}\n",
            "stage", "items", "busy ms", "blocked ms", "items/s"
        ));
        for stage in STAGE_NAMES {
            out.push_str(&format!(
                "{:<10} {:>8} {:>10} {:>12} {:>10.1}\n",
                stage,
                self.stage_items.get(stage).copied().unwrap_or(0),
                self.stage_busy_ms.get(stage).copied().unwrap_or(0),
                self.stage_blocked_ms.get(stage).copied().unwrap_or(0),
                self.stage_throughput(stage),
            ));
        }
        if !self.queue_depths.is_empty() {
            out.push_str("queue depth (mean/max):");
            for boundary in BOUNDARY_NAMES {
                let stats = self.queue_depths.get(boundary).copied().unwrap_or_default();
                out.push_str(&format!(" {boundary} {:.1}/{}", stats.mean(), stats.max));
            }
            out.push('\n');
        }
        if self.canon_conflicts > 0 {
            out.push_str(&format!(
                "canon conflicts re-resolved: {}\n",
                self.canon_conflicts
            ));
        }
        if self.quarantined > 0 {
            out.push_str(&format!(
                "quarantined: {} (showing {})\n",
                self.quarantined,
                self.quarantine.len()
            ));
            for q in &self.quarantine {
                out.push_str(&format!("  [{}] {}: {}\n", q.stage, q.source, q.error));
            }
        }
        out
    }
}

/// Result of a run that owns its connector.
pub struct PipelineOutput<C> {
    pub connector: C,
    pub metrics: PipelineMetrics,
    /// Structured event log of the run.
    pub trace: TraceLog,
}

// ---------------------------------------------------------------------------
// Shared run state
// ---------------------------------------------------------------------------

#[derive(Default)]
struct StageCounters {
    busy_us: AtomicU64,
    blocked_us: AtomicU64,
    items: AtomicU64,
}

#[derive(Default)]
struct DepthCounters {
    samples: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl DepthCounters {
    fn sample(&self, depth: usize) {
        self.samples.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(depth as u64, Ordering::Relaxed);
        self.max.fetch_max(depth as u64, Ordering::Relaxed);
    }

    fn stats(&self) -> QueueDepthStats {
        QueueDepthStats {
            samples: self.samples.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Counters and the dead-letter buffer, shared by every worker of a run.
#[derive(Default)]
struct Shared {
    ported: AtomicUsize,
    screened: AtomicUsize,
    parsed: AtomicUsize,
    parse_errors: AtomicUsize,
    extracted: AtomicUsize,
    quarantined: AtomicUsize,
    canon_conflicts: AtomicUsize,
    quarantine: parking_lot::Mutex<Vec<QuarantinedMessage>>,
    port: StageCounters,
    check: StageCounters,
    parse: StageCounters,
    extract: StageCounters,
    resolve: StageCounters,
    connect: StageCounters,
    depths: [DepthCounters; 5],
}

impl Shared {
    /// Dead-letter a message. `rollback` lists the success counters the
    /// message had already passed (e.g. `parsed`) — decrementing them keeps
    /// every report at exactly one terminal fate, so the accounting
    /// invariant survives late failures.
    fn quarantine(
        &self,
        trace: &TraceLog,
        stage: &'static str,
        source: String,
        error: String,
        rollback: &[&AtomicUsize],
    ) {
        for counter in rollback {
            counter.fetch_sub(1, Ordering::Relaxed);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        {
            let mut captured = self.quarantine.lock();
            if captured.len() < QUARANTINE_CAPTURE {
                captured.push(QuarantinedMessage {
                    stage,
                    source: source.clone(),
                    error: error.clone(),
                });
            }
        }
        trace.record(TraceEvent::Quarantined {
            stage,
            source,
            error,
        });
    }

    fn fill_metrics(&self, metrics: &mut PipelineMetrics) {
        metrics.ported = self.ported.load(Ordering::Relaxed);
        metrics.screened_out = self.screened.load(Ordering::Relaxed);
        metrics.parsed = self.parsed.load(Ordering::Relaxed);
        metrics.parse_errors = self.parse_errors.load(Ordering::Relaxed);
        metrics.extracted = self.extracted.load(Ordering::Relaxed);
        metrics.quarantined = self.quarantined.load(Ordering::Relaxed);
        metrics.canon_conflicts = self.canon_conflicts.load(Ordering::Relaxed);
        metrics.quarantine = std::mem::take(&mut *self.quarantine.lock());
        for (name, counters) in STAGE_NAMES.iter().zip([
            &self.port,
            &self.check,
            &self.parse,
            &self.extract,
            &self.resolve,
            &self.connect,
        ]) {
            metrics
                .stage_busy_ms
                .insert(name, counters.busy_us.load(Ordering::Relaxed) / 1000);
            metrics
                .stage_blocked_ms
                .insert(name, counters.blocked_us.load(Ordering::Relaxed) / 1000);
            metrics
                .stage_items
                .insert(name, counters.items.load(Ordering::Relaxed));
        }
        for (name, depth) in BOUNDARY_NAMES.iter().zip(&self.depths) {
            metrics.queue_depths.insert(name, depth.stats());
        }
    }
}

// ---------------------------------------------------------------------------
// Per-worker instrumentation
// ---------------------------------------------------------------------------

/// Separates a worker's busy time (processing an item) from its blocked time
/// (waiting on an empty input or a full output channel), per item, and emits
/// the stage start/finish trace events.
struct WorkerClock<'a> {
    stage: &'static str,
    worker: usize,
    counters: &'a StageCounters,
    trace: &'a TraceLog,
    busy_us: u64,
    blocked_us: u64,
    items: u64,
}

impl<'a> WorkerClock<'a> {
    fn start(
        stage: &'static str,
        worker: usize,
        counters: &'a StageCounters,
        trace: &'a TraceLog,
    ) -> Self {
        trace.record(TraceEvent::StageStarted { stage, worker });
        WorkerClock {
            stage,
            worker,
            counters,
            trace,
            busy_us: 0,
            blocked_us: 0,
            items: 0,
        }
    }

    fn busy<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let value = f();
        self.busy_us += t.elapsed().as_micros() as u64;
        value
    }

    fn blocked<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let value = f();
        self.blocked_us += t.elapsed().as_micros() as u64;
        value
    }

    /// Timed send; waiting on a full channel is blocked time, and long waits
    /// emit a backpressure-stall event.
    fn send<T>(&mut self, tx: &Sender<T>, value: T) -> Result<(), SendError<T>> {
        let t = Instant::now();
        let result = tx.send(value);
        let waited = t.elapsed().as_micros() as u64;
        self.blocked_us += waited;
        if waited >= STALL_TRACE_US {
            self.trace.record(TraceEvent::BackpressureStall {
                stage: self.stage,
                worker: self.worker,
                waited_us: waited,
            });
        }
        result
    }

    fn item_done(&mut self) {
        self.items += 1;
    }

    fn finish(self) {
        self.counters
            .busy_us
            .fetch_add(self.busy_us, Ordering::Relaxed);
        self.counters
            .blocked_us
            .fetch_add(self.blocked_us, Ordering::Relaxed);
        self.counters.items.fetch_add(self.items, Ordering::Relaxed);
        self.trace.record(TraceEvent::StageFinished {
            stage: self.stage,
            worker: self.worker,
            items: self.items,
            busy_us: self.busy_us,
            blocked_us: self.blocked_us,
        });
    }
}

/// Best-effort source label for a payload that could not be decoded.
fn wire_source(bytes: &[u8]) -> String {
    format!("<wire message, {} bytes>", bytes.len())
}

/// Human-readable panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "stage panicked".to_owned()
    }
}

const STAGE_GONE: &str = "downstream stage disconnected";

/// Run the connector on one CTI, quarantining a panic instead of tearing the
/// run down. Returns whether the item connected.
fn connect_one<C: Connector>(
    connector: &mut C,
    cti: &IntermediateCti,
    shared: &Shared,
    trace: &TraceLog,
) -> bool {
    match catch_unwind(AssertUnwindSafe(|| connector.connect(cti))) {
        Ok(()) => true,
        Err(payload) => {
            shared.quarantine(
                trace,
                "connect",
                cti.meta.id.as_str().to_owned(),
                panic_message(payload),
                &[&shared.parsed, &shared.extracted],
            );
            false
        }
    }
}

/// The connect writer's reorder buffer: resolve workers race, so resolved
/// items arrive out of order; the writer applies them in exact port order.
/// `None` entries are Gone markers (terminated upstream). On channel close,
/// whatever is still buffered (items stranded behind a sequence number lost
/// to an undecodable payload) is drained in key order, so nothing is lost
/// and the apply order stays deterministic.
struct SeqWriter<T> {
    next_seq: u64,
    buffer: BTreeMap<u64, Option<T>>,
}

impl<T> SeqWriter<T> {
    fn new() -> Self {
        SeqWriter {
            next_seq: 0,
            buffer: BTreeMap::new(),
        }
    }

    fn insert(&mut self, seq: u64, item: Option<T>) {
        self.buffer.insert(seq, item);
    }

    /// Pop the next contiguous entry, if it has arrived.
    fn pop_ready(&mut self) -> Option<Option<T>> {
        let entry = self.buffer.remove(&self.next_seq)?;
        self.next_seq += 1;
        Some(entry)
    }

    /// End of stream: everything still buffered, in sequence order.
    fn drain(&mut self) -> impl Iterator<Item = Option<T>> + '_ {
        std::mem::take(&mut self.buffer).into_values()
    }
}

/// Apply one resolved item on the writer: precomputed deltas go through
/// `apply_delta`, passthrough CTIs through the classic `connect`. Panics are
/// quarantined either way. Returns 1 if the item connected.
fn apply_one<C: Connector>(
    connector: &mut C,
    resolved: Resolved,
    shared: &Shared,
    trace: &TraceLog,
    clock: &mut WorkerClock<'_>,
) -> usize {
    let applied = match resolved {
        Resolved::Cti(cti) => clock.busy(|| connect_one(connector, &cti, shared, trace)),
        Resolved::Delta(delta) => {
            let source = delta.report_id.clone();
            match clock.busy(|| catch_unwind(AssertUnwindSafe(|| connector.apply_delta(delta)))) {
                Ok(outcome) => {
                    if outcome.conflicts > 0 {
                        shared
                            .canon_conflicts
                            .fetch_add(outcome.conflicts, Ordering::Relaxed);
                        trace.record(TraceEvent::CanonConflictResolved {
                            source,
                            conflicts: outcome.conflicts,
                        });
                    }
                    if let Some(entries) = outcome.canon_published {
                        trace.record(TraceEvent::CanonSnapshotPublished { entries });
                    }
                    true
                }
                Err(payload) => {
                    shared.quarantine(
                        trace,
                        "connect",
                        source,
                        panic_message(payload),
                        &[&shared.parsed, &shared.extracted],
                    );
                    false
                }
            }
        }
    };
    clock.item_done();
    usize::from(applied)
}

// ---------------------------------------------------------------------------
// Pipelined runner
// ---------------------------------------------------------------------------

/// Run the full pipeline over raw pages, pipelined and parallel.
pub fn run_pipelined<C: Connector>(
    reports: Vec<RawReport>,
    registry: &ParserRegistry,
    extractor: &dyn Extractor,
    mut connector: C,
    config: &PipelineConfig,
) -> PipelineOutput<C> {
    let start = Instant::now();
    let mut metrics = PipelineMetrics {
        input_pages: reports.len(),
        ..Default::default()
    };
    let checker = DefaultChecker {
        min_text_len: config.checker_min_text_len,
    };
    let cap = config.channel_capacity.max(1);
    let trace = TraceLog::new();
    let shared = Shared::default();
    let sampler_done = AtomicBool::new(0 == 1);
    let resolver = connector.resolver();

    let connected = if config.serialize_transport {
        run_serialized(
            reports,
            registry,
            extractor,
            &mut connector,
            &resolver,
            config,
            &checker,
            cap,
            &shared,
            &trace,
            &sampler_done,
        )
    } else {
        run_direct(
            reports,
            registry,
            extractor,
            &mut connector,
            &resolver,
            config,
            &checker,
            cap,
            &shared,
            &trace,
            &sampler_done,
        )
    };

    shared.fill_metrics(&mut metrics);
    metrics.connected = connected;
    let wall = start.elapsed();
    metrics.wall_us = wall.as_micros() as u64;
    metrics.wall_ms = wall.as_millis() as u64;
    debug_assert!(
        metrics.accounting_balanced(),
        "unbalanced accounting: {metrics:?}"
    );
    PipelineOutput {
        connector,
        metrics,
        trace,
    }
}

/// Spawn the queue-depth sampler: polls each boundary's backlog until the
/// run sets `done`, sampling at least once.
fn spawn_sampler<'scope, 'env>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    probes: Vec<Box<dyn Fn() -> usize + Send + 'scope>>,
    shared: &'scope Shared,
    done: &'scope AtomicBool,
) {
    scope.spawn(move || loop {
        for (depth, probe) in shared.depths.iter().zip(&probes) {
            depth.sample(probe());
        }
        if done.load(Ordering::Relaxed) {
            break;
        }
        std::thread::sleep(SAMPLE_INTERVAL);
    });
}

/// The byte-serialised transport mode: every boundary crossing round-trips
/// through JSON, as a multi-host deployment would.
#[allow(clippy::too_many_arguments)]
fn run_serialized<C: Connector>(
    reports: Vec<RawReport>,
    registry: &ParserRegistry,
    extractor: &dyn Extractor,
    connector: &mut C,
    resolver: &Option<Arc<dyn CtiResolver>>,
    config: &PipelineConfig,
    checker: &DefaultChecker,
    cap: usize,
    shared: &Shared,
    trace: &TraceLog,
    sampler_done: &AtomicBool,
) -> usize {
    let (tx_report, rx_report) = bounded::<Vec<u8>>(cap);
    let (tx_checked, rx_checked) = bounded::<Vec<u8>>(cap);
    let (tx_cti, rx_cti) = bounded::<Vec<u8>>(cap);
    let (tx_extracted, rx_extracted) = bounded::<Vec<u8>>(cap);
    let (tx_final, rx_final) = bounded::<Vec<u8>>(cap);
    let fault = config.fault;
    std::thread::scope(|scope| {
        let probes: Vec<Box<dyn Fn() -> usize + Send + '_>> = vec![
            probe(&rx_report),
            probe(&rx_checked),
            probe(&rx_cti),
            probe(&rx_extracted),
            probe(&rx_final),
        ];
        spawn_sampler(scope, probes, shared, sampler_done);

        // Port.
        scope.spawn(move || {
            let mut clock = WorkerClock::start("port", 0, &shared.port, trace);
            let mut porter = DefaultPorter::new();
            let mut emitted = 0usize;
            let mut seq = 0u64;
            let mut emit = |report: IntermediateReport, clock: &mut WorkerClock<'_>| {
                shared.ported.fetch_add(1, Ordering::Relaxed);
                let tagged = Tagged::Item { seq, item: report };
                seq += 1;
                let mut bytes = match clock.busy(|| serde_json::to_vec(&tagged)) {
                    Ok(bytes) => bytes,
                    Err(e) => {
                        shared.quarantine(
                            trace,
                            "port",
                            tagged.report_id().to_owned(),
                            e.to_string(),
                            &[],
                        );
                        return;
                    }
                };
                if fault.corrupt_port_message == Some(emitted) {
                    bytes.clear();
                    bytes.extend_from_slice(b"\xffpoison");
                }
                emitted += 1;
                if clock.send(&tx_report, bytes).is_err() {
                    shared.quarantine(
                        trace,
                        "port",
                        tagged.report_id().to_owned(),
                        STAGE_GONE.to_owned(),
                        &[],
                    );
                }
                clock.item_done();
            };
            for raw in reports {
                if let Some(report) = clock.busy(|| porter.feed(raw)) {
                    emit(report, &mut clock);
                }
            }
            for report in clock.busy(|| porter.flush()) {
                emit(report, &mut clock);
            }
            clock.finish();
        });

        // Check.
        for worker in 0..config.workers.check.max(1) {
            let rx = rx_report.clone();
            let tx = tx_checked.clone();
            scope.spawn(move || {
                let mut clock = WorkerClock::start("check", worker, &shared.check, trace);
                while let Ok(bytes) = clock.blocked(|| rx.recv()) {
                    match clock
                        .busy(|| serde_json::from_slice::<Tagged<IntermediateReport>>(&bytes))
                    {
                        Ok(Tagged::Item { seq, item: report }) => {
                            if clock.busy(|| checker.check(&report)) {
                                forward_wire(
                                    &mut clock,
                                    &tx,
                                    &Tagged::Item { seq, item: report },
                                    "check",
                                    shared,
                                    trace,
                                    &[],
                                );
                            } else {
                                shared.screened.fetch_add(1, Ordering::Relaxed);
                                forward_gone_wire::<IntermediateReport>(&mut clock, &tx, seq);
                            }
                            clock.item_done();
                        }
                        Ok(Tagged::Gone { seq }) => {
                            forward_gone_wire::<IntermediateReport>(&mut clock, &tx, seq);
                        }
                        Err(e) => shared.quarantine(
                            trace,
                            "check",
                            wire_source(&bytes),
                            e.to_string(),
                            &[],
                        ),
                    }
                }
                clock.finish();
            });
        }
        drop(rx_report);
        drop(tx_checked);

        // Parse.
        for worker in 0..config.workers.parse.max(1) {
            let rx = rx_checked.clone();
            let tx = tx_cti.clone();
            scope.spawn(move || {
                let mut clock = WorkerClock::start("parse", worker, &shared.parse, trace);
                while let Ok(bytes) = clock.blocked(|| rx.recv()) {
                    match clock
                        .busy(|| serde_json::from_slice::<Tagged<IntermediateReport>>(&bytes))
                    {
                        Ok(Tagged::Item { seq, item: report }) => {
                            match clock.busy(|| registry.parse(&report)) {
                                Ok(cti) => {
                                    shared.parsed.fetch_add(1, Ordering::Relaxed);
                                    forward_wire(
                                        &mut clock,
                                        &tx,
                                        &Tagged::Item { seq, item: cti },
                                        "parse",
                                        shared,
                                        trace,
                                        &[&shared.parsed],
                                    );
                                }
                                Err(_) => {
                                    shared.parse_errors.fetch_add(1, Ordering::Relaxed);
                                    forward_gone_wire::<IntermediateCti>(&mut clock, &tx, seq);
                                }
                            }
                            clock.item_done();
                        }
                        Ok(Tagged::Gone { seq }) => {
                            forward_gone_wire::<IntermediateCti>(&mut clock, &tx, seq);
                        }
                        Err(e) => shared.quarantine(
                            trace,
                            "parse",
                            wire_source(&bytes),
                            e.to_string(),
                            &[],
                        ),
                    }
                }
                clock.finish();
            });
        }
        drop(rx_checked);
        drop(tx_cti);

        // Extract.
        for worker in 0..config.workers.extract.max(1) {
            let rx = rx_cti.clone();
            let tx = tx_extracted.clone();
            scope.spawn(move || {
                let mut clock = WorkerClock::start("extract", worker, &shared.extract, trace);
                while let Ok(bytes) = clock.blocked(|| rx.recv()) {
                    match clock.busy(|| serde_json::from_slice::<Tagged<IntermediateCti>>(&bytes)) {
                        Ok(Tagged::Item { seq, item: mut cti }) => {
                            clock.busy(|| extractor.extract(&mut cti));
                            shared.extracted.fetch_add(1, Ordering::Relaxed);
                            forward_wire(
                                &mut clock,
                                &tx,
                                &Tagged::Item { seq, item: cti },
                                "extract",
                                shared,
                                trace,
                                &[&shared.parsed, &shared.extracted],
                            );
                            clock.item_done();
                        }
                        Ok(Tagged::Gone { seq }) => {
                            forward_gone_wire::<IntermediateCti>(&mut clock, &tx, seq);
                        }
                        Err(e) => shared.quarantine(
                            trace,
                            "extract",
                            wire_source(&bytes),
                            e.to_string(),
                            &[&shared.parsed],
                        ),
                    }
                }
                clock.finish();
            });
        }
        drop(rx_cti);
        drop(tx_extracted);

        // Resolve: the parallel half of the split connector. With a
        // resolver, each worker turns a CTI into a self-contained delta;
        // without one, items pass through for the writer's classic path.
        for worker in 0..config.workers.connect.max(1) {
            let rx = rx_extracted.clone();
            let tx = tx_final.clone();
            let resolver = resolver.clone();
            scope.spawn(move || {
                let mut clock = WorkerClock::start("resolve", worker, &shared.resolve, trace);
                while let Ok(bytes) = clock.blocked(|| rx.recv()) {
                    match clock.busy(|| serde_json::from_slice::<Tagged<IntermediateCti>>(&bytes)) {
                        Ok(Tagged::Item { seq, item: cti }) => {
                            match resolve_item(&resolver, seq, cti, shared, trace, &mut clock) {
                                Some(resolved) => forward_wire(
                                    &mut clock,
                                    &tx,
                                    &Tagged::Item {
                                        seq,
                                        item: resolved,
                                    },
                                    "resolve",
                                    shared,
                                    trace,
                                    &[&shared.parsed, &shared.extracted],
                                ),
                                None => {
                                    forward_gone_wire::<Resolved>(&mut clock, &tx, seq);
                                }
                            }
                            clock.item_done();
                        }
                        Ok(Tagged::Gone { seq }) => {
                            forward_gone_wire::<Resolved>(&mut clock, &tx, seq);
                        }
                        Err(e) => shared.quarantine(
                            trace,
                            "resolve",
                            wire_source(&bytes),
                            e.to_string(),
                            &[&shared.parsed, &shared.extracted],
                        ),
                    }
                }
                clock.finish();
            });
        }
        drop(rx_extracted);
        drop(tx_final);

        // Connect: the single writer, applying in sequence order.
        let mut clock = WorkerClock::start("connect", 0, &shared.connect, trace);
        let mut writer = SeqWriter::<Resolved>::new();
        let mut connected = 0usize;
        while let Ok(bytes) = clock.blocked(|| rx_final.recv()) {
            match clock.busy(|| serde_json::from_slice::<Tagged<Resolved>>(&bytes)) {
                Ok(Tagged::Item { seq, item }) => writer.insert(seq, Some(item)),
                Ok(Tagged::Gone { seq }) => writer.insert(seq, None),
                Err(e) => {
                    shared.quarantine(
                        trace,
                        "connect",
                        wire_source(&bytes),
                        e.to_string(),
                        &[&shared.parsed, &shared.extracted],
                    );
                    continue;
                }
            }
            while let Some(entry) = writer.pop_ready() {
                if let Some(resolved) = entry {
                    connected += apply_one(connector, resolved, shared, trace, &mut clock);
                }
            }
        }
        for resolved in writer.drain().flatten() {
            connected += apply_one(connector, resolved, shared, trace, &mut clock);
        }
        clock.finish();
        sampler_done.store(true, Ordering::Relaxed);
        connected
    })
}

/// Run the resolve half on one CTI: `Some(resolved)` to forward, `None` when
/// a resolver panic quarantined the item (a Gone marker must flow instead).
fn resolve_item(
    resolver: &Option<Arc<dyn CtiResolver>>,
    seq: u64,
    cti: IntermediateCti,
    shared: &Shared,
    trace: &TraceLog,
    clock: &mut WorkerClock<'_>,
) -> Option<Resolved> {
    match resolver {
        Some(r) => match clock.busy(|| catch_unwind(AssertUnwindSafe(|| r.resolve(&cti)))) {
            Ok(mut delta) => {
                delta.seq = seq;
                Some(Resolved::Delta(delta))
            }
            Err(payload) => {
                shared.quarantine(
                    trace,
                    "resolve",
                    cti.meta.id.as_str().to_owned(),
                    panic_message(payload),
                    &[&shared.parsed, &shared.extracted],
                );
                None
            }
        },
        None => Some(Resolved::Cti(cti)),
    }
}

/// Serialise and send one message; serialisation or send failure routes the
/// report to quarantine (rolling back the success counters it had passed).
fn forward_wire<T: serde::Serialize + HasReportId>(
    clock: &mut WorkerClock<'_>,
    tx: &Sender<Vec<u8>>,
    value: &T,
    stage: &'static str,
    shared: &Shared,
    trace: &TraceLog,
    rollback: &[&AtomicUsize],
) {
    match clock.busy(|| serde_json::to_vec(value)) {
        Ok(bytes) => {
            if clock.send(tx, bytes).is_err() {
                shared.quarantine(
                    trace,
                    stage,
                    value.report_id().to_owned(),
                    STAGE_GONE.to_owned(),
                    rollback,
                );
            }
        }
        Err(e) => shared.quarantine(
            trace,
            stage,
            value.report_id().to_owned(),
            e.to_string(),
            rollback,
        ),
    }
}

/// Serialise and send a Gone marker. A send failure means the downstream
/// stage is dead and the run is shutting down; the report the marker stood
/// for has already reached its terminal fate, so there is nothing to roll
/// back.
fn forward_gone_wire<T: serde::Serialize>(
    clock: &mut WorkerClock<'_>,
    tx: &Sender<Vec<u8>>,
    seq: u64,
) {
    let bytes = serde_json::to_vec(&Tagged::<T>::Gone { seq }).expect("gone marker serialises");
    let _ = clock.send(tx, bytes);
}

/// The report id carried by a wire message, for quarantine records.
trait HasReportId {
    fn report_id(&self) -> &str;
}

impl HasReportId for IntermediateReport {
    fn report_id(&self) -> &str {
        self.id.as_str()
    }
}

impl HasReportId for IntermediateCti {
    fn report_id(&self) -> &str {
        self.meta.id.as_str()
    }
}

impl HasReportId for Resolved {
    fn report_id(&self) -> &str {
        Resolved::report_id(self)
    }
}

impl<T: HasReportId> HasReportId for Tagged<T> {
    fn report_id(&self) -> &str {
        match self {
            Tagged::Item { item, .. } => item.report_id(),
            Tagged::Gone { .. } => "<gone marker>",
        }
    }
}

/// Boxed closure sampling one receiver's backlog.
fn probe<'a, T>(rx: &Receiver<T>) -> Box<dyn Fn() -> usize + Send + 'a>
where
    T: Send + 'a,
{
    let rx = rx.clone();
    Box::new(move || rx.len())
}

/// The in-process transport mode: typed channels, no serialisation.
#[allow(clippy::too_many_arguments)]
fn run_direct<C: Connector>(
    reports: Vec<RawReport>,
    registry: &ParserRegistry,
    extractor: &dyn Extractor,
    connector: &mut C,
    resolver: &Option<Arc<dyn CtiResolver>>,
    config: &PipelineConfig,
    checker: &DefaultChecker,
    cap: usize,
    shared: &Shared,
    trace: &TraceLog,
    sampler_done: &AtomicBool,
) -> usize {
    let (tx_report, rx_report) = bounded::<Tagged<IntermediateReport>>(cap);
    let (tx_checked, rx_checked) = bounded::<Tagged<IntermediateReport>>(cap);
    let (tx_cti, rx_cti) = bounded::<Tagged<IntermediateCti>>(cap);
    let (tx_extracted, rx_extracted) = bounded::<Tagged<IntermediateCti>>(cap);
    let (tx_final, rx_final) = bounded::<Tagged<Resolved>>(cap);
    std::thread::scope(|scope| {
        let probes: Vec<Box<dyn Fn() -> usize + Send + '_>> = vec![
            probe(&rx_report),
            probe(&rx_checked),
            probe(&rx_cti),
            probe(&rx_extracted),
            probe(&rx_final),
        ];
        spawn_sampler(scope, probes, shared, sampler_done);

        // Port.
        scope.spawn(move || {
            let mut clock = WorkerClock::start("port", 0, &shared.port, trace);
            let mut porter = DefaultPorter::new();
            let mut seq = 0u64;
            let mut emit = |report: IntermediateReport, clock: &mut WorkerClock<'_>| {
                shared.ported.fetch_add(1, Ordering::Relaxed);
                let tagged = Tagged::Item { seq, item: report };
                seq += 1;
                if let Err(SendError(lost)) = clock.send(&tx_report, tagged) {
                    shared.quarantine(
                        trace,
                        "port",
                        lost.report_id().to_owned(),
                        STAGE_GONE.to_owned(),
                        &[],
                    );
                }
                clock.item_done();
            };
            for raw in reports {
                if let Some(report) = clock.busy(|| porter.feed(raw)) {
                    emit(report, &mut clock);
                }
            }
            for report in clock.busy(|| porter.flush()) {
                emit(report, &mut clock);
            }
            clock.finish();
        });

        // Check.
        for worker in 0..config.workers.check.max(1) {
            let rx = rx_report.clone();
            let tx = tx_checked.clone();
            scope.spawn(move || {
                let mut clock = WorkerClock::start("check", worker, &shared.check, trace);
                while let Ok(msg) = clock.blocked(|| rx.recv()) {
                    match msg {
                        Tagged::Item { seq, item: report } => {
                            if clock.busy(|| checker.check(&report)) {
                                if let Err(SendError(lost)) =
                                    clock.send(&tx, Tagged::Item { seq, item: report })
                                {
                                    shared.quarantine(
                                        trace,
                                        "check",
                                        lost.report_id().to_owned(),
                                        STAGE_GONE.to_owned(),
                                        &[],
                                    );
                                }
                            } else {
                                shared.screened.fetch_add(1, Ordering::Relaxed);
                                let _ = clock.send(&tx, Tagged::Gone { seq });
                            }
                            clock.item_done();
                        }
                        Tagged::Gone { seq } => {
                            let _ = clock.send(&tx, Tagged::Gone { seq });
                        }
                    }
                }
                clock.finish();
            });
        }
        drop(rx_report);
        drop(tx_checked);

        // Parse.
        for worker in 0..config.workers.parse.max(1) {
            let rx = rx_checked.clone();
            let tx = tx_cti.clone();
            scope.spawn(move || {
                let mut clock = WorkerClock::start("parse", worker, &shared.parse, trace);
                while let Ok(msg) = clock.blocked(|| rx.recv()) {
                    match msg {
                        Tagged::Item { seq, item: report } => {
                            match clock.busy(|| registry.parse(&report)) {
                                Ok(cti) => {
                                    shared.parsed.fetch_add(1, Ordering::Relaxed);
                                    if let Err(SendError(lost)) =
                                        clock.send(&tx, Tagged::Item { seq, item: cti })
                                    {
                                        shared.quarantine(
                                            trace,
                                            "parse",
                                            lost.report_id().to_owned(),
                                            STAGE_GONE.to_owned(),
                                            &[&shared.parsed],
                                        );
                                    }
                                }
                                Err(_) => {
                                    shared.parse_errors.fetch_add(1, Ordering::Relaxed);
                                    let _ = clock.send(&tx, Tagged::Gone { seq });
                                }
                            }
                            clock.item_done();
                        }
                        Tagged::Gone { seq } => {
                            let _ = clock.send(&tx, Tagged::Gone { seq });
                        }
                    }
                }
                clock.finish();
            });
        }
        drop(rx_checked);
        drop(tx_cti);

        // Extract.
        for worker in 0..config.workers.extract.max(1) {
            let rx = rx_cti.clone();
            let tx = tx_extracted.clone();
            scope.spawn(move || {
                let mut clock = WorkerClock::start("extract", worker, &shared.extract, trace);
                while let Ok(msg) = clock.blocked(|| rx.recv()) {
                    match msg {
                        Tagged::Item { seq, item: mut cti } => {
                            clock.busy(|| extractor.extract(&mut cti));
                            shared.extracted.fetch_add(1, Ordering::Relaxed);
                            if let Err(SendError(lost)) =
                                clock.send(&tx, Tagged::Item { seq, item: cti })
                            {
                                shared.quarantine(
                                    trace,
                                    "extract",
                                    lost.report_id().to_owned(),
                                    STAGE_GONE.to_owned(),
                                    &[&shared.parsed, &shared.extracted],
                                );
                            }
                            clock.item_done();
                        }
                        Tagged::Gone { seq } => {
                            let _ = clock.send(&tx, Tagged::Gone { seq });
                        }
                    }
                }
                clock.finish();
            });
        }
        drop(rx_cti);
        drop(tx_extracted);

        // Resolve: the parallel half of the split connector.
        for worker in 0..config.workers.connect.max(1) {
            let rx = rx_extracted.clone();
            let tx = tx_final.clone();
            let resolver = resolver.clone();
            scope.spawn(move || {
                let mut clock = WorkerClock::start("resolve", worker, &shared.resolve, trace);
                while let Ok(msg) = clock.blocked(|| rx.recv()) {
                    match msg {
                        Tagged::Item { seq, item: cti } => {
                            match resolve_item(&resolver, seq, cti, shared, trace, &mut clock) {
                                Some(resolved) => {
                                    if let Err(SendError(lost)) = clock.send(
                                        &tx,
                                        Tagged::Item {
                                            seq,
                                            item: resolved,
                                        },
                                    ) {
                                        shared.quarantine(
                                            trace,
                                            "resolve",
                                            lost.report_id().to_owned(),
                                            STAGE_GONE.to_owned(),
                                            &[&shared.parsed, &shared.extracted],
                                        );
                                    }
                                }
                                None => {
                                    let _ = clock.send(&tx, Tagged::Gone { seq });
                                }
                            }
                            clock.item_done();
                        }
                        Tagged::Gone { seq } => {
                            let _ = clock.send(&tx, Tagged::Gone { seq });
                        }
                    }
                }
                clock.finish();
            });
        }
        drop(rx_extracted);
        drop(tx_final);

        // Connect: the single writer, applying in sequence order.
        let mut clock = WorkerClock::start("connect", 0, &shared.connect, trace);
        let mut writer = SeqWriter::<Resolved>::new();
        let mut connected = 0usize;
        while let Ok(msg) = clock.blocked(|| rx_final.recv()) {
            match msg {
                Tagged::Item { seq, item } => writer.insert(seq, Some(item)),
                Tagged::Gone { seq } => writer.insert(seq, None),
            }
            while let Some(entry) = writer.pop_ready() {
                if let Some(resolved) = entry {
                    connected += apply_one(connector, resolved, shared, trace, &mut clock);
                }
            }
        }
        for resolved in writer.drain().flatten() {
            connected += apply_one(connector, resolved, shared, trace, &mut clock);
        }
        clock.finish();
        sampler_done.store(true, Ordering::Relaxed);
        connected
    })
}

// ---------------------------------------------------------------------------
// Sequential baseline
// ---------------------------------------------------------------------------

/// The sequential baseline: same stages, one thread, no channels (E4's
/// comparison point). Per-stage busy time and item counts are recorded with
/// the same per-item discipline as the pipelined runner (there is no blocked
/// time — nothing to wait on).
pub fn run_sequential<C: Connector>(
    reports: Vec<RawReport>,
    registry: &ParserRegistry,
    extractor: &dyn Extractor,
    mut connector: C,
    config: &PipelineConfig,
) -> PipelineOutput<C> {
    let start = Instant::now();
    let mut metrics = PipelineMetrics {
        input_pages: reports.len(),
        ..Default::default()
    };
    let checker = DefaultChecker {
        min_text_len: config.checker_min_text_len,
    };
    let trace = TraceLog::new();
    let shared = Shared::default();

    let mut port_clock = WorkerClock::start("port", 0, &shared.port, &trace);
    let mut porter = DefaultPorter::new();
    let mut completed = Vec::new();
    for raw in reports {
        if let Some(report) = port_clock.busy(|| porter.feed(raw)) {
            completed.push(report);
            port_clock.item_done();
        }
    }
    for report in port_clock.busy(|| porter.flush()) {
        completed.push(report);
        port_clock.item_done();
    }
    port_clock.finish();
    metrics.ported = completed.len();

    let resolver = connector.resolver();
    let mut check_clock = WorkerClock::start("check", 0, &shared.check, &trace);
    let mut parse_clock = WorkerClock::start("parse", 0, &shared.parse, &trace);
    let mut extract_clock = WorkerClock::start("extract", 0, &shared.extract, &trace);
    let mut resolve_clock = WorkerClock::start("resolve", 0, &shared.resolve, &trace);
    let mut connect_clock = WorkerClock::start("connect", 0, &shared.connect, &trace);
    let mut seq = 0u64;
    for report in completed {
        let kept = check_clock.busy(|| checker.check(&report));
        check_clock.item_done();
        if !kept {
            metrics.screened_out += 1;
            continue;
        }
        let outcome = parse_clock.busy(|| registry.parse(&report));
        parse_clock.item_done();
        let mut cti = match outcome {
            Ok(cti) => {
                metrics.parsed += 1;
                cti
            }
            Err(_) => {
                metrics.parse_errors += 1;
                continue;
            }
        };
        extract_clock.busy(|| extractor.extract(&mut cti));
        extract_clock.item_done();
        metrics.extracted += 1;
        match &resolver {
            Some(r) => {
                // Same resolve/apply split as the pipelined runner, on one
                // thread, so E4's baseline attributes time to the same six
                // stages — and so both modes run literally the same code.
                let mut delta = resolve_clock.busy(|| r.resolve(&cti));
                delta.seq = seq;
                resolve_clock.item_done();
                let source = delta.report_id.clone();
                let outcome = connect_clock.busy(|| connector.apply_delta(delta));
                if outcome.conflicts > 0 {
                    metrics.canon_conflicts += outcome.conflicts;
                    trace.record(TraceEvent::CanonConflictResolved {
                        source,
                        conflicts: outcome.conflicts,
                    });
                }
                if let Some(entries) = outcome.canon_published {
                    trace.record(TraceEvent::CanonSnapshotPublished { entries });
                }
            }
            None => {
                connect_clock.busy(|| connector.connect(&cti));
            }
        }
        seq += 1;
        connect_clock.item_done();
        metrics.connected += 1;
    }
    check_clock.finish();
    parse_clock.finish();
    extract_clock.finish();
    resolve_clock.finish();
    connect_clock.finish();

    for (name, counters) in STAGE_NAMES.iter().zip([
        &shared.port,
        &shared.check,
        &shared.parse,
        &shared.extract,
        &shared.resolve,
        &shared.connect,
    ]) {
        metrics
            .stage_busy_ms
            .insert(name, counters.busy_us.load(Ordering::Relaxed) / 1000);
        metrics.stage_blocked_ms.insert(name, 0);
        metrics
            .stage_items
            .insert(name, counters.items.load(Ordering::Relaxed));
    }
    let wall = start.elapsed();
    metrics.wall_us = wall.as_micros() as u64;
    metrics.wall_ms = wall.as_millis() as u64;
    PipelineOutput {
        connector,
        metrics,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FaultInjection, PipelineConfig, StageWorkers};
    use crate::stages::{GraphConnector, IocOnlyExtractor, TabularConnector};
    use kg_crawler::{crawl_all, CrawlState, CrawlerConfig};
    use std::sync::Arc;

    fn crawled_reports() -> Vec<RawReport> {
        let web = kg_corpus::SimulatedWeb::new(
            kg_corpus::World::generate(kg_corpus::WorldConfig::tiny(3)),
            kg_corpus::standard_sources(6),
            11,
        );
        let mut state = CrawlState::new();
        let (reports, _) = crawl_all(&web, &mut state, &CrawlerConfig::default(), u64::MAX / 4);
        reports
    }

    fn ioc_extractor() -> IocOnlyExtractor {
        IocOnlyExtractor {
            baseline: Arc::new(kg_extract::RegexNerBaseline::new(vec![])),
        }
    }

    #[test]
    fn pipelined_processes_crawled_corpus() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let out = run_pipelined(
            reports.clone(),
            &registry,
            &extractor,
            GraphConnector::new(),
            &PipelineConfig::default(),
        );
        let m = &out.metrics;
        assert_eq!(m.input_pages, reports.len());
        assert!(m.ported > 0);
        assert!(m.screened_out > 0, "ads must be screened: {m:?}");
        assert_eq!(m.parsed, m.extracted);
        assert_eq!(m.extracted, m.connected);
        assert_eq!(m.quarantined, 0);
        assert!(m.accounting_balanced(), "{m:?}");
        assert!(out.connector.graph.node_count() > 0);
        assert!(out.connector.graph.edge_count() > 0);
    }

    /// Byte-identical graphs, not merely equal counts: fnv1a64 over the
    /// canonical JSON serialisation, paired with the per-element
    /// `GraphStore::digest` so the two schemes are checked against each
    /// other on every equivalence assertion.
    fn graph_digest(connector: &GraphConnector) -> (u64, u64) {
        let bytes = serde_json::to_vec(&connector.graph).expect("graph serialises");
        (kg_ir::fnv1a64(&bytes), connector.graph.digest())
    }

    #[test]
    fn sequential_and_pipelined_agree() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let seq = run_sequential(
            reports.clone(),
            &registry,
            &extractor,
            GraphConnector::new(),
            &PipelineConfig::default(),
        );
        let pip = run_pipelined(
            reports,
            &registry,
            &extractor,
            GraphConnector::new(),
            &PipelineConfig::default(),
        );
        assert_eq!(seq.metrics.connected, pip.metrics.connected);
        assert_eq!(
            seq.connector.graph.node_count(),
            pip.connector.graph.node_count()
        );
        assert_eq!(
            seq.connector.graph.edge_count(),
            pip.connector.graph.edge_count()
        );
        assert_eq!(graph_digest(&seq.connector), graph_digest(&pip.connector));
    }

    #[test]
    fn parallel_resolver_is_byte_identical_to_sequential() {
        use kg_fusion::ResolverConfig;
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let seq = run_sequential(
            reports.clone(),
            &registry,
            &extractor,
            GraphConnector::with_resolver(ResolverConfig::standard()),
            &PipelineConfig::default(),
        );
        let seq_digest = graph_digest(&seq.connector);
        for (connect_workers, serialize_transport) in [(1usize, false), (4, false), (4, true)] {
            let config = PipelineConfig {
                workers: StageWorkers {
                    connect: connect_workers,
                    ..StageWorkers::default()
                },
                serialize_transport,
                ..PipelineConfig::default()
            };
            let pip = run_pipelined(
                reports.clone(),
                &registry,
                &extractor,
                GraphConnector::with_resolver(ResolverConfig::standard()),
                &config,
            );
            assert_eq!(
                seq.metrics.connected, pip.metrics.connected,
                "workers={connect_workers} serialized={serialize_transport}"
            );
            assert_eq!(
                seq_digest,
                graph_digest(&pip.connector),
                "workers={connect_workers} serialized={serialize_transport}"
            );
            assert_eq!(
                seq.connector.canon().len(),
                pip.connector.canon().len(),
                "workers={connect_workers} serialized={serialize_transport}"
            );
        }
    }

    #[test]
    fn metrics_agree_across_worker_counts() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let seq = run_sequential(
            reports.clone(),
            &registry,
            &extractor,
            GraphConnector::new(),
            &PipelineConfig::default(),
        );
        for workers in [1usize, 4, 8] {
            let config = PipelineConfig {
                workers: StageWorkers {
                    check: workers,
                    parse: workers,
                    extract: workers,
                    connect: workers,
                },
                ..PipelineConfig::default()
            };
            let pip = run_pipelined(
                reports.clone(),
                &registry,
                &extractor,
                GraphConnector::new(),
                &config,
            );
            let (s, p) = (&seq.metrics, &pip.metrics);
            assert_eq!(s.ported, p.ported, "workers={workers}");
            assert_eq!(s.screened_out, p.screened_out, "workers={workers}");
            assert_eq!(s.parsed, p.parsed, "workers={workers}");
            assert_eq!(s.parse_errors, p.parse_errors, "workers={workers}");
            assert_eq!(s.connected, p.connected, "workers={workers}");
            assert!(p.accounting_balanced(), "workers={workers}: {p:?}");
        }
    }

    #[test]
    fn serialized_transport_agrees_with_direct() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let direct = run_pipelined(
            reports.clone(),
            &registry,
            &extractor,
            GraphConnector::new(),
            &PipelineConfig::default(),
        );
        let serialized = run_pipelined(
            reports,
            &registry,
            &extractor,
            GraphConnector::new(),
            &PipelineConfig {
                serialize_transport: true,
                ..PipelineConfig::default()
            },
        );
        assert_eq!(direct.metrics.connected, serialized.metrics.connected);
        assert_eq!(serialized.metrics.quarantined, 0);
        assert!(serialized.metrics.accounting_balanced());
        assert_eq!(
            direct.connector.graph.node_count(),
            serialized.connector.graph.node_count()
        );
    }

    #[test]
    fn poison_wire_message_is_quarantined_not_fatal() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let config = PipelineConfig {
            serialize_transport: true,
            fault: FaultInjection {
                corrupt_port_message: Some(0),
            },
            ..PipelineConfig::default()
        };
        let out = run_pipelined(
            reports,
            &registry,
            &extractor,
            GraphConnector::new(),
            &config,
        );
        let m = &out.metrics;
        assert_eq!(m.quarantined, 1, "{m:?}");
        assert_eq!(m.quarantine.len(), 1);
        assert_eq!(m.quarantine[0].stage, "check");
        assert!(
            m.quarantine[0].source.contains("wire message"),
            "{:?}",
            m.quarantine[0]
        );
        assert!(!m.quarantine[0].error.is_empty());
        // The run completed: everything else flowed through and the
        // accounting invariant holds despite the loss.
        assert!(m.connected > 0);
        assert_eq!(m.parsed, m.connected);
        assert!(m.accounting_balanced(), "{m:?}");
        assert!(out
            .trace
            .snapshot()
            .iter()
            .any(|r| matches!(r.event, TraceEvent::Quarantined { .. })));
    }

    /// Connector that panics on its Nth item, then recovers.
    struct PanickyConnector {
        inner: TabularConnector,
        connects: usize,
        panic_at: usize,
    }

    impl Connector for PanickyConnector {
        fn connect(&mut self, cti: &IntermediateCti) {
            let n = self.connects;
            self.connects += 1;
            if n == self.panic_at {
                panic!("injected connector failure");
            }
            self.inner.connect(cti);
        }
    }

    #[test]
    fn panicking_connector_keeps_invariant() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        // Quiet the default panic hook for the injected panic.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = run_pipelined(
            reports,
            &registry,
            &extractor,
            PanickyConnector {
                inner: TabularConnector::new(),
                connects: 0,
                panic_at: 1,
            },
            &PipelineConfig::default(),
        );
        std::panic::set_hook(hook);
        let m = &out.metrics;
        assert_eq!(m.quarantined, 1, "{m:?}");
        assert_eq!(m.quarantine[0].stage, "connect");
        assert!(
            m.quarantine[0].error.contains("injected"),
            "{:?}",
            m.quarantine[0]
        );
        assert!(m.accounting_balanced(), "{m:?}");
        // The failed item was rolled out of parsed/extracted; the rest
        // connected normally.
        assert_eq!(m.parsed, m.connected);
        assert_eq!(m.extracted, m.connected);
        assert!(m.connected > 0);
    }

    #[test]
    fn tabular_connector_swaps_in() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let out = run_pipelined(
            reports,
            &registry,
            &extractor,
            TabularConnector::new(),
            &PipelineConfig::default(),
        );
        assert!(out.metrics.connected > 0);
        assert!(!out.connector.entities.is_empty());
        assert!(!out.connector.mentions.is_empty());
    }

    #[test]
    fn metrics_track_stages() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let out = run_pipelined(
            reports,
            &registry,
            &extractor,
            GraphConnector::new(),
            &PipelineConfig::default(),
        );
        let m = &out.metrics;
        assert_eq!(m.stage_busy_ms.len(), 6);
        assert_eq!(m.stage_blocked_ms.len(), 6);
        assert_eq!(m.stage_items.len(), 6);
        assert_eq!(m.queue_depths.len(), 5);
        assert!(
            m.queue_depths.values().all(|d| d.samples >= 1),
            "{:?}",
            m.queue_depths
        );
        assert!(m.reports_per_second() >= 0.0);
        assert_eq!(
            m.stage_items["connect"],
            m.connected as u64 + m.quarantined as u64
        );
        // Every stage announced itself in the trace.
        let records = out.trace.snapshot();
        for stage in STAGE_NAMES {
            assert!(
                records.iter().any(
                    |r| matches!(r.event, TraceEvent::StageStarted { stage: s, .. } if s == stage)
                ),
                "missing StageStarted for {stage}"
            );
            assert!(
                records.iter().any(
                    |r| matches!(r.event, TraceEvent::StageFinished { stage: s, .. } if s == stage)
                ),
                "missing StageFinished for {stage}"
            );
        }
        // The report renders every stage row.
        let report = m.stage_report();
        for stage in STAGE_NAMES {
            assert!(report.contains(stage), "{report}");
        }
    }

    /// Connector that sleeps per item: upstream stages starve on the full
    /// channel, so their honest busy time must stay far below wall time.
    struct SlowConnector {
        inner: TabularConnector,
    }

    impl Connector for SlowConnector {
        fn connect(&mut self, cti: &IntermediateCti) {
            std::thread::sleep(Duration::from_millis(2));
            self.inner.connect(cti);
        }
    }

    #[test]
    fn busy_time_excludes_channel_waits_when_starved() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let config = PipelineConfig {
            channel_capacity: 1,
            ..PipelineConfig::default()
        };
        let out = run_pipelined(
            reports,
            &registry,
            &extractor,
            SlowConnector {
                inner: TabularConnector::new(),
            },
            &config,
        );
        let m = &out.metrics;
        assert!(m.connected > 0);
        // The connector serialises everything at 2ms/item, so wall time is
        // at least that long...
        assert!(m.wall_ms >= 2 * m.connected as u64 / 2, "{m:?}");
        // ...and the mostly-idle check stage must NOT report the whole run
        // as busy (the old accounting counted blocked-on-recv as busy).
        assert!(
            m.stage_busy_ms["check"] < m.wall_ms,
            "check busy {} >= wall {}",
            m.stage_busy_ms["check"],
            m.wall_ms
        );
        // Time waiting on channels is visible as blocked time upstream.
        let upstream_blocked: u64 = ["port", "check", "parse", "extract"]
            .iter()
            .map(|s| m.stage_blocked_ms[*s])
            .sum();
        assert!(upstream_blocked > 0, "{m:?}");
    }

    #[test]
    fn reports_per_second_survives_sub_millisecond_runs() {
        let m = PipelineMetrics {
            connected: 4,
            wall_ms: 0,
            wall_us: 500,
            ..PipelineMetrics::default()
        };
        assert_eq!(m.reports_per_second(), 8000.0);
        let empty = PipelineMetrics::default();
        assert_eq!(empty.reports_per_second(), 0.0);
    }

    #[test]
    fn sequential_records_stage_metrics() {
        let reports = crawled_reports();
        let registry = ParserRegistry::new();
        let extractor = ioc_extractor();
        let out = run_sequential(
            reports,
            &registry,
            &extractor,
            GraphConnector::new(),
            &PipelineConfig::default(),
        );
        let m = &out.metrics;
        assert_eq!(m.stage_items.len(), 6);
        assert_eq!(m.stage_items["resolve"], m.extracted as u64);
        assert_eq!(m.stage_items["connect"], m.connected as u64);
        assert_eq!(m.quarantined, 0);
        assert!(m.accounting_balanced());
        assert!(m.wall_us >= m.wall_ms * 1000);
    }
}
