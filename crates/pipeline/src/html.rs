//! A small HTML reading layer for the source-dependent parsers.
//!
//! Not a general HTML parser — exactly the operations the 42 source
//! templates require: first tag content, repeated tag contents, class
//! probing and entity unescaping. Malformed input degrades to empty
//! results, never panics.

/// Unescape the five XML entities (the only ones the sources emit).
pub fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&#39;", "'")
        .replace("&amp;", "&")
}

/// Content of the first `<tag ...>...</tag>` occurrence, unescaped.
pub fn first_tag(body: &str, tag: &str) -> Option<String> {
    let open = format!("<{tag}");
    let close = format!("</{tag}>");
    let start = body.find(&open)?;
    let content_start = body[start..].find('>')? + start + 1;
    let end = body[content_start..].find(&close)? + content_start;
    Some(unescape(body[content_start..end].trim()))
}

/// Contents of every `<tag ...>...</tag>` occurrence, in order, unescaped.
pub fn all_tags(body: &str, tag: &str) -> Vec<String> {
    let open = format!("<{tag}");
    let close = format!("</{tag}>");
    let mut out = Vec::new();
    let mut rest = body;
    while let Some(start) = rest.find(&open) {
        // Guard against prefix collisions (`<p` matching `<pre`).
        let after_open = &rest[start + open.len()..];
        if !after_open.starts_with('>') && !after_open.starts_with(' ') {
            rest = &rest[start + open.len()..];
            continue;
        }
        let Some(gt) = rest[start..].find('>') else {
            break;
        };
        let content_start = start + gt + 1;
        let Some(end_rel) = rest[content_start..].find(&close) else {
            break;
        };
        let end = content_start + end_rel;
        out.push(unescape(rest[content_start..end].trim()));
        rest = &rest[end + close.len()..];
    }
    out
}

/// Content of the first tag carrying `class="<class>"`.
pub fn first_with_class(body: &str, class: &str) -> Option<String> {
    let marker = format!("class=\"{class}\"");
    let pos = body.find(&marker)?;
    let content_start = body[pos..].find('>')? + pos + 1;
    let end = body[content_start..].find('<')? + content_start;
    Some(unescape(body[content_start..end].trim()))
}

/// Whether the body contains an element with the class.
pub fn has_class(body: &str, class: &str) -> bool {
    body.contains(&format!("class=\"{class}\""))
}

/// `(key, value)` rows of the first `<table class="meta">`.
pub fn meta_table_rows(body: &str) -> Vec<(String, String)> {
    let Some(start) = body.find("<table class=\"meta\">") else {
        return Vec::new();
    };
    let table = match body[start..].find("</table>") {
        Some(end) => &body[start..start + end],
        None => &body[start..],
    };
    let keys = all_tags(table, "th");
    let values = all_tags(table, "td");
    keys.into_iter().zip(values).collect()
}

/// `(key, value)` rows of the first `<dl class="meta">`.
pub fn meta_dl_rows(body: &str) -> Vec<(String, String)> {
    let Some(start) = body.find("<dl class=\"meta\">") else {
        return Vec::new();
    };
    let dl = match body[start..].find("</dl>") {
        Some(end) => &body[start..start + end],
        None => &body[start..],
    };
    let keys = all_tags(dl, "dt");
    let values = all_tags(dl, "dd");
    keys.into_iter().zip(values).collect()
}

/// The paragraph texts of the `<div class="content">` section (the article
/// body), joined into the canonical text (paragraphs separated by `\n`).
pub fn content_paragraphs(body: &str) -> Vec<String> {
    let Some(start) = body.find("<div class=\"content\">") else {
        return Vec::new();
    };
    let content = match body[start..].find("</div>") {
        Some(end) => &body[start..start + end],
        None => &body[start..],
    };
    all_tags(content, "p")
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = r#"<!DOCTYPE html>
<html><head><title>A &amp; B</title></head><body>
<h1>A &amp; B</h1>
<span class="category">malware</span>
<table class="meta">
<tr><th>family</th><td>emotet</td></tr>
<tr><th>sha256</th><td>abc123</td></tr>
</table>
<div class="content">
<p>Para &lt;one&gt;.</p>
<p>Para two.</p>
</div>
</body></html>"#;

    #[test]
    fn extracts_title_and_heading() {
        assert_eq!(first_tag(PAGE, "title").as_deref(), Some("A & B"));
        assert_eq!(first_tag(PAGE, "h1").as_deref(), Some("A & B"));
        assert_eq!(first_tag(PAGE, "nonexistent"), None);
    }

    #[test]
    fn extracts_meta_table() {
        let rows = meta_table_rows(PAGE);
        assert_eq!(
            rows,
            vec![
                ("family".to_owned(), "emotet".to_owned()),
                ("sha256".to_owned(), "abc123".to_owned())
            ]
        );
        assert!(meta_dl_rows(PAGE).is_empty());
    }

    #[test]
    fn extracts_paragraphs_with_unescaping() {
        assert_eq!(content_paragraphs(PAGE), vec!["Para <one>.", "Para two."]);
    }

    #[test]
    fn class_probing() {
        assert_eq!(
            first_with_class(PAGE, "category").as_deref(),
            Some("malware")
        );
        assert!(has_class(PAGE, "category"));
        assert!(!has_class(PAGE, "ad"));
    }

    #[test]
    fn dl_rows() {
        let page = "<dl class=\"meta\">\n<dt>cve id</dt><dd>CVE-2020-1</dd>\n</dl>";
        assert_eq!(
            meta_dl_rows(page),
            vec![("cve id".to_owned(), "CVE-2020-1".to_owned())]
        );
    }

    #[test]
    fn malformed_html_degrades_gracefully() {
        assert!(all_tags("<p>unclosed", "p").is_empty());
        assert!(content_paragraphs("<div class=\"content\"><p>x</p>").len() == 1);
        assert!(meta_table_rows("<table class=\"meta\"><tr><th>k</th>").is_empty());
        assert_eq!(first_tag("", "p"), None);
    }

    #[test]
    fn prefix_collision_guard() {
        let page = "<pre>code</pre><p>real</p>";
        assert_eq!(all_tags(page, "p"), vec!["real"]);
    }

    #[test]
    fn unescape_round_trip() {
        assert_eq!(
            unescape("&lt;a&gt; &amp; &quot;b&quot; &#39;c&#39;"),
            "<a> & \"b\" 'c'"
        );
    }
}
