//! The user-provided configuration file (paper §2.1: "the system can be
//! configured through a user-provided configuration file, which specifies
//! the set of components to use and the additional parameters ... passed to
//! these components").

use serde::{Deserialize, Serialize};

/// Which extractor battery to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExtractorChoice {
    /// CRF NER + relation extraction (the full system).
    #[default]
    Ner,
    /// IOC scanner + gazetteers only (the regex baseline).
    IocOnly,
    /// No text extraction (structured fields only).
    None,
}

/// Which storage connector to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ConnectorChoice {
    /// Property graph + keyword index (the default "Neo4j" path).
    #[default]
    Graph,
    /// Flat relational tables (the "SQL connector" alternative).
    Tabular,
}

/// Worker counts per parallelisable stage. Missing fields in a config file
/// take their defaults, so older files without `connect` keep parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(default)]
pub struct StageWorkers {
    pub check: usize,
    pub parse: usize,
    pub extract: usize,
    /// Resolve-phase workers of the split connector (the serial apply phase
    /// always runs on exactly one writer thread).
    pub connect: usize,
}

impl Default for StageWorkers {
    fn default() -> Self {
        StageWorkers {
            check: 1,
            parse: 2,
            extract: 4,
            connect: 2,
        }
    }
}

/// Fault injection for hardening tests. Not part of the configuration
/// file — it is skipped by (de)serialisation and only reachable from code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultInjection {
    /// Corrupt the payload of the Nth (0-based) message leaving the porter
    /// in serialize-transport mode, so downstream decoding fails and the
    /// message must take the quarantine path.
    pub corrupt_port_message: Option<usize>,
}

/// Full pipeline configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct PipelineConfig {
    /// Checker threshold: minimum article text length.
    pub checker_min_text_len: usize,
    pub extractor: ExtractorChoice,
    pub connector: ConnectorChoice,
    pub workers: StageWorkers,
    /// Bounded channel capacity between stages (backpressure).
    pub channel_capacity: usize,
    /// Serialise messages crossing stage boundaries to bytes, as a
    /// multi-host deployment would (§2.1 scalability ablation).
    pub serialize_transport: bool,
    /// Minimum CRF span confidence for NER mentions (the "threshold values
    /// for entity recognition" the paper's config file passes to components).
    pub ner_min_confidence: f64,
    /// Test-only fault injection; never read from or written to JSON.
    #[serde(skip)]
    pub fault: FaultInjection,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            checker_min_text_len: 40,
            extractor: ExtractorChoice::default(),
            connector: ConnectorChoice::default(),
            workers: StageWorkers::default(),
            channel_capacity: 256,
            serialize_transport: false,
            ner_min_confidence: 0.0,
            fault: FaultInjection::default(),
        }
    }
}

impl PipelineConfig {
    /// Parse from a JSON configuration file's contents. Unknown fields are
    /// rejected loudly rather than silently ignored.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Render as a JSON configuration file.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips() {
        let c = PipelineConfig::default();
        let back = PipelineConfig::from_json(&c.to_json()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn partial_config_fills_defaults() {
        let c = PipelineConfig::from_json(
            r#"{"extractor": "IocOnly", "workers": {"check": 2, "parse": 2, "extract": 8}}"#,
        )
        .unwrap();
        assert_eq!(c.extractor, ExtractorChoice::IocOnly);
        assert_eq!(c.workers.extract, 8);
        // `connect` is absent from the (older-style) file: default applies.
        assert_eq!(c.workers.connect, StageWorkers::default().connect);
        assert_eq!(
            c.channel_capacity,
            PipelineConfig::default().channel_capacity
        );
    }

    #[test]
    fn fault_injection_stays_out_of_the_config_file() {
        let mut c = PipelineConfig::default();
        c.fault.corrupt_port_message = Some(3);
        let json = c.to_json();
        assert!(!json.contains("fault"), "{json}");
        let back = PipelineConfig::from_json(&json).unwrap();
        assert_eq!(back.fault, FaultInjection::default());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(PipelineConfig::from_json("{\"extractor\": \"Quantum\"}").is_err());
        assert!(PipelineConfig::from_json("not json").is_err());
    }
}
