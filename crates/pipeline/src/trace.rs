//! Structured event log for pipeline observability.
//!
//! A bounded, thread-safe ring buffer of typed events. Stage workers, the
//! quarantine path and the ingest driver record what happened and when; the
//! CLI (`build --stats`) and the E4 bench render it afterwards. When the
//! buffer overflows, the oldest records are evicted (and counted) so tracing
//! can stay always-on without unbounded memory.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::time::Instant;

/// Default record capacity of a [`TraceLog`].
pub const DEFAULT_TRACE_CAPACITY: usize = 1024;

/// One structured observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A stage worker started.
    StageStarted { stage: &'static str, worker: usize },
    /// A stage worker drained its input and exited.
    StageFinished {
        stage: &'static str,
        worker: usize,
        items: u64,
        busy_us: u64,
        blocked_us: u64,
    },
    /// A message left the normal flow and was captured (dead-letter path).
    Quarantined {
        stage: &'static str,
        source: String,
        error: String,
    },
    /// A send blocked on a full channel longer than the stall threshold.
    BackpressureStall {
        stage: &'static str,
        worker: usize,
        waited_us: u64,
    },
    /// The crawl scheduler rebooted an aborted source crawler.
    SchedulerReboot {
        source: String,
        due_ms: u64,
        error: String,
    },
    /// A source's circuit breaker changed position (states rendered as
    /// strings so the pipeline crate stays independent of the crawler).
    BreakerTransition {
        source: String,
        at_ms: u64,
        from: String,
        to: String,
        reason: String,
    },
    /// The durable ingest driver persisted a KG snapshot.
    SnapshotTaken {
        seq: u64,
        cycles_done: u64,
        kg_digest: u64,
    },
    /// The serving layer published a new read snapshot (epoch swap).
    SnapshotPublished {
        version: u64,
        kg_digest: u64,
        nodes: usize,
        edges: usize,
        /// Wall time spent freezing the snapshot, microseconds.
        build_us: u64,
        /// How it was frozen: "full" rebuild or "incremental" epoch patch.
        mode: &'static str,
    },
    /// A standing-query subscription matched against one epoch's delta
    /// (recorded once per subscription per publish, only when it matched).
    SubscriptionMatched {
        subscription: u64,
        /// Digest of the snapshot the matches were evaluated against.
        kg_digest: u64,
        matched: usize,
        appeared: usize,
        updated: usize,
        removed: usize,
    },
    /// A subscriber's bounded mailbox overflowed during delivery; the
    /// events were dropped but exactly counted (never silent loss).
    MailboxOverflow {
        subscription: u64,
        kg_digest: u64,
        dropped: u64,
    },
    /// Point-in-time query-cache counters from the serving layer.
    CacheReport {
        hits: u64,
        misses: u64,
        evictions: u64,
        entries: usize,
    },
    /// Point-in-time compiled-plan-cache counters from the serving layer.
    /// Plans are keyed by normalized query text alone (no snapshot digest),
    /// so `compiles` staying flat across publishes is the observable proof
    /// that cached plans survive epochs.
    PlanCacheReport {
        hits: u64,
        misses: u64,
        compiles: u64,
        evictions: u64,
        entries: usize,
    },
    /// A durable run replayed its journal on startup.
    JournalReplayed {
        records: usize,
        torn_tail: bool,
        resumed_from_snapshot: Option<u64>,
    },
    /// The connect writer republished the canon-table snapshot handed to
    /// resolve workers.
    CanonSnapshotPublished { entries: usize },
    /// A worker resolution was invalidated by canon entries appended after
    /// its snapshot and re-resolved at apply time.
    CanonConflictResolved { source: String, conflicts: usize },
    /// A crawl-and-ingest round began.
    IngestStarted { pages: usize },
    /// A crawl-and-ingest round finished.
    IngestFinished {
        connected: usize,
        quarantined: usize,
        wall_us: u64,
    },
}

/// An event plus its position and capture time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotone sequence number (keeps counting across ring eviction).
    pub seq: u64,
    /// Microseconds since the log was created.
    pub at_us: u64,
    pub event: TraceEvent,
}

#[derive(Debug, Default)]
struct Ring {
    records: VecDeque<TraceRecord>,
    next_seq: u64,
    dropped: u64,
}

/// Bounded ring buffer of [`TraceRecord`]s; safe to share across workers.
#[derive(Debug)]
pub struct TraceLog {
    started: Instant,
    capacity: usize,
    inner: Mutex<Ring>,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceLog {
    /// Log with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Log retaining at most `capacity` records (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            started: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(Ring::default()),
        }
    }

    /// Append an event, evicting the oldest record when full.
    pub fn record(&self, event: TraceEvent) {
        let at_us = self.started.elapsed().as_micros() as u64;
        let mut ring = self.inner.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.records.len() == self.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        ring.records.push_back(TraceRecord { seq, at_us, event });
    }

    /// Copy out the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.inner.lock().records.iter().cloned().collect()
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events recorded over the log's lifetime, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Records evicted by ring overflow.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Re-record every retained record of `other` into `self`, in order.
    /// Sequence numbers and timestamps are re-assigned relative to `self`.
    pub fn absorb(&self, other: &TraceLog) {
        for record in other.snapshot() {
            self.record(record.event);
        }
    }

    /// Render the newest `limit` records, one per line (oldest of the tail
    /// first), for CLI/bench output.
    pub fn render_tail(&self, limit: usize) -> String {
        let records = self.snapshot();
        let skip = records.len().saturating_sub(limit);
        let mut out = String::new();
        for record in &records[skip..] {
            out.push_str(&format!(
                "  [{:>6}us #{:<4}] {:?}\n",
                record.at_us, record.seq, record.event
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let log = TraceLog::with_capacity(3);
        for worker in 0..5 {
            log.record(TraceEvent::StageStarted {
                stage: "check",
                worker,
            });
        }
        let records = log.snapshot();
        assert_eq!(records.len(), 3);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.total_recorded(), 5);
        // Newest three survive, sequence numbers intact.
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert!(records.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn absorb_re_records_in_order() {
        let inner = TraceLog::new();
        inner.record(TraceEvent::IngestStarted { pages: 7 });
        inner.record(TraceEvent::IngestFinished {
            connected: 5,
            quarantined: 0,
            wall_us: 10,
        });
        let outer = TraceLog::new();
        outer.record(TraceEvent::StageStarted {
            stage: "port",
            worker: 0,
        });
        outer.absorb(&inner);
        let events: Vec<TraceEvent> = outer.snapshot().into_iter().map(|r| r.event).collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events[1], TraceEvent::IngestStarted { pages: 7 });
    }

    #[test]
    fn render_tail_limits_output() {
        let log = TraceLog::new();
        for worker in 0..10 {
            log.record(TraceEvent::StageStarted {
                stage: "parse",
                worker,
            });
        }
        let tail = log.render_tail(2);
        assert_eq!(tail.lines().count(), 2);
        assert!(tail.contains("worker: 9"));
    }
}
