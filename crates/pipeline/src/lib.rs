//! The SecurityKG backend system (paper §2.1, §2.4, Figure 1).
//!
//! Report lifecycle: **collection** (the crawler, in `kg-crawler`) →
//! **processing** (porter → checker → parser → extractor, this crate) →
//! **storage** (connector → graph store + full-text index) → applications.
//!
//! - [`html`] — the small HTML reading layer the source-dependent parsers
//!   are built on.
//! - [`stages`] — the component traits ([`Porter`], [`Checker`], [`Parser`],
//!   [`Extractor`], [`Connector`]) and their default implementations. The
//!   modular design is the paper's extensibility story: "multiple components
//!   with the same interface work together in the same processing step".
//! - [`config`] — the user-provided configuration file selecting components
//!   and their parameters.
//! - [`engine`] — pipelined, multi-worker execution over bounded crossbeam
//!   channels, with optional byte-serialised hand-off between stages (the
//!   multi-host deployment story of §2.1); plus the sequential baseline for
//!   experiment E4. Messages that cannot cross a stage boundary are
//!   quarantined (dead-lettered), not dropped or fatal.
//! - [`trace`] — the structured event log (bounded ring of typed events)
//!   populated by the engine and rendered by the CLI and the benches.

//! - [`delta`] — the split connector's intermediate representation: the
//!   parallel resolve phase emits self-contained [`delta::GraphDelta`]s
//!   (canonicalised entities, validated relations, pre-tokenized postings)
//!   that the single writer applies in sequence order.

pub mod config;
pub mod delta;
pub mod engine;
pub mod html;
pub mod stages;
pub mod trace;

pub use config::{FaultInjection, PipelineConfig};
pub use delta::{resolve_cti, ApplyOutcome, CtiResolver, DeltaEntity, DeltaRelation, GraphDelta};
pub use engine::{
    run_pipelined, run_sequential, PipelineMetrics, PipelineOutput, QuarantinedMessage,
    QueueDepthStats,
};
pub use stages::{
    Checker, CompositeChecker, Connector, DedupChecker, DefaultChecker, DefaultPorter, Extractor,
    GraphConnector, IocOnlyExtractor, NerExtractor, Parser, ParserRegistry, Porter, StyleParser,
    TabularConnector,
};
pub use trace::{TraceEvent, TraceLog, TraceRecord};
