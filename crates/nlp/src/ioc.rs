//! IOC detection and protection (paper §2.4, "IOC protection").
//!
//! IOCs are full of characters that break general NLP tooling: dots inside
//! file names and IP addresses end "sentences", backslashes inside registry
//! keys split "tokens". The paper's fix is to find IOCs *first* and shield
//! them through tokenization. This module is the finder: a set of
//! hand-written scanners (no regex dependency) that locate IOC spans with
//! their ontology kinds.
//!
//! The scanners understand common *defanging* conventions used by CTI
//! authors: `hxxp://`, `[.]`, `(.)` and `[at]`.

use kg_ontology::EntityKind;
use serde::{Deserialize, Serialize};

/// A detected IOC span in some text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IocSpan {
    /// IOC kind (always one of `EntityKind::IOCS` or `Vulnerability` for
    /// CVE identifiers).
    pub kind: EntityKind,
    /// Byte offset of the span start.
    pub start: usize,
    /// Byte offset one past the span end.
    pub end: usize,
    /// The matched text, exactly as it appears.
    pub text: String,
}

/// Configurable IOC scanner.
#[derive(Debug, Clone)]
pub struct IocMatcher {
    file_extensions: Vec<&'static str>,
    tlds: Vec<&'static str>,
}

/// File extensions recognised as file-name IOCs.
const FILE_EXTENSIONS: &[&str] = &[
    "exe", "dll", "bat", "cmd", "ps1", "vbs", "js", "jse", "wsf", "hta", "scr", "pif", "sys",
    "drv", "ocx", "cpl", "msi", "jar", "apk", "elf", "so", "dylib", "sh", "py", "pl", "rb", "doc",
    "docx", "docm", "xls", "xlsx", "xlsm", "ppt", "pptx", "pdf", "rtf", "zip", "rar", "7z", "tar",
    "gz", "iso", "img", "lnk", "tmp", "dat", "bin", "log", "db", "sqlite", "cfg", "ini", "key",
    "pem",
];

/// Top-level domains recognised as domain IOCs. Intentionally not exhaustive:
/// the synthetic corpus and common CTI reporting use these.
const TLDS: &[&str] = &[
    "com", "net", "org", "io", "ru", "cn", "info", "biz", "onion", "xyz", "top", "cc", "su", "uk",
    "de", "fr", "kr", "jp", "in", "br", "nl", "se", "ch", "eu", "us", "ca", "au", "edu", "gov",
    "mil", "co", "me", "tv", "ws", "pw", "site", "online", "club", "space", "example",
];

impl IocMatcher {
    /// The standard matcher with the built-in extension and TLD lists.
    pub fn standard() -> Self {
        IocMatcher {
            file_extensions: FILE_EXTENSIONS.to_vec(),
            tlds: TLDS.to_vec(),
        }
    }

    /// Find every IOC span in `text`, left to right, non-overlapping.
    pub fn find_all(&self, text: &str) -> Vec<IocSpan> {
        let bytes = text.as_bytes();
        let mut spans = Vec::new();
        let mut i = 0usize;
        while i < bytes.len() {
            // Skip whitespace.
            if bytes[i].is_ascii_whitespace() {
                i += 1;
                continue;
            }
            // Take the maximal non-whitespace chunk.
            let chunk_start = i;
            while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            let chunk_end = i;
            // Trim punctuation that is sentence decoration, not IOC content.
            let (s, e) = trim_decoration(text, chunk_start, chunk_end);
            if s >= e {
                continue;
            }
            let candidate = &text[s..e];
            if let Some(kind) = self.classify(candidate) {
                spans.push(IocSpan {
                    kind,
                    start: s,
                    end: e,
                    text: candidate.to_owned(),
                });
            }
        }
        spans
    }

    /// Classify one whitespace-delimited candidate, highest-priority first.
    pub fn classify(&self, s: &str) -> Option<EntityKind> {
        if is_url(s) {
            return Some(EntityKind::Url);
        }
        if is_email(s) {
            return Some(EntityKind::Email);
        }
        if is_registry_key(s) {
            return Some(EntityKind::RegistryKey);
        }
        if is_cve(s) {
            return Some(EntityKind::Vulnerability);
        }
        if let Some(kind) = hash_kind(s) {
            return Some(kind);
        }
        if is_ipv4(s) {
            return Some(EntityKind::IpAddress);
        }
        if self.is_file_path(s) {
            return Some(EntityKind::FilePath);
        }
        if self.is_file_name(s) {
            return Some(EntityKind::FileName);
        }
        if self.is_domain(s) {
            return Some(EntityKind::Domain);
        }
        None
    }

    fn is_file_name(&self, s: &str) -> bool {
        // name.ext where ext is known and name has no path separators.
        let Some(dot) = s.rfind('.') else {
            return false;
        };
        if dot == 0 || dot + 1 >= s.len() {
            return false;
        }
        let (name, ext) = (&s[..dot], &s[dot + 1..]);
        if name.contains('/') || name.contains('\\') || name.contains('@') {
            return false;
        }
        let ext = ext.to_ascii_lowercase();
        self.file_extensions.iter().any(|&e| e == ext)
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "._-$%~".contains(c))
    }

    fn is_file_path(&self, s: &str) -> bool {
        // Windows: drive letter + :\ ; UNC \\host\share ; Unix absolute path.
        let b = s.as_bytes();
        let win = b.len() > 3
            && b[0].is_ascii_alphabetic()
            && b[1] == b':'
            && b[2] == b'\\'
            && s[3..].chars().all(is_pathish_char);
        let unc = s.starts_with("\\\\") && s.len() > 2 && s[2..].chars().all(is_pathish_char);
        let unix = s.starts_with('/')
            && s.len() > 1
            && s.matches('/').count() >= 2
            && s.chars().all(|c| is_pathish_char(c) || c == '/');
        win || unc || unix
    }

    fn is_domain(&self, s: &str) -> bool {
        let refanged = refang(s);
        let labels: Vec<&str> = refanged.split('.').collect();
        if labels.len() < 2 {
            return false;
        }
        let tld = labels.last().unwrap().to_ascii_lowercase();
        if !self.tlds.iter().any(|&t| t == tld) {
            return false;
        }
        labels.iter().all(|l| {
            !l.is_empty()
                && l.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                && !l.starts_with('-')
                && !l.ends_with('-')
        })
    }
}

/// Strip defanging (`[.]`, `(.)`, `[at]`, `hxxp`) from a candidate.
pub fn refang(s: &str) -> String {
    s.replace("[.]", ".")
        .replace("(.)", ".")
        .replace("[at]", "@")
        .replace("hxxps://", "https://")
        .replace("hxxp://", "http://")
}

fn is_pathish_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || "\\/._-$%~ ()".contains(c) && c != ' '
}

/// Trim decoration punctuation from chunk edges, preserving IOC-internal
/// punctuation (brackets used for defanging survive because `[` is only
/// trimmed when unmatched).
fn trim_decoration(text: &str, mut start: usize, mut end: usize) -> (usize, usize) {
    const TRAIL: &[char] = &['.', ',', ';', ':', '!', '?', ')', '"', '\'', '>', ']', '}'];
    const LEAD: &[char] = &['(', '"', '\'', '<', '[', '{'];
    // Leading: trim decoration unless it begins a defang sequence like "[.]".
    while start < end {
        let ch = text[start..end].chars().next().unwrap();
        if LEAD.contains(&ch) && !text[start..end].starts_with("[.]") {
            start += ch.len_utf8();
        } else {
            break;
        }
    }
    // Trailing: trim decoration unless it closes a defang bracket "[.]".
    while start < end {
        let ch = text[start..end].chars().next_back().unwrap();
        if TRAIL.contains(&ch) && !text[start..end].ends_with("[.]") {
            end -= ch.len_utf8();
        } else {
            break;
        }
    }
    (start, end)
}

fn is_url(s: &str) -> bool {
    let refanged = refang(s);
    for scheme in ["http://", "https://", "ftp://", "tcp://"] {
        if let Some(rest) = refanged.strip_prefix(scheme) {
            return !rest.is_empty() && !rest.contains(char::is_whitespace);
        }
    }
    false
}

fn is_email(s: &str) -> bool {
    let refanged = refang(s);
    let Some((local, domain)) = refanged.split_once('@') else {
        return false;
    };
    if local.is_empty() || domain.is_empty() || domain.contains('@') {
        return false;
    }
    local
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || "._%+-".contains(c))
        && domain.contains('.')
        && domain
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || ".-_".contains(c))
}

fn is_registry_key(s: &str) -> bool {
    const HIVES: &[&str] = &[
        "HKEY_LOCAL_MACHINE",
        "HKEY_CURRENT_USER",
        "HKEY_CLASSES_ROOT",
        "HKEY_USERS",
        "HKEY_CURRENT_CONFIG",
        "HKLM",
        "HKCU",
        "HKCR",
        "HKU",
    ];
    HIVES
        .iter()
        .any(|h| s.len() > h.len() && s.starts_with(h) && s.as_bytes()[h.len()] == b'\\')
}

fn is_cve(s: &str) -> bool {
    let up = s.to_ascii_uppercase();
    let Some(rest) = up.strip_prefix("CVE-") else {
        return false;
    };
    let Some((year, num)) = rest.split_once('-') else {
        return false;
    };
    year.len() == 4
        && year.bytes().all(|b| b.is_ascii_digit())
        && num.len() >= 4
        && num.bytes().all(|b| b.is_ascii_digit())
}

fn hash_kind(s: &str) -> Option<EntityKind> {
    if !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    // Require at least one letter so plain long numbers don't match.
    if !s.bytes().any(|b| b.is_ascii_alphabetic()) {
        return None;
    }
    match s.len() {
        32 => Some(EntityKind::HashMd5),
        40 => Some(EntityKind::HashSha1),
        64 => Some(EntityKind::HashSha256),
        _ => None,
    }
}

fn is_ipv4(s: &str) -> bool {
    let refanged = refang(s);
    let mut count = 0;
    for part in refanged.split('.') {
        count += 1;
        if count > 4 || part.is_empty() || part.len() > 3 {
            return false;
        }
        if !part.bytes().all(|b| b.is_ascii_digit()) {
            return false;
        }
        if part.parse::<u32>().map_or(true, |v| v > 255) {
            return false;
        }
    }
    count == 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use EntityKind::*;

    fn classify(s: &str) -> Option<EntityKind> {
        IocMatcher::standard().classify(s)
    }

    #[test]
    fn classifies_each_ioc_kind() {
        assert_eq!(classify("192.168.10.5"), Some(IpAddress));
        assert_eq!(classify("http://evil.example/payload"), Some(Url));
        assert_eq!(classify("admin@corp.example.com"), Some(Email));
        assert_eq!(classify("c2.badguys.ru"), Some(Domain));
        assert_eq!(classify("tasksche.exe"), Some(FileName));
        assert_eq!(classify(r"C:\Windows\system32\drivers\etc"), Some(FilePath));
        assert_eq!(classify("/usr/local/bin/dropper"), Some(FilePath));
        assert_eq!(classify(r"HKLM\Software\Run\Updater"), Some(RegistryKey));
        assert_eq!(classify("d41d8cd98f00b204e9800998ecf8427e"), Some(HashMd5));
        assert_eq!(
            classify("da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            Some(HashSha1)
        );
        assert_eq!(
            classify("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
            Some(HashSha256)
        );
        assert_eq!(classify("CVE-2017-0144"), Some(Vulnerability));
    }

    #[test]
    fn rejects_plain_words_and_numbers() {
        assert_eq!(classify("ransomware"), None);
        assert_eq!(classify("12345678901234567890123456789012"), None); // no hex letters
        assert_eq!(classify("300.1.2.3"), None); // octet out of range
        assert_eq!(classify("1.2.3"), None); // too few octets
        assert_eq!(classify("version"), None);
        assert_eq!(classify("e.g"), None);
    }

    #[test]
    fn handles_defanged_indicators() {
        assert_eq!(classify("hxxp://evil[.]example/x"), Some(Url));
        assert_eq!(classify("c2[.]badguys[.]ru"), Some(Domain));
        assert_eq!(classify("10[.]0[.]0[.]1"), Some(IpAddress));
        assert_eq!(classify("spam[at]evil.ru"), Some(Email));
    }

    #[test]
    fn find_all_locates_spans_with_offsets() {
        let m = IocMatcher::standard();
        let text = "It dropped tasksche.exe, then reached 104.20.1.1.";
        let spans = m.find_all(text);
        assert_eq!(spans.len(), 2, "{spans:?}");
        assert_eq!(spans[0].kind, FileName);
        assert_eq!(&text[spans[0].start..spans[0].end], "tasksche.exe");
        assert_eq!(spans[1].kind, IpAddress);
        assert_eq!(&text[spans[1].start..spans[1].end], "104.20.1.1");
    }

    #[test]
    fn find_all_trims_decoration_but_not_defang_brackets() {
        let m = IocMatcher::standard();
        let text = "(see evil[.]example[.]com).";
        let spans = m.find_all(text);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].text, "evil[.]example[.]com");
        assert_eq!(spans[0].kind, Domain);
    }

    #[test]
    fn filename_vs_domain_priority() {
        // "update.exe" is a file, "update.com" is ambiguous — the historical
        // .com executable extension is not in our list, so the TLD wins.
        assert_eq!(classify("update.exe"), Some(FileName));
        assert_eq!(classify("update.com"), Some(Domain));
    }

    #[test]
    fn email_not_misread_as_domain() {
        assert_eq!(classify("ops@dark.example.net"), Some(Email));
    }

    #[test]
    fn registry_hive_requires_backslash() {
        assert_eq!(classify("HKLM"), None);
        assert_eq!(classify(r"HKCU\Environment"), Some(RegistryKey));
    }
}
