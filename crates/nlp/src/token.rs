//! Offset-preserving tokenizer with IOC protection.
//!
//! Two entry points:
//!
//! - [`tokenize`] — plain tokenizer; splits words, numbers and punctuation.
//! - [`tokenize_protected`] — the paper's IOC-protection pipeline: IOC spans
//!   (found by [`crate::IocMatcher`]) each become a *single* token of kind
//!   [`TokenKind::Ioc`], and only the gaps between them are tokenized
//!   normally. This realises "replacing IOCs with meaningful words ... and
//!   restoring them after the tokenization procedure" without the string
//!   substitution round-trip: the guarantee the paper needs is exactly that
//!   "potential entities are complete tokens", which holds by construction.
//!
//! [`protect_text`] implements the literal placeholder substitution too, for
//! components (like the sentence segmenter ablation in E3) that need a plain
//! string with IOCs masked.

use crate::ioc::IocMatcher;
use kg_ontology::EntityKind;
use serde::{Deserialize, Serialize};

/// The lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// Alphabetic word (may contain interior hyphens/apostrophes).
    Word,
    /// Number (digits, possibly with interior dots/commas).
    Number,
    /// Single punctuation character.
    Punct,
    /// A protected IOC span; carries its detected kind.
    Ioc(EntityKind),
}

/// One token with byte offsets into the original text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Token {
    pub text: String,
    pub start: usize,
    pub end: usize,
    pub kind: TokenKind,
}

impl Token {
    /// Whether this token is a protected IOC.
    pub fn is_ioc(&self) -> bool {
        matches!(self.kind, TokenKind::Ioc(_))
    }

    /// The IOC kind, if this token is a protected IOC.
    pub fn ioc_kind(&self) -> Option<EntityKind> {
        match self.kind {
            TokenKind::Ioc(k) => Some(k),
            _ => None,
        }
    }
}

/// Plain tokenizer. Word chars glue with interior `-` and `'`; digit runs
/// glue with interior `.` and `,` only when flanked by digits; everything
/// else is single-char punctuation. Offsets are byte offsets into `text`.
pub fn tokenize(text: &str) -> Vec<Token> {
    tokenize_range(text, 0, text.len())
}

fn tokenize_range(text: &str, from: usize, to: usize) -> Vec<Token> {
    let mut tokens = Vec::new();
    let s = &text[from..to];
    let mut iter = s.char_indices().peekable();
    while let Some((i, c)) = iter.next() {
        let abs = from + i;
        if c.is_whitespace() {
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            // Word token: letters, digits, interior - ' _
            let mut end = abs + c.len_utf8();
            while let Some(&(j, cj)) = iter.peek() {
                let abs_j = from + j;
                let glue = cj.is_alphanumeric()
                    || cj == '_'
                    || ((cj == '-' || cj == '\'')
                        && next_char_is_alnum(text, abs_j + cj.len_utf8(), to));
                if glue {
                    end = abs_j + cj.len_utf8();
                    iter.next();
                } else {
                    break;
                }
            }
            tokens.push(Token {
                text: text[abs..end].to_owned(),
                start: abs,
                end,
                kind: TokenKind::Word,
            });
        } else if c.is_ascii_digit() {
            // Number token: digits, interior . , : when flanked by digits.
            let mut end = abs + 1;
            while let Some(&(j, cj)) = iter.peek() {
                let abs_j = from + j;
                let glue = cj.is_ascii_digit()
                    || ((cj == '.' || cj == ',' || cj == ':')
                        && next_char_is_digit(text, abs_j + cj.len_utf8(), to));
                if glue {
                    end = abs_j + cj.len_utf8();
                    iter.next();
                } else {
                    break;
                }
            }
            tokens.push(Token {
                text: text[abs..end].to_owned(),
                start: abs,
                end,
                kind: TokenKind::Number,
            });
        } else {
            tokens.push(Token {
                text: c.to_string(),
                start: abs,
                end: abs + c.len_utf8(),
                kind: TokenKind::Punct,
            });
        }
    }
    tokens
}

fn next_char_is_alnum(text: &str, at: usize, to: usize) -> bool {
    at < to
        && text[at..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric())
}

fn next_char_is_digit(text: &str, at: usize, to: usize) -> bool {
    at < to
        && text[at..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit())
}

/// Tokenize with IOC protection: IOC spans become single [`TokenKind::Ioc`]
/// tokens; gaps are tokenized with [`tokenize`]. The result is ordered by
/// offset and non-overlapping.
pub fn tokenize_protected(text: &str, matcher: &IocMatcher) -> Vec<Token> {
    let spans = matcher.find_all(text);
    let mut tokens = Vec::new();
    let mut cursor = 0usize;
    for span in spans {
        if span.start > cursor {
            tokens.extend(tokenize_range(text, cursor, span.start));
        }
        tokens.push(Token {
            text: span.text.clone(),
            start: span.start,
            end: span.end,
            kind: TokenKind::Ioc(span.kind),
        });
        cursor = span.end;
    }
    if cursor < text.len() {
        tokens.extend(tokenize_range(text, cursor, text.len()));
    }
    tokens
}

/// The literal placeholder substitution the paper describes: every IOC is
/// replaced by the word `something`, and a restoration table maps placeholder
/// occurrences (in order) back to the original IOC texts.
pub fn protect_text(text: &str, matcher: &IocMatcher) -> (String, Vec<String>) {
    let spans = matcher.find_all(text);
    let mut out = String::with_capacity(text.len());
    let mut originals = Vec::with_capacity(spans.len());
    let mut cursor = 0usize;
    for span in &spans {
        out.push_str(&text[cursor..span.start]);
        out.push_str("something");
        originals.push(span.text.clone());
        cursor = span.end;
    }
    out.push_str(&text[cursor..]);
    (out, originals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_numbers_punct() {
        let toks = tokenize("Attackers used 2 well-known tools, quickly.");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec![
                "Attackers",
                "used",
                "2",
                "well-known",
                "tools",
                ",",
                "quickly",
                "."
            ]
        );
        assert_eq!(toks[2].kind, TokenKind::Number);
        assert_eq!(toks[3].kind, TokenKind::Word);
        assert_eq!(toks[5].kind, TokenKind::Punct);
    }

    #[test]
    fn offsets_reconstruct_text() {
        let text = "Emotet, again!";
        for t in tokenize(text) {
            assert_eq!(&text[t.start..t.end], t.text);
        }
    }

    #[test]
    fn trailing_hyphen_is_punct() {
        let texts: Vec<String> = tokenize("on-going attack -")
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, vec!["on-going", "attack", "-"]);
    }

    #[test]
    fn protected_tokenization_keeps_iocs_whole() {
        let m = IocMatcher::standard();
        let toks = tokenize_protected("wannacry dropped C:\\Windows\\mssecsvc.exe today.", &m);
        let ioc: Vec<&Token> = toks.iter().filter(|t| t.is_ioc()).collect();
        assert_eq!(ioc.len(), 1);
        assert_eq!(ioc[0].text, "C:\\Windows\\mssecsvc.exe");
        // Gap tokens are ordinary words.
        assert!(toks
            .iter()
            .any(|t| t.text == "wannacry" && t.kind == TokenKind::Word));
        // Offsets still index the original string.
        let text = "wannacry dropped C:\\Windows\\mssecsvc.exe today.";
        for t in &toks {
            assert_eq!(&text[t.start..t.end], t.text);
        }
    }

    #[test]
    fn protect_text_substitutes_and_records() {
        let m = IocMatcher::standard();
        let (masked, originals) = protect_text("beacon to 10.0.0.1 and drop x.exe", &m);
        assert_eq!(masked, "beacon to something and drop something");
        assert_eq!(originals, vec!["10.0.0.1".to_owned(), "x.exe".to_owned()]);
    }

    #[test]
    fn unicode_text_does_not_panic() {
        let m = IocMatcher::standard();
        let text = "Le malware — wannacry – s'étend vite à 10.0.0.1.";
        let toks = tokenize_protected(text, &m);
        for t in &toks {
            assert_eq!(&text[t.start..t.end], t.text);
        }
        assert!(toks.iter().any(|t| t.text == "10.0.0.1"));
    }
}
