//! K-means clustering over word embeddings.
//!
//! The CRF consumes *discrete* features; continuous embedding vectors are
//! discretised into cluster ids (a Brown-cluster-style word-class feature).
//! Lloyd's algorithm with k-means++ seeding, deterministic under a seed.

use crate::embed::Embeddings;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A fitted k-means model mapping words to cluster ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    k: usize,
    dims: usize,
    centroids: Vec<f32>,
    assignment: HashMap<String, usize>,
}

fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeans {
    /// Fit `k` clusters on the embedding matrix. `iters` Lloyd iterations
    /// (early-stops when assignments stabilise).
    pub fn fit(embeddings: &Embeddings, k: usize, iters: usize, seed: u64) -> Self {
        let (matrix, dims) = embeddings.matrix();
        let n = embeddings.vocab_size();
        let k = k.min(n.max(1));
        if n == 0 {
            return KMeans {
                k: 0,
                dims,
                centroids: Vec::new(),
                assignment: HashMap::new(),
            };
        }
        let row = |i: usize| &matrix[i * dims..(i + 1) * dims];

        // k-means++ seeding with a splitmix-style hash sequence.
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut centroids: Vec<f32> = Vec::with_capacity(k * dims);
        let first = (next() % n as u64) as usize;
        centroids.extend_from_slice(row(first));
        let mut dist2: Vec<f32> = (0..n).map(|i| sq_dist(row(i), row(first))).collect();
        while centroids.len() / dims < k {
            let total: f64 = dist2.iter().map(|&d| d as f64).sum();
            let chosen = if total <= f64::EPSILON {
                (next() % n as u64) as usize
            } else {
                let mut target = (next() as f64 / u64::MAX as f64) * total;
                let mut pick = n - 1;
                for (i, &d) in dist2.iter().enumerate() {
                    target -= d as f64;
                    if target <= 0.0 {
                        pick = i;
                        break;
                    }
                }
                pick
            };
            centroids.extend_from_slice(row(chosen));
            let c = &centroids[centroids.len() - dims..];
            let c = c.to_vec();
            for (i, d) in dist2.iter_mut().enumerate() {
                *d = d.min(sq_dist(row(i), &c));
            }
        }

        // Lloyd iterations.
        let mut assign = vec![0usize; n];
        for _ in 0..iters {
            let mut changed = false;
            for (i, slot) in assign.iter_mut().enumerate() {
                let mut best = 0usize;
                let mut best_d = f32::MAX;
                for c in 0..k {
                    let d = sq_dist(row(i), &centroids[c * dims..(c + 1) * dims]);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if *slot != best {
                    *slot = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            let mut sums = vec![0f32; k * dims];
            let mut counts = vec![0usize; k];
            for i in 0..n {
                counts[assign[i]] += 1;
                for d in 0..dims {
                    sums[assign[i] * dims + d] += row(i)[d];
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for d in 0..dims {
                        centroids[c * dims + d] = sums[c * dims + d] / counts[c] as f32;
                    }
                }
            }
        }

        let assignment = embeddings
            .words()
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), assign[i]))
            .collect();
        KMeans {
            k,
            dims,
            centroids,
            assignment,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Cluster id for an in-vocabulary word.
    pub fn cluster_of(&self, word: &str) -> Option<usize> {
        self.assignment.get(word).copied()
    }

    /// Cluster id for an arbitrary vector (nearest centroid).
    pub fn predict(&self, vector: &[f32]) -> Option<usize> {
        if self.k == 0 || vector.len() != self.dims {
            return None;
        }
        (0..self.k).min_by(|&a, &b| {
            let da = sq_dist(vector, &self.centroids[a * self.dims..(a + 1) * self.dims]);
            let db = sq_dist(vector, &self.centroids[b * self.dims..(b + 1) * self.dims]);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed::EmbeddingConfig;

    fn trained() -> Embeddings {
        let mut sents = Vec::new();
        for _ in 0..60 {
            for mal in ["wannacry", "emotet", "notpetya"] {
                sents.push(
                    format!("the {mal} malware encrypted files on the host")
                        .split(' ')
                        .map(str::to_owned)
                        .collect::<Vec<_>>(),
                );
            }
            for city in ["berlin", "paris", "tokyo"] {
                sents.push(
                    format!("analysts met in {city} to compare notes today")
                        .split(' ')
                        .map(str::to_owned)
                        .collect::<Vec<_>>(),
                );
            }
        }
        Embeddings::train(
            &sents,
            &EmbeddingConfig {
                dims: 16,
                epochs: 4,
                ..Default::default()
            },
        )
    }

    #[test]
    fn same_context_words_share_clusters() {
        let emb = trained();
        let km = KMeans::fit(&emb, 6, 30, 7);
        let a = km.cluster_of("wannacry").unwrap();
        let b = km.cluster_of("emotet").unwrap();
        let c = km.cluster_of("berlin").unwrap();
        let d = km.cluster_of("paris").unwrap();
        assert_eq!(a, b, "malware names should co-cluster");
        assert_eq!(c, d, "cities should co-cluster");
        assert_ne!(a, c, "malware and cities should separate");
    }

    #[test]
    fn fit_is_deterministic() {
        let emb = trained();
        let k1 = KMeans::fit(&emb, 5, 20, 42);
        let k2 = KMeans::fit(&emb, 5, 20, 42);
        for w in emb.words() {
            assert_eq!(k1.cluster_of(w), k2.cluster_of(w));
        }
    }

    #[test]
    fn k_larger_than_vocab_is_clamped() {
        let sents: Vec<Vec<String>> = (0..10)
            .map(|_| vec!["alpha".to_owned(), "beta".to_owned()])
            .collect();
        let emb = Embeddings::train(
            &sents,
            &EmbeddingConfig {
                dims: 4,
                ..Default::default()
            },
        );
        let km = KMeans::fit(&emb, 100, 10, 1);
        assert!(km.k() <= emb.vocab_size());
    }

    #[test]
    fn predict_matches_assignment() {
        let emb = trained();
        let km = KMeans::fit(&emb, 4, 30, 9);
        for w in emb.words().iter().take(20) {
            let v = emb.vector(w).unwrap();
            assert_eq!(km.predict(v), km.cluster_of(w), "word {w}");
        }
    }

    #[test]
    fn empty_embeddings_give_empty_model() {
        let emb = Embeddings::train(&Vec::<Vec<String>>::new(), &EmbeddingConfig::default());
        let km = KMeans::fit(&emb, 5, 5, 0);
        assert_eq!(km.k(), 0);
        assert_eq!(km.cluster_of("x"), None);
        assert_eq!(km.predict(&[0.0; 32]), None);
    }
}
