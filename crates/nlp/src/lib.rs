//! The NLP substrate for SecurityKG (paper §2.4).
//!
//! The paper's extraction pipeline depends on a Python NLP stack (tokenizer,
//! sentence segmenter, POS tags, lemmas, word embeddings). This crate rebuilds
//! each of those pieces in pure Rust:
//!
//! - [`ioc`] — IOC detection *before* tokenization, so that "massive nuances
//!   particular to the security context" (dots and underscores inside IOCs)
//!   never confuse the tokenizer or the sentence segmenter. This is the
//!   paper's **IOC protection** mechanism.
//! - [`token`] — tokenizer producing offset-preserving tokens; IOC spans
//!   become single protected tokens.
//! - [`segment`] — sentence segmenter over protected token streams.
//! - [`pos`] — lexicon + suffix-rule part-of-speech tagger.
//! - [`lemma`] — rule-based English lemmatizer with an irregular table.
//! - [`embed`] — skip-gram-with-negative-sampling word embeddings trained on
//!   the crawled corpus (the Mikolov-style features the CRF consumes).
//! - [`cluster`] — k-means over embeddings; cluster ids serve as
//!   discrete word-class features for the CRF.

pub mod cluster;
pub mod embed;
pub mod ioc;
pub mod lemma;
pub mod pos;
pub mod segment;
pub mod token;

pub use cluster::KMeans;
pub use embed::{EmbeddingConfig, Embeddings};
pub use ioc::{IocMatcher, IocSpan};
pub use lemma::lemmatize;
pub use pos::{PosTag, PosTagger};
pub use segment::split_sentences;
pub use token::{tokenize, tokenize_protected, Token, TokenKind};

/// A fully analysed sentence: tokens plus per-token POS tags and lemmas.
///
/// This is the unit the CRF featurizer and the relation extractor consume.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedSentence {
    pub tokens: Vec<Token>,
    pub tags: Vec<PosTag>,
    pub lemmas: Vec<String>,
}

/// Run the whole substrate over a text: protect IOCs, tokenize, split
/// sentences, tag and lemmatize.
pub fn analyze(text: &str, matcher: &IocMatcher, tagger: &PosTagger) -> Vec<AnalyzedSentence> {
    let tokens = tokenize_protected(text, matcher);
    split_sentences(tokens)
        .into_iter()
        .map(|sentence| {
            let tags = tagger.tag(&sentence);
            let lemmas = sentence
                .iter()
                .zip(&tags)
                .map(|(t, &tag)| {
                    let lower = t.text.to_lowercase();
                    match tag {
                        // Verbs validate candidates against the tagger's
                        // lexicon so "used" → "use", not "us".
                        PosTag::Verb | PosTag::Aux => {
                            lemma::lemmatize_validated(&lower, tag, |c| tagger.knows_lemma(c))
                        }
                        _ => lemma::lemmatize(&lower, tag),
                    }
                })
                .collect();
            AnalyzedSentence {
                tokens: sentence,
                tags,
                lemmas,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_protects_iocs_and_splits_sentences() {
        let matcher = IocMatcher::standard();
        let tagger = PosTagger::standard();
        let text = "The wannacry malware dropped mssecsvc.exe on the host. \
                    It then connected to 104.20.1.1 over port 445.";
        let sents = analyze(text, &matcher, &tagger);
        assert_eq!(sents.len(), 2, "{sents:?}");
        // The filename must survive as one token despite its dot.
        assert!(sents[0].tokens.iter().any(|t| t.text == "mssecsvc.exe"));
        assert!(sents[1].tokens.iter().any(|t| t.text == "104.20.1.1"));
        // "dropped" lemmatizes to "drop".
        let drop_idx = sents[0]
            .tokens
            .iter()
            .position(|t| t.text == "dropped")
            .expect("dropped token");
        assert_eq!(sents[0].lemmas[drop_idx], "drop");
        assert_eq!(sents[0].tags[drop_idx], PosTag::Verb);
    }
}
