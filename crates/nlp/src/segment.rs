//! Sentence segmentation over protected token streams.
//!
//! Because segmentation happens *after* IOC protection, a dot inside
//! `mssecsvc.exe` or `10.0.0.1` can never end a sentence — those dots are
//! interior to a single [`crate::TokenKind::Ioc`] token. Only free-standing
//! `.` `!` `?` punctuation tokens are boundary candidates, and common
//! abbreviations are suppressed.

use crate::token::{Token, TokenKind};

/// Abbreviations whose trailing dot does not end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "e.g", "i.e", "etc", "vs", "fig", "mr", "mrs", "dr", "st", "no", "inc", "corp", "ltd",
    "approx", "dept", "est", "jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept", "oct",
    "nov", "dec",
];

/// Split a token stream into sentences.
///
/// A sentence ends at a `.`, `!` or `?` punctuation token unless the previous
/// word is a known abbreviation or a single capital letter (an initial).
/// The terminator token stays with its sentence. Empty sentences are dropped.
pub fn split_sentences(tokens: Vec<Token>) -> Vec<Vec<Token>> {
    let mut sentences = Vec::new();
    let mut current: Vec<Token> = Vec::new();
    for token in tokens {
        let is_terminator =
            token.kind == TokenKind::Punct && matches!(token.text.as_str(), "." | "!" | "?");
        if is_terminator {
            let suppress = current.last().is_some_and(|prev| {
                prev.kind == TokenKind::Word
                    && (is_abbreviation(&prev.text) || is_initial(&prev.text))
            });
            current.push(token);
            if !suppress {
                // Punctuation-only fragments (e.g. "...") are not sentences.
                if current.iter().any(|t| t.kind != TokenKind::Punct) {
                    sentences.push(std::mem::take(&mut current));
                } else {
                    current.clear();
                }
            }
        } else {
            current.push(token);
        }
    }
    if current.iter().any(|t| t.kind != TokenKind::Punct) {
        sentences.push(current);
    }
    sentences
}

fn is_abbreviation(word: &str) -> bool {
    let lower = word.to_ascii_lowercase();
    ABBREVIATIONS.contains(&lower.as_str())
}

fn is_initial(word: &str) -> bool {
    // Single letters are initials ("J. Smith") or spelled abbreviations
    // ("e. g." after tokenization); neither ends a sentence.
    word.chars().count() == 1 && word.chars().next().unwrap().is_alphabetic()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ioc::IocMatcher;
    use crate::token::{tokenize, tokenize_protected};

    fn texts(sents: &[Vec<Token>]) -> Vec<Vec<String>> {
        sents
            .iter()
            .map(|s| s.iter().map(|t| t.text.clone()).collect())
            .collect()
    }

    #[test]
    fn splits_on_terminators() {
        let sents = split_sentences(tokenize("First sentence. Second one! Third?"));
        assert_eq!(sents.len(), 3, "{:?}", texts(&sents));
    }

    #[test]
    fn abbreviations_do_not_split() {
        let sents = split_sentences(tokenize("Tools e.g. mimikatz were used. Done."));
        assert_eq!(sents.len(), 2, "{:?}", texts(&sents));
    }

    #[test]
    fn ioc_dots_do_not_split() {
        let m = IocMatcher::standard();
        let toks = tokenize_protected(
            "The file mssecsvc.exe beaconed to 10.0.0.1 today. Done.",
            &m,
        );
        let sents = split_sentences(toks);
        assert_eq!(sents.len(), 2, "{:?}", texts(&sents));
        assert!(sents[0].iter().any(|t| t.text == "mssecsvc.exe"));
    }

    #[test]
    fn unprotected_tokenizer_would_oversplit() {
        // Demonstrates why IOC protection matters: the file name's dot is a
        // separate punct token without protection, creating a bogus boundary
        // mid-IOC when the next char is capitalised.
        let toks = tokenize("It dropped Updater.Exe today. Done.");
        let sents = split_sentences(toks);
        assert!(sents.len() > 2, "{:?}", texts(&sents));
    }

    #[test]
    fn trailing_text_without_terminator_is_a_sentence() {
        let sents = split_sentences(tokenize("no terminator here"));
        assert_eq!(sents.len(), 1);
    }

    #[test]
    fn empty_input_yields_no_sentences() {
        assert!(split_sentences(tokenize("")).is_empty());
        // Punctuation-only input is dropped too.
        assert!(split_sentences(tokenize("...")).len() <= 1);
    }
}
