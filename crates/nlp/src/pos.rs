//! Part-of-speech tagging.
//!
//! A lexicon-and-rules tagger: closed-class words come from embedded lists,
//! open-class words are resolved by a verb lexicon (seeded with the
//! ontology's relation verbs plus common report vocabulary), inflection
//! analysis, suffix heuristics and finally capitalisation. The tagger is
//! deterministic and needs no training corpus — appropriate because the
//! downstream CRF uses tags only as *features*, not as supervision.

use crate::token::{Token, TokenKind};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The coarse POS tag set (Universal-Dependencies-flavoured).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PosTag {
    Noun,
    ProperNoun,
    Verb,
    Aux,
    Adjective,
    Adverb,
    Determiner,
    Preposition,
    Pronoun,
    Conjunction,
    Number,
    Punctuation,
    /// Protected IOC tokens get their own tag; they behave like proper nouns
    /// syntactically but the CRF benefits from the distinction.
    Ioc,
    Other,
}

impl PosTag {
    /// Short feature string for the CRF featurizer.
    pub fn as_str(self) -> &'static str {
        match self {
            PosTag::Noun => "NOUN",
            PosTag::ProperNoun => "PROPN",
            PosTag::Verb => "VERB",
            PosTag::Aux => "AUX",
            PosTag::Adjective => "ADJ",
            PosTag::Adverb => "ADV",
            PosTag::Determiner => "DET",
            PosTag::Preposition => "ADP",
            PosTag::Pronoun => "PRON",
            PosTag::Conjunction => "CCONJ",
            PosTag::Number => "NUM",
            PosTag::Punctuation => "PUNCT",
            PosTag::Ioc => "IOC",
            PosTag::Other => "X",
        }
    }
}

const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "its", "their", "his", "her", "our",
    "your", "my", "each", "every", "some", "any", "no", "both", "all", "several", "many",
    "multiple", "various", "numerous", "other", "another", "same",
];

const PREPOSITIONS: &[&str] = &[
    "in", "on", "at", "to", "from", "with", "without", "by", "for", "of", "into", "onto", "over",
    "under", "through", "via", "across", "against", "during", "after", "before", "between",
    "within", "upon", "inside", "outside", "toward", "towards", "among", "per", "as", "about",
    "off",
];

const PRONOUNS: &[&str] = &[
    "it",
    "they",
    "he",
    "she",
    "we",
    "you",
    "i",
    "them",
    "him",
    "us",
    "itself",
    "themselves",
    "which",
    "who",
    "whom",
    "whose",
    "what",
    "something",
    "anything",
    "nothing",
];

const CONJUNCTIONS: &[&str] = &[
    "and",
    "or",
    "but",
    "nor",
    "so",
    "yet",
    "then",
    "while",
    "because",
    "although",
    "if",
    "when",
    "once",
    "where",
    "that",
    "however",
    "therefore",
];

const AUXILIARIES: &[&str] = &[
    "is", "are", "was", "were", "be", "been", "being", "am", "has", "have", "had", "having", "do",
    "does", "did", "will", "would", "can", "could", "may", "might", "shall", "should", "must",
];

const COMMON_ADVERBS: &[&str] = &[
    "then",
    "also",
    "later",
    "subsequently",
    "first",
    "next",
    "finally",
    "additionally",
    "furthermore",
    "moreover",
    "often",
    "typically",
    "usually",
    "silently",
    "quickly",
    "remotely",
    "immediately",
    "repeatedly",
    "actively",
    "initially",
    "here",
    "there",
    "not",
    "never",
    "already",
    "again",
    "still",
    "even",
    "further",
];

/// Verbs commonly seen in CTI reports (beyond the ontology verbs), in lemma
/// form. Inflected forms are recognised by stripping -s/-ed/-ing.
const CTI_VERBS: &[&str] = &[
    "observe",
    "detect",
    "report",
    "analyze",
    "discover",
    "identify",
    "find",
    "see",
    "show",
    "reveal",
    "contain",
    "include",
    "begin",
    "start",
    "continue",
    "stop",
    "attempt",
    "try",
    "appear",
    "spread",
    "infect",
    "encrypt",
    "decrypt",
    "scan",
    "exploit",
    "compromise",
    "install",
    "uninstall",
    "copy",
    "move",
    "hide",
    "obfuscate",
    "pack",
    "unpack",
    "inject",
    "exfiltrate",
    "capture",
    "log",
    "record",
    "monitor",
    "disable",
    "enable",
    "bypass",
    "escalate",
    "gain",
    "obtain",
    "achieve",
    "establish",
    "maintain",
    "receive",
    "request",
    "respond",
    "communicate",
    "call",
    "allow",
    "make",
    "take",
    "perform",
    "conduct",
    "carry",
    "distribute",
    "propagate",
    "spawn",
    "terminate",
    "check",
    "verify",
    "wait",
    "sleep",
    "beacon",
    "masquerade",
    "impersonate",
    "become",
    "remain",
    "emerge",
    "evolve",
    "belong",
];

/// The deterministic POS tagger.
#[derive(Debug, Clone)]
pub struct PosTagger {
    verbs: HashSet<String>,
}

impl PosTagger {
    /// Build the standard tagger: CTI verbs plus every ontology relation verb.
    pub fn standard() -> Self {
        let mut verbs: HashSet<String> = CTI_VERBS.iter().map(|s| (*s).to_owned()).collect();
        for kind in kg_ontology::RelationKind::ALL {
            for lemma in kind.verb_lemmas() {
                verbs.insert((*lemma).to_owned());
            }
        }
        PosTagger { verbs }
    }

    /// Add domain verbs at runtime (extensibility hook).
    pub fn add_verb(&mut self, lemma: &str) {
        self.verbs.insert(lemma.to_ascii_lowercase());
    }

    /// Whether `lemma` (lowercase) is in the verb lexicon exactly.
    pub fn knows_lemma(&self, lemma: &str) -> bool {
        self.verbs.contains(lemma)
    }

    /// Whether `word` (lowercase) is a known verb lemma or an inflection of
    /// one.
    pub fn is_verb_form(&self, word: &str) -> bool {
        if self.verbs.contains(word) {
            return true;
        }
        crate::lemma::verb_lemma_candidates(word)
            .into_iter()
            .any(|cand| self.verbs.contains(&cand))
    }

    /// Tag one sentence of tokens.
    pub fn tag(&self, tokens: &[Token]) -> Vec<PosTag> {
        let mut tags = Vec::with_capacity(tokens.len());
        for (i, token) in tokens.iter().enumerate() {
            let tag = match token.kind {
                TokenKind::Ioc(_) => PosTag::Ioc,
                TokenKind::Number => PosTag::Number,
                TokenKind::Punct => PosTag::Punctuation,
                TokenKind::Word => self.tag_word(tokens, &tags, i),
            };
            tags.push(tag);
        }
        tags
    }

    fn tag_word(&self, tokens: &[Token], prev_tags: &[PosTag], i: usize) -> PosTag {
        let word = tokens[i].text.as_str();
        let lower = word.to_ascii_lowercase();
        let lower = lower.as_str();

        if DETERMINERS.contains(&lower) {
            return PosTag::Determiner;
        }
        if AUXILIARIES.contains(&lower) {
            return PosTag::Aux;
        }
        if PREPOSITIONS.contains(&lower) {
            // "to <verb>" is an infinitive marker; keep ADP — the relation
            // extractor treats ADP uniformly.
            return PosTag::Preposition;
        }
        if PRONOUNS.contains(&lower) {
            return PosTag::Pronoun;
        }
        if CONJUNCTIONS.contains(&lower) {
            return PosTag::Conjunction;
        }
        if COMMON_ADVERBS.contains(&lower) || (lower.ends_with("ly") && lower.len() > 4) {
            return PosTag::Adverb;
        }

        let prev_tag = if i == 0 {
            None
        } else {
            prev_tags.get(i - 1).copied()
        };
        if self.is_verb_form(lower) {
            // A known verb form is a verb unless a determiner/adjective
            // immediately precedes it ("the drop", "a scan") — then it is the
            // nominal use.
            let nominal = matches!(
                prev_tag,
                Some(PosTag::Determiner) | Some(PosTag::Adjective) | Some(PosTag::Number)
            );
            if !nominal {
                // Gerunds right after a preposition act verbally ("after
                // encrypting"), keep VERB for them too.
                return PosTag::Verb;
            }
        }

        // Suffix heuristics for open-class words.
        if ["ous", "ive", "ful", "less", "able", "ible"]
            .iter()
            .any(|s| lower.ends_with(s))
            || (lower.ends_with("al") && lower.len() > 4)
            || (lower.ends_with("ic") && lower.len() > 4)
        {
            return PosTag::Adjective;
        }
        if [
            "tion", "sion", "ment", "ness", "ity", "ance", "ence", "ware", "tor", "ers",
        ]
        .iter()
        .any(|s| lower.ends_with(s))
        {
            return PosTag::Noun;
        }
        if lower.ends_with("ed") && lower.len() > 3 {
            // Unknown -ed form: participle/adjective position heuristic.
            return if matches!(prev_tag, Some(PosTag::Aux)) {
                PosTag::Verb
            } else {
                PosTag::Adjective
            };
        }
        if lower.ends_with("ing") && lower.len() > 4 {
            return if matches!(prev_tag, Some(PosTag::Determiner)) {
                PosTag::Noun
            } else {
                PosTag::Verb
            };
        }

        // Capitalised mid-sentence → proper noun.
        let first_upper = word.chars().next().is_some_and(char::is_uppercase);
        if first_upper && i > 0 {
            return PosTag::ProperNoun;
        }
        PosTag::Noun
    }
}

impl Default for PosTagger {
    fn default() -> Self {
        PosTagger::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ioc::IocMatcher;
    use crate::token::{tokenize, tokenize_protected};

    fn tag_text(text: &str) -> Vec<(String, PosTag)> {
        let tagger = PosTagger::standard();
        let toks = tokenize_protected(text, &IocMatcher::standard());
        let tags = tagger.tag(&toks);
        toks.into_iter().map(|t| t.text).zip(tags).collect()
    }

    fn tag_of(pairs: &[(String, PosTag)], word: &str) -> PosTag {
        pairs
            .iter()
            .find(|(w, _)| w == word)
            .unwrap_or_else(|| panic!("{word} missing"))
            .1
    }

    #[test]
    fn tags_a_typical_cti_sentence() {
        let pairs = tag_text("The wannacry malware quickly dropped mssecsvc.exe on the host.");
        assert_eq!(tag_of(&pairs, "The"), PosTag::Determiner);
        assert_eq!(tag_of(&pairs, "malware"), PosTag::Noun);
        assert_eq!(tag_of(&pairs, "quickly"), PosTag::Adverb);
        assert_eq!(tag_of(&pairs, "dropped"), PosTag::Verb);
        assert_eq!(tag_of(&pairs, "mssecsvc.exe"), PosTag::Ioc);
        assert_eq!(tag_of(&pairs, "on"), PosTag::Preposition);
    }

    #[test]
    fn verb_noun_disambiguation_by_determiner() {
        let pairs = tag_text("The drop was observed. Attackers drop files.");
        // First "drop" follows a determiner → nominal; second is verbal.
        let drops: Vec<PosTag> = pairs
            .iter()
            .filter(|(w, _)| w == "drop")
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(drops, vec![PosTag::Noun, PosTag::Verb]);
    }

    #[test]
    fn auxiliaries_and_passives() {
        let pairs = tag_text("The file was encrypted by the malware.");
        assert_eq!(tag_of(&pairs, "was"), PosTag::Aux);
        assert_eq!(tag_of(&pairs, "encrypted"), PosTag::Verb);
        assert_eq!(tag_of(&pairs, "by"), PosTag::Preposition);
    }

    #[test]
    fn proper_noun_mid_sentence() {
        let tagger = PosTagger::standard();
        let toks = tokenize("the Lazarus group");
        let tags = tagger.tag(&toks);
        assert_eq!(tags[1], PosTag::ProperNoun);
    }

    #[test]
    fn numbers_and_punctuation() {
        let pairs = tag_text("It scanned 445 ports, repeatedly.");
        assert_eq!(tag_of(&pairs, "445"), PosTag::Number);
        assert_eq!(tag_of(&pairs, ","), PosTag::Punctuation);
        assert_eq!(tag_of(&pairs, "repeatedly"), PosTag::Adverb);
    }

    #[test]
    fn added_verbs_are_recognised() {
        let mut tagger = PosTagger::standard();
        assert!(!tagger.is_verb_form("defenestrate"));
        tagger.add_verb("defenestrate");
        assert!(tagger.is_verb_form("defenestrates"));
        assert!(tagger.is_verb_form("defenestrated"));
        assert!(tagger.is_verb_form("defenestrating"));
    }
}
