//! Word embeddings: skip-gram with negative sampling (SGNS), after Mikolov
//! et al. — the embedding features the paper's CRF consumes.
//!
//! The trainer is deliberately small-scale: the corpus is the crawled report
//! text, vocabularies are tens of thousands of types at most, and the CRF
//! only needs coarse distributional signal (it discretises the vectors via
//! k-means, see [`crate::cluster`]). Determinism: all randomness flows from
//! one `u64` seed through a local xorshift generator, so training is
//! reproducible across runs and platforms.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddingConfig {
    /// Vector dimensionality.
    pub dims: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Passes over the corpus.
    pub epochs: usize,
    /// Initial learning rate (decays linearly to 10%).
    pub lr: f32,
    /// Minimum token count for vocabulary inclusion.
    pub min_count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        EmbeddingConfig {
            dims: 32,
            window: 4,
            negatives: 5,
            epochs: 3,
            lr: 0.05,
            min_count: 2,
            seed: 0x5ec0_41f9,
        }
    }
}

/// Trained word embeddings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embeddings {
    dims: usize,
    vocab: HashMap<String, usize>,
    words: Vec<String>,
    /// Row-major `words.len() × dims` input vectors.
    vectors: Vec<f32>,
}

/// Minimal xorshift64* RNG — deterministic, dependency-free, fast.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

fn sigmoid(x: f32) -> f32 {
    if x > 8.0 {
        1.0
    } else if x < -8.0 {
        0.0
    } else {
        1.0 / (1.0 + (-x).exp())
    }
}

impl Embeddings {
    /// Train SGNS on a corpus of sentences (each a slice of lowercase
    /// tokens).
    pub fn train<S: AsRef<str>>(sentences: &[Vec<S>], config: &EmbeddingConfig) -> Self {
        // 1. Vocabulary.
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for sent in sentences {
            for tok in sent {
                *counts.entry(tok.as_ref()).or_insert(0) += 1;
            }
        }
        let mut words: Vec<(&str, usize)> = counts
            .iter()
            .filter(|(_, &c)| c >= config.min_count)
            .map(|(&w, &c)| (w, c))
            .collect();
        // Deterministic order: by count desc, then lexicographic.
        words.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let vocab: HashMap<String, usize> = words
            .iter()
            .enumerate()
            .map(|(i, (w, _))| ((*w).to_owned(), i))
            .collect();
        let v = words.len();
        let dims = config.dims;

        // 2. Negative-sampling table (unigram^0.75).
        let mut neg_table = Vec::with_capacity(1 << 16);
        if v > 0 {
            let total: f64 = words.iter().map(|(_, c)| (*c as f64).powf(0.75)).sum();
            for (i, (_, c)) in words.iter().enumerate() {
                let share = ((*c as f64).powf(0.75) / total * (1 << 16) as f64).ceil() as usize;
                neg_table.extend(std::iter::repeat_n(i, share.max(1)));
            }
        }

        // 3. Init.
        let mut rng = XorShift::new(config.seed);
        let mut input = vec![0f32; v * dims];
        for x in &mut input {
            *x = (rng.next_f32() - 0.5) / dims as f32;
        }
        let mut output = vec![0f32; v * dims];

        // 4. Encode corpus as ids once.
        let encoded: Vec<Vec<usize>> = sentences
            .iter()
            .map(|s| {
                s.iter()
                    .filter_map(|t| vocab.get(t.as_ref()).copied())
                    .collect()
            })
            .collect();
        let total_tokens: usize = encoded.iter().map(Vec::len).sum();
        let total_steps = (total_tokens * config.epochs).max(1);
        let mut step = 0usize;

        // 5. SGD.
        let mut grad = vec![0f32; dims];
        for _epoch in 0..config.epochs {
            for sent in &encoded {
                for (pos, &center) in sent.iter().enumerate() {
                    let lr = config.lr * (1.0 - 0.9 * step as f32 / total_steps as f32).max(0.1);
                    step += 1;
                    let window = 1 + rng.below(config.window);
                    let lo = pos.saturating_sub(window);
                    let hi = (pos + window + 1).min(sent.len());
                    #[allow(clippy::needless_range_loop)]
                    for ctx_pos in lo..hi {
                        if ctx_pos == pos {
                            continue;
                        }
                        let context = sent[ctx_pos];
                        grad.iter_mut().for_each(|g| *g = 0.0);
                        let in_row = &input[center * dims..(center + 1) * dims].to_vec();
                        // Positive pair + negatives.
                        for k in 0..=config.negatives {
                            let (target, label) = if k == 0 {
                                (context, 1.0f32)
                            } else {
                                (neg_table[rng.below(neg_table.len())], 0.0f32)
                            };
                            if k > 0 && target == context {
                                continue;
                            }
                            let out_row = &mut output[target * dims..(target + 1) * dims];
                            let dot: f32 =
                                in_row.iter().zip(out_row.iter()).map(|(a, b)| a * b).sum();
                            let g = (label - sigmoid(dot)) * lr;
                            for d in 0..dims {
                                grad[d] += g * out_row[d];
                                out_row[d] += g * in_row[d];
                            }
                        }
                        let in_row = &mut input[center * dims..(center + 1) * dims];
                        for d in 0..dims {
                            in_row[d] += grad[d];
                        }
                    }
                }
            }
        }

        Embeddings {
            dims,
            vocab,
            words: words.into_iter().map(|(w, _)| w.to_owned()).collect(),
            vectors: input,
        }
    }

    /// Vector dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.words.len()
    }

    /// The vector for `word`, if in vocabulary.
    pub fn vector(&self, word: &str) -> Option<&[f32]> {
        self.vocab
            .get(word)
            .map(|&i| &self.vectors[i * self.dims..(i + 1) * self.dims])
    }

    /// Vocabulary id for `word`.
    pub fn word_id(&self, word: &str) -> Option<usize> {
        self.vocab.get(word).copied()
    }

    /// The word list, most frequent first.
    pub fn words(&self) -> &[String] {
        &self.words
    }

    /// Raw vector matrix, row-major.
    pub fn matrix(&self) -> (&[f32], usize) {
        (&self.vectors, self.dims)
    }

    /// Cosine similarity between two in-vocabulary words.
    pub fn cosine(&self, a: &str, b: &str) -> Option<f32> {
        let va = self.vector(a)?;
        let vb = self.vector(b)?;
        Some(cosine(va, vb))
    }

    /// The `k` nearest vocabulary words to `word` by cosine similarity.
    pub fn nearest(&self, word: &str, k: usize) -> Vec<(String, f32)> {
        let Some(target) = self.vector(word) else {
            return Vec::new();
        };
        let target = target.to_vec();
        let mut scored: Vec<(usize, f32)> = (0..self.words.len())
            .filter(|&i| self.words[i] != word)
            .map(|i| {
                let row = &self.vectors[i * self.dims..(i + 1) * self.dims];
                (i, cosine(&target, row))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
            .into_iter()
            .map(|(i, s)| (self.words[i].clone(), s))
            .collect()
    }
}

/// Cosine similarity between equal-length vectors (0 when either is zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy corpus where "wannacry"/"emotet" share contexts and
    /// "berlin"/"paris" share different contexts.
    fn toy_corpus() -> Vec<Vec<String>> {
        let mut sents = Vec::new();
        for _ in 0..60 {
            for mal in ["wannacry", "emotet", "notpetya"] {
                sents.push(
                    format!("the {mal} malware encrypted files on the host")
                        .split(' ')
                        .map(str::to_owned)
                        .collect(),
                );
            }
            for city in ["berlin", "paris", "tokyo"] {
                sents.push(
                    format!("analysts met in {city} to compare notes today")
                        .split(' ')
                        .map(str::to_owned)
                        .collect(),
                );
            }
        }
        sents
    }

    fn small_config() -> EmbeddingConfig {
        EmbeddingConfig {
            dims: 16,
            epochs: 4,
            ..EmbeddingConfig::default()
        }
    }

    #[test]
    fn training_separates_context_classes() {
        let emb = Embeddings::train(&toy_corpus(), &small_config());
        let within = emb.cosine("wannacry", "emotet").unwrap();
        let across = emb.cosine("wannacry", "berlin").unwrap();
        assert!(
            within > across,
            "within-class {within} should exceed cross-class {across}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let a = Embeddings::train(&toy_corpus(), &small_config());
        let b = Embeddings::train(&toy_corpus(), &small_config());
        assert_eq!(a.vector("wannacry"), b.vector("wannacry"));
    }

    #[test]
    fn min_count_filters_rare_words() {
        let mut corpus = toy_corpus();
        corpus.push(vec!["hapaxlegomenon".to_owned()]);
        let emb = Embeddings::train(&corpus, &small_config());
        assert!(emb.vector("hapaxlegomenon").is_none());
        assert!(emb.vector("malware").is_some());
    }

    #[test]
    fn nearest_returns_k_sorted() {
        let emb = Embeddings::train(&toy_corpus(), &small_config());
        let near = emb.nearest("wannacry", 3);
        assert_eq!(near.len(), 3);
        assert!(near[0].1 >= near[1].1 && near[1].1 >= near[2].1);
    }

    #[test]
    fn empty_corpus_is_fine() {
        let emb = Embeddings::train(&Vec::<Vec<String>>::new(), &small_config());
        assert_eq!(emb.vocab_size(), 0);
        assert!(emb.vector("x").is_none());
        assert!(emb.nearest("x", 5).is_empty());
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }
}
