//! Rule-based English lemmatizer.
//!
//! Irregular forms come from an embedded table; regular inflections are
//! stripped by suffix rules that generate candidate lemmas (handling
//! consonant doubling, e-insertion and y→ie alternation) which callers can
//! validate against a lexicon — [`crate::PosTagger::is_verb_form`] does
//! exactly that for verbs.

use crate::pos::PosTag;

/// Irregular verb forms → lemma.
const IRREGULAR_VERBS: &[(&str, &str)] = &[
    ("was", "be"),
    ("were", "be"),
    ("been", "be"),
    ("is", "be"),
    ("are", "be"),
    ("am", "be"),
    ("being", "be"),
    ("has", "have"),
    ("had", "have"),
    ("having", "have"),
    ("did", "do"),
    ("does", "do"),
    ("done", "do"),
    ("ran", "run"),
    ("run", "run"),
    ("sent", "send"),
    ("wrote", "write"),
    ("written", "write"),
    ("stole", "steal"),
    ("stolen", "steal"),
    ("spread", "spread"),
    ("hid", "hide"),
    ("hidden", "hide"),
    ("began", "begin"),
    ("begun", "begin"),
    ("took", "take"),
    ("taken", "take"),
    ("made", "make"),
    ("saw", "see"),
    ("seen", "see"),
    ("found", "find"),
    ("got", "get"),
    ("gotten", "get"),
    ("came", "come"),
    ("went", "go"),
    ("gone", "go"),
    ("became", "become"),
    ("grew", "grow"),
    ("grown", "grow"),
    ("left", "leave"),
    ("built", "build"),
    ("brought", "bring"),
    ("caught", "catch"),
    ("held", "hold"),
    ("kept", "keep"),
    ("led", "lead"),
    ("lost", "lose"),
    ("met", "meet"),
    ("paid", "pay"),
    ("put", "put"),
    ("read", "read"),
    ("said", "say"),
    ("sold", "sell"),
    ("set", "set"),
    ("shut", "shut"),
    ("sat", "sit"),
    ("spoke", "speak"),
    ("spoken", "speak"),
    ("spent", "spend"),
    ("stood", "stand"),
    ("struck", "strike"),
    ("thought", "think"),
    ("told", "tell"),
    ("understood", "understand"),
    ("woke", "wake"),
    ("won", "win"),
    ("drew", "draw"),
    ("drawn", "draw"),
];

/// Irregular noun plurals → singular.
const IRREGULAR_NOUNS: &[(&str, &str)] = &[
    ("children", "child"),
    ("men", "man"),
    ("women", "woman"),
    ("feet", "foot"),
    ("teeth", "tooth"),
    ("mice", "mouse"),
    ("people", "person"),
    ("indices", "index"),
    ("matrices", "matrix"),
    ("vertices", "vertex"),
    ("analyses", "analysis"),
    ("viruses", "virus"),
    ("processes", "process"),
    ("addresses", "address"),
    ("accesses", "access"),
    ("botnets", "botnet"),
];

/// Words that look inflected but are not ("ransomware" is not "ransomwar" +
/// e, "across" is not a plural).
const NON_INFLECTED: &[&str] = &[
    "across",
    "its",
    "this",
    "his",
    "was",
    "dangerous",
    "malicious",
    "previous",
    "various",
    "virus",
    "analysis",
    "always",
    "perhaps",
    "ransomware",
    "malware",
    "spyware",
    "adware",
    "less",
    "process",
    "access",
    "address",
    "business",
    "campaigns",
];

/// Candidate lemmas for a possibly-inflected verb form, best first.
///
/// `dropped` → `["dropp", "drop", "droppe"]`-style candidates are *not*
/// produced blindly: each rule applies its own structural conditions, so the
/// usual output is 1–3 well-formed candidates (`drop`, `droppe`).
pub fn verb_lemma_candidates(word: &str) -> Vec<String> {
    let mut out = Vec::new();
    let n = word.len();
    if let Some(lemma) = lookup(IRREGULAR_VERBS, word) {
        out.push(lemma.to_owned());
        return out;
    }
    if word.ends_with("ies") && n > 4 {
        out.push(format!("{}y", &word[..n - 3])); // copies → copy
    }
    if word.ends_with("es") && n > 3 {
        out.push(word[..n - 2].to_owned()); // reaches → reach
        out.push(word[..n - 1].to_owned()); // uses → use
    } else if word.ends_with('s') && !word.ends_with("ss") && n > 2 {
        out.push(word[..n - 1].to_owned()); // drops → drop
    }
    if word.ends_with("ied") && n > 4 {
        out.push(format!("{}y", &word[..n - 3])); // copied → copy
    }
    if word.ends_with("ed") && n > 3 {
        let stem = &word[..n - 2];
        if has_doubled_final_consonant(stem) {
            out.push(stem[..stem.len() - 1].to_owned()); // dropped → drop
        }
        out.push(stem.to_owned()); // encrypted → encrypt
        out.push(format!("{stem}e")); // used → use
    }
    if word.ends_with("ing") && n > 4 {
        let stem = &word[..n - 3];
        if has_doubled_final_consonant(stem) {
            out.push(stem[..stem.len() - 1].to_owned()); // dropping → drop
        }
        out.push(stem.to_owned()); // encrypting → encrypt
        out.push(format!("{stem}e")); // using → use
    }
    out
}

/// Candidate lemmas for a possibly-plural noun, best first.
pub fn noun_lemma_candidates(word: &str) -> Vec<String> {
    let mut out = Vec::new();
    let n = word.len();
    if let Some(lemma) = lookup(IRREGULAR_NOUNS, word) {
        out.push(lemma.to_owned());
        return out;
    }
    if word.ends_with("ies") && n > 4 {
        out.push(format!("{}y", &word[..n - 3]));
    }
    if ["ches", "shes", "xes", "zes", "sses"]
        .iter()
        .any(|s| word.ends_with(s))
    {
        out.push(word[..n - 2].to_owned());
    } else if word.ends_with('s') && !word.ends_with("ss") && n > 2 {
        out.push(word[..n - 1].to_owned());
    }
    out
}

fn has_doubled_final_consonant(stem: &str) -> bool {
    let bytes = stem.as_bytes();
    if bytes.len() < 2 {
        return false;
    }
    let a = bytes[bytes.len() - 1];
    let b = bytes[bytes.len() - 2];
    a == b && a.is_ascii_alphabetic() && !b"aeiou".contains(&a)
}

fn lookup(table: &'static [(&'static str, &'static str)], word: &str) -> Option<&'static str> {
    table.iter().find(|(w, _)| *w == word).map(|(_, l)| *l)
}

/// Lemmatize `word` (must already be lowercase) given its POS tag.
///
/// Verbs and nouns get inflection stripping; other classes pass through
/// unchanged. When several candidates exist, the first structurally valid
/// one wins; the tagger's lexicon-validated path ([`crate::PosTagger`])
/// should be preferred when the caller has a tagger at hand.
pub fn lemmatize(word: &str, tag: PosTag) -> String {
    if NON_INFLECTED.contains(&word) && !matches!(tag, PosTag::Verb | PosTag::Aux) {
        return word.to_owned();
    }
    match tag {
        PosTag::Verb | PosTag::Aux => {
            if NON_INFLECTED.contains(&word) && lookup(IRREGULAR_VERBS, word).is_none() {
                return word.to_owned();
            }
            verb_lemma_candidates(word)
                .into_iter()
                .next()
                .unwrap_or_else(|| word.to_owned())
        }
        PosTag::Noun | PosTag::ProperNoun => noun_lemma_candidates(word)
            .into_iter()
            .next()
            .unwrap_or_else(|| word.to_owned()),
        _ => word.to_owned(),
    }
}

/// Lemmatize against a validating predicate: the first candidate accepted by
/// `is_known` wins, then the plain first candidate, then the word itself.
pub fn lemmatize_validated(word: &str, tag: PosTag, is_known: impl Fn(&str) -> bool) -> String {
    let candidates = match tag {
        PosTag::Verb | PosTag::Aux => verb_lemma_candidates(word),
        PosTag::Noun | PosTag::ProperNoun => noun_lemma_candidates(word),
        _ => Vec::new(),
    };
    if let Some(valid) = candidates.iter().find(|c| is_known(c)) {
        return valid.clone();
    }
    candidates
        .into_iter()
        .next()
        .unwrap_or_else(|| word.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_verb_inflections() {
        assert_eq!(lemmatize("drops", PosTag::Verb), "drop");
        assert_eq!(lemmatize("dropped", PosTag::Verb), "drop");
        assert_eq!(lemmatize("dropping", PosTag::Verb), "drop");
        assert_eq!(lemmatize("encrypts", PosTag::Verb), "encrypt");
        assert_eq!(lemmatize("encrypted", PosTag::Verb), "encrypt");
        assert_eq!(lemmatize("reaches", PosTag::Verb), "reach");
        assert_eq!(lemmatize("copies", PosTag::Verb), "copy");
        assert_eq!(lemmatize("copied", PosTag::Verb), "copy");
    }

    #[test]
    fn e_insertion_with_validation() {
        // Without a lexicon the first candidate for "used" is "us"; with
        // validation the known verb "use" wins.
        let known = |w: &str| ["use", "drop", "beacon"].contains(&w);
        assert_eq!(lemmatize_validated("used", PosTag::Verb, known), "use");
        assert_eq!(lemmatize_validated("using", PosTag::Verb, known), "use");
        assert_eq!(
            lemmatize_validated("beaconed", PosTag::Verb, known),
            "beacon"
        );
    }

    #[test]
    fn irregular_verbs() {
        assert_eq!(lemmatize("was", PosTag::Aux), "be");
        assert_eq!(lemmatize("stolen", PosTag::Verb), "steal");
        assert_eq!(lemmatize("sent", PosTag::Verb), "send");
        assert_eq!(lemmatize("spread", PosTag::Verb), "spread");
    }

    #[test]
    fn noun_plurals() {
        assert_eq!(lemmatize("files", PosTag::Noun), "file");
        assert_eq!(lemmatize("patches", PosTag::Noun), "patch");
        assert_eq!(lemmatize("registries", PosTag::Noun), "registry");
        assert_eq!(lemmatize("processes", PosTag::Noun), "process");
        assert_eq!(lemmatize("viruses", PosTag::Noun), "virus");
    }

    #[test]
    fn non_inflected_words_pass_through() {
        assert_eq!(lemmatize("ransomware", PosTag::Noun), "ransomware");
        assert_eq!(lemmatize("analysis", PosTag::Noun), "analysis");
        assert_eq!(lemmatize("malicious", PosTag::Adjective), "malicious");
        assert_eq!(lemmatize("across", PosTag::Preposition), "across");
    }

    #[test]
    fn other_classes_pass_through() {
        assert_eq!(lemmatize("quickly", PosTag::Adverb), "quickly");
        assert_eq!(lemmatize("the", PosTag::Determiner), "the");
    }

    #[test]
    fn doubled_consonant_detection() {
        assert!(has_doubled_final_consonant("dropp"));
        assert!(!has_doubled_final_consonant("encrypt"));
        assert!(!has_doubled_final_consonant("see")); // vowels don't count
    }
}
