//! Syscall-boundary fault injection and the hooked filesystem facade.
//!
//! Every durability-relevant operation (append, fsync, directory fsync,
//! rename, remove, create) funnels through [`Vfs`]. Without a hook the
//! facade is a zero-cost passthrough to `std::fs`. With a [`FaultHook`]
//! attached it additionally:
//!
//! - records the exact order operations were issued in, so a test can prove
//!   the write→sync→manifest→sync barrier ordering (the sync-counting audit
//!   the journal historically lacked);
//! - can inject a crash *before* operation N fires, modelling a process
//!   kill between any two syscalls — the kill-after-every-syscall-boundary
//!   chaos harness sweeps N across a whole run;
//! - can leave a torn half-write behind on the doomed append, modelling a
//!   mid-write power cut.

use crate::format::PersistError;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};

fn name_of(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// One recorded I/O operation (paths reduced to file names — hooks compare
/// shapes, not absolute directories).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoOp {
    Create { file: String },
    Write { file: String, bytes: usize },
    SyncFile { file: String },
    SyncDir { dir: String },
    Rename { from: String, to: String },
    Remove { file: String },
}

impl IoOp {
    /// The file name this op targets (rename reports the destination).
    pub fn target(&self) -> &str {
        match self {
            IoOp::Create { file }
            | IoOp::Write { file, .. }
            | IoOp::SyncFile { file }
            | IoOp::Remove { file } => file,
            IoOp::SyncDir { dir } => dir,
            IoOp::Rename { to, .. } => to,
        }
    }
}

#[derive(Debug, Default)]
struct HookState {
    ops: Vec<IoOp>,
    ops_done: u64,
    kill_after: Option<u64>,
    torn_writes: bool,
}

/// Shared, cloneable fault hook. Attach the same hook to every component of
/// a durable run (journal + segment store) so operation indices count one
/// global sequence.
#[derive(Debug, Clone, Default)]
pub struct FaultHook {
    inner: Arc<Mutex<HookState>>,
}

impl FaultHook {
    pub fn new() -> Self {
        FaultHook::default()
    }

    /// Arm an injected crash: the operation that would be I/O op number
    /// `ops` (0-based over the hook's lifetime) fails with
    /// [`PersistError::InjectedCrash`] instead of executing. With `torn`,
    /// a doomed *append* first writes half its bytes — the torn tail a real
    /// mid-write crash leaves.
    pub fn arm_kill_after(&self, ops: u64, torn: bool) {
        let mut state = self.inner.lock().unwrap();
        state.kill_after = Some(ops);
        state.torn_writes = torn;
    }

    /// Disarm any pending crash point.
    pub fn disarm(&self) {
        self.inner.lock().unwrap().kill_after = None;
    }

    /// Operations executed so far.
    pub fn ops_done(&self) -> u64 {
        self.inner.lock().unwrap().ops_done
    }

    /// The recorded operation log, in issue order.
    pub fn log(&self) -> Vec<IoOp> {
        self.inner.lock().unwrap().ops.clone()
    }

    /// Clear the recorded log (counters keep running).
    pub fn clear_log(&self) {
        self.inner.lock().unwrap().ops.clear();
    }

    /// Account one operation. `Ok(torn)` means proceed (`torn` asks an
    /// append to half-write first and then report the crash).
    fn enter(&self, op: IoOp) -> Result<bool, PersistError> {
        let mut state = self.inner.lock().unwrap();
        if let Some(limit) = state.kill_after {
            if state.ops_done >= limit {
                let torn = state.torn_writes && matches!(op, IoOp::Write { .. });
                if !torn {
                    return Err(PersistError::InjectedCrash {
                        op_index: state.ops_done,
                        op: format!("{op:?}"),
                    });
                }
                state.ops.push(op);
                return Ok(true);
            }
        }
        state.ops_done += 1;
        state.ops.push(op);
        Ok(false)
    }
}

/// The hooked filesystem facade. `Vfs::default()` (no hook) is a plain
/// passthrough; every component doing durable I/O owns one.
#[derive(Debug, Clone, Default)]
pub struct Vfs {
    hook: Option<FaultHook>,
}

impl Vfs {
    pub fn new(hook: Option<FaultHook>) -> Self {
        Vfs { hook }
    }

    /// The attached hook, if any.
    pub fn hook(&self) -> Option<&FaultHook> {
        self.hook.as_ref()
    }

    fn enter(&self, op: impl FnOnce() -> IoOp) -> Result<bool, PersistError> {
        match &self.hook {
            None => Ok(false),
            Some(hook) => hook.enter(op()),
        }
    }

    fn injected(&self, op: &str) -> PersistError {
        let op_index = self.hook.as_ref().map(|h| h.ops_done()).unwrap_or(0);
        PersistError::InjectedCrash {
            op_index,
            op: op.to_owned(),
        }
    }

    /// Create (truncate) a file.
    pub fn create(&self, path: &Path) -> Result<File, PersistError> {
        self.enter(|| IoOp::Create {
            file: name_of(path),
        })?;
        Ok(File::create(path)?)
    }

    /// Append bytes to an open file.
    pub fn append(&self, file: &mut File, path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
        if self.enter(|| IoOp::Write {
            file: name_of(path),
            bytes: bytes.len(),
        })? {
            // Doomed torn write: half the bytes land, then the "process dies".
            file.write_all(&bytes[..bytes.len() / 2])?;
            let _ = file.sync_data();
            return Err(self.injected("torn write"));
        }
        file.write_all(bytes)?;
        Ok(())
    }

    /// fsync an open file's data.
    pub fn sync_file(&self, file: &File, path: &Path) -> Result<(), PersistError> {
        self.enter(|| IoOp::SyncFile {
            file: name_of(path),
        })?;
        file.sync_data()?;
        Ok(())
    }

    /// fsync a directory, making renames/creations/removals in it durable.
    pub fn sync_dir(&self, dir: &Path) -> Result<(), PersistError> {
        self.enter(|| IoOp::SyncDir { dir: name_of(dir) })?;
        File::open(dir)?.sync_all()?;
        Ok(())
    }

    /// Atomically rename `from` over `to`.
    pub fn rename(&self, from: &Path, to: &Path) -> Result<(), PersistError> {
        self.enter(|| IoOp::Rename {
            from: name_of(from),
            to: name_of(to),
        })?;
        std::fs::rename(from, to)?;
        Ok(())
    }

    /// Remove a file.
    pub fn remove(&self, path: &Path) -> Result<(), PersistError> {
        self.enter(|| IoOp::Remove {
            file: name_of(path),
        })?;
        std::fs::remove_file(path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kg-persist-vfs-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn hook_records_op_order_and_counts() {
        let dir = tmp("order");
        let hook = FaultHook::new();
        let vfs = Vfs::new(Some(hook.clone()));
        let path = dir.join("a.log");
        let mut file = vfs.create(&path).unwrap();
        vfs.append(&mut file, &path, b"abc").unwrap();
        vfs.sync_file(&file, &path).unwrap();
        vfs.sync_dir(&dir).unwrap();
        let log = hook.log();
        assert_eq!(
            log,
            vec![
                IoOp::Create {
                    file: "a.log".into()
                },
                IoOp::Write {
                    file: "a.log".into(),
                    bytes: 3
                },
                IoOp::SyncFile {
                    file: "a.log".into()
                },
                IoOp::SyncDir { dir: name_of(&dir) },
            ]
        );
        assert_eq!(hook.ops_done(), 4);
    }

    #[test]
    fn armed_kill_fires_before_the_chosen_op() {
        let dir = tmp("kill");
        let hook = FaultHook::new();
        let vfs = Vfs::new(Some(hook.clone()));
        let path = dir.join("a.log");
        let mut file = vfs.create(&path).unwrap();
        hook.arm_kill_after(2, false);
        vfs.append(&mut file, &path, b"first").unwrap();
        let err = vfs.append(&mut file, &path, b"second").unwrap_err();
        assert!(matches!(
            err,
            PersistError::InjectedCrash { op_index: 2, .. }
        ));
        // Nothing of the doomed write landed.
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        // Once dead, every later op also fails — the process never comes back.
        assert!(vfs.sync_file(&file, &path).is_err());
    }

    #[test]
    fn torn_kill_leaves_half_the_bytes() {
        let dir = tmp("torn");
        let hook = FaultHook::new();
        let vfs = Vfs::new(Some(hook.clone()));
        let path = dir.join("a.log");
        let mut file = vfs.create(&path).unwrap();
        hook.arm_kill_after(1, true);
        let err = vfs.append(&mut file, &path, b"abcdefgh").unwrap_err();
        assert!(matches!(err, PersistError::InjectedCrash { .. }));
        assert_eq!(std::fs::read(&path).unwrap(), b"abcd");
    }
}
