//! Log-structured checkpoint persistence: checksummed binary segment files
//! plus an append-only manifest, with retention pruning and crash-safe
//! compaction.
//!
//! This crate is the on-disk twin of `kg-graph`'s copy-on-write arenas: a
//! checkpoint persists a set of named *blobs* (graph arena segments, search
//! shards, run metadata), and only the blobs the caller re-submits are
//! written — everything else is carried forward by reference from the
//! previous checkpoint. The framing generalizes the `KGJOURN1` journal
//! format: every blob is a length-prefixed, FNV-1a-checksummed frame inside
//! an append-only data file, and the manifest that maps logical blob names
//! to `(file, offset, len, checksum)` is itself an append-only checksummed
//! log.
//!
//! Failure modes are first-class citizens:
//!
//! - a torn tail on the manifest (or a half-appended data frame) is
//!   truncated away on replay, exactly like the journal;
//! - a corrupt frame (bit flip, short read, garbage length prefix) fails
//!   verification with an attributed [`RecoveryEvent`] and recovery falls
//!   back to the newest older checkpoint that verifies in full;
//! - a kill at *any* syscall boundary during checkpointing or compaction
//!   leaves either the old or the new generation fully readable, which the
//!   [`FaultHook`] makes provable: it interposes every write/sync/rename/
//!   remove, logs the order barriers were issued in, and can inject a crash
//!   before any single operation.
//!
//! The store never panics on hostile bytes: every reader path returns an
//! attributed error instead.

pub mod fault;
pub mod format;
pub mod manifest;
pub mod store;

pub use fault::{FaultHook, IoOp, Vfs};
pub use format::{PersistError, DATA_MAGIC, FRAME_HEADER, MANIFEST_MAGIC, MAX_PAYLOAD};
pub use manifest::{BlobEntry, CheckpointRecord, ManifestReplay};
pub use store::{RecoveryEvent, SegmentStore, StoreOptions, StoreStats};
