//! The segment store: incremental blob checkpoints over append-only data
//! files, with quarantine-and-fall-back recovery, retention pruning and
//! crash-safe compaction.
//!
//! Write path of one checkpoint (barrier order is load-bearing and audited
//! by the [`crate::FaultHook`] log):
//!
//! 1. append every submitted blob as a frame to the active data file
//!    (rolling to a new file past [`StoreOptions::roll_bytes`]);
//! 2. fsync every data file written this checkpoint, then fsync the
//!    directory if files were created;
//! 3. append the [`CheckpointRecord`] — new entries plus everything carried
//!    forward from the baseline — to the manifest and fsync it.
//!
//! A crash before step 3 leaves unreferenced frames (garbage, reclaimed by
//! compaction) and the previous checkpoint intact; after step 3 the new
//! checkpoint is durable. Recovery walks records newest→oldest and restores
//! the first whose every frame verifies (magic, length, checksum, and the
//! caller's own semantic check); failures are attributed, never fatal —
//! unless the manifest itself is unusable, in which case a clean
//! [`PersistError::ManifestUnusable`] is returned instead of silently
//! starting fresh over data that might still matter.

use crate::fault::{FaultHook, Vfs};
use crate::format::{self, PersistError, DATA_MAGIC, FRAME_HEADER, MANIFEST_MAGIC};
use crate::manifest::{self, BlobEntry, CheckpointRecord, ManifestLog};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fs::File;
use std::path::{Path, PathBuf};

/// Knobs of a [`SegmentStore`].
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Checkpoints retained by [`SegmentStore::prune`] (min 1).
    pub retention: usize,
    /// Roll the active data file once it exceeds this many bytes.
    pub roll_bytes: u64,
    /// Compact when the manifest log outgrows this many bytes.
    pub compact_manifest_bytes: u64,
    /// Compact when dead bytes exceed live bytes and total data exceeds this.
    pub compact_min_bytes: u64,
    /// Fault hook shared with the chaos harness.
    pub hook: Option<FaultHook>,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            retention: 2,
            roll_bytes: 4 * 1024 * 1024,
            compact_manifest_bytes: 256 * 1024,
            compact_min_bytes: 64 * 1024,
            hook: None,
        }
    }
}

/// One attributed recovery failure: which checkpoint, which file, which
/// blob, and why it was rejected (quarantined).
#[derive(Debug, Clone)]
pub struct RecoveryEvent {
    pub checkpoint_seq: u64,
    pub file: String,
    pub logical: Option<String>,
    pub reason: String,
}

impl std::fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "checkpoint {}: quarantined {}{}: {}",
            self.checkpoint_seq,
            self.file,
            self.logical
                .as_deref()
                .map(|l| format!(" (blob {l})"))
                .unwrap_or_default(),
            self.reason
        )
    }
}

/// Disk accounting for a store.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Checkpoint records retained in memory (post-prune view).
    pub checkpoints: usize,
    /// `data-*.log` files on disk.
    pub data_files: usize,
    /// Total bytes across data files.
    pub data_bytes: u64,
    /// Bytes referenced by retained checkpoints (frames, deduplicated).
    pub live_bytes: u64,
    /// Manifest log bytes.
    pub manifest_bytes: u64,
}

struct ActiveFile {
    file: File,
    name: String,
    len: u64,
}

/// The log-structured segment store. One per durable directory, alongside
/// the crawl journal.
pub struct SegmentStore {
    dir: PathBuf,
    vfs: Vfs,
    manifest: ManifestLog,
    /// Checkpoint records in manifest append order (pruned view).
    records: Vec<CheckpointRecord>,
    /// Index into `records` of the carry-forward baseline: the checkpoint
    /// whose entries the next checkpoint inherits. `None` until the first
    /// checkpoint or successful recovery — then every blob must be written.
    baseline: Option<usize>,
    active: Option<ActiveFile>,
    next_file: u64,
    /// Data files created/removed since the last directory fsync.
    dir_dirty: bool,
    opts: StoreOptions,
    /// Attributed quarantine events from the last recovery.
    quarantine: Vec<RecoveryEvent>,
    /// Whether the manifest had a torn tail on open.
    manifest_torn: bool,
}

fn data_file_name(n: u64) -> String {
    format!("data-{n:06}.log")
}

fn parse_data_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("data-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

impl SegmentStore {
    /// Open (or initialise) the store in `dir`.
    pub fn open(dir: &Path, opts: StoreOptions) -> Result<Self, PersistError> {
        std::fs::create_dir_all(dir)?;
        let vfs = Vfs::new(opts.hook.clone());
        let manifest_path = dir.join("manifest.log");
        // A manifest shorter than its magic is a torn *creation*: the magic
        // write never completed, so no checkpoint can ever have committed
        // through it. Recreate rather than refusing to open.
        let manifest_usable = std::fs::metadata(&manifest_path)
            .map(|m| m.len() >= MANIFEST_MAGIC.len() as u64)
            .unwrap_or(false);
        let (manifest, records, manifest_torn) = if manifest_usable {
            let replay = manifest::replay_manifest(&manifest_path)?;
            let torn = replay.torn_tail;
            let records = replay.records.clone();
            let log = ManifestLog::open_after_replay(&manifest_path, &replay, vfs.clone())?;
            (log, records, torn)
        } else {
            (
                ManifestLog::create(&manifest_path, vfs.clone())?,
                Vec::new(),
                false,
            )
        };
        // Never reuse a data file name: a crashed run may have left a
        // partially written file under any existing number.
        let mut next_file = 1;
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if let Some(n) = parse_data_file_name(&name) {
                next_file = next_file.max(n + 1);
            }
        }
        Ok(SegmentStore {
            dir: dir.to_owned(),
            vfs,
            manifest,
            records,
            baseline: None,
            active: None,
            next_file,
            dir_dirty: false,
            opts,
            quarantine: Vec::new(),
            manifest_torn,
        })
    }

    /// Whether the manifest had a torn tail on open (truncated away).
    pub fn manifest_torn(&self) -> bool {
        self.manifest_torn
    }

    /// Sequence number of the current carry-forward baseline, if any.
    pub fn baseline_seq(&self) -> Option<u64> {
        self.baseline.map(|i| self.records[i].seq)
    }

    /// Retained checkpoint records, oldest first.
    pub fn checkpoints(&self) -> &[CheckpointRecord] {
        &self.records
    }

    /// Oldest retained checkpoint sequence number, if any.
    pub fn oldest_retained_seq(&self) -> Option<u64> {
        self.records.first().map(|r| r.seq)
    }

    /// Attributed quarantine events from the last [`SegmentStore::recover_with`].
    pub fn quarantine_log(&self) -> &[RecoveryEvent] {
        &self.quarantine
    }

    fn ensure_active(&mut self) -> Result<(), PersistError> {
        let roll = match &self.active {
            None => true,
            Some(active) => active.len >= self.opts.roll_bytes,
        };
        if roll {
            if let Some(old) = self.active.take() {
                // The rolled-out file may carry frames of the checkpoint in
                // progress; sync before letting go of the handle.
                self.vfs.sync_file(&old.file, &self.dir.join(&old.name))?;
            }
            let name = data_file_name(self.next_file);
            self.next_file += 1;
            let path = self.dir.join(&name);
            let mut file = self.vfs.create(&path)?;
            self.vfs.append(&mut file, &path, DATA_MAGIC)?;
            self.dir_dirty = true;
            self.active = Some(ActiveFile {
                file,
                name,
                len: DATA_MAGIC.len() as u64,
            });
        }
        Ok(())
    }

    /// Persist one checkpoint. `blobs` are the logical blobs (re)written
    /// since the baseline; every baseline blob not in `blobs` is carried
    /// forward by reference. With no baseline (fresh store, or recovery
    /// never succeeded) the caller must submit the complete blob set.
    pub fn checkpoint(
        &mut self,
        seq: u64,
        cycles_done: u64,
        kg_digest: u64,
        blobs: Vec<(String, Vec<u8>)>,
    ) -> Result<(), PersistError> {
        // Start from the carried entry set, then overwrite with new blobs.
        let mut entries: BTreeMap<String, BlobEntry> = match self.baseline {
            Some(idx) => self.records[idx]
                .entries
                .iter()
                .map(|e| (e.logical.clone(), e.clone()))
                .collect(),
            None => BTreeMap::new(),
        };
        // 1. Append frames to the active data file. One frame buffer is
        // reused across the cycle's blobs (cleared, not reallocated).
        let mut frame = Vec::new();
        for (logical, payload) in &blobs {
            self.ensure_active()?;
            let active = self.active.as_mut().expect("active file exists");
            frame.clear();
            format::encode_frame_into(payload, &mut frame);
            let offset = active.len;
            let path = self.dir.join(&active.name);
            self.vfs.append(&mut active.file, &path, &frame)?;
            active.len += frame.len() as u64;
            entries.insert(
                logical.clone(),
                BlobEntry {
                    logical: logical.clone(),
                    file: active.name.clone(),
                    offset,
                    len: payload.len() as u32,
                    checksum: kg_ir::fnv1a64(payload),
                },
            );
        }
        // 2. Data barrier: frames down before the manifest references them.
        if let Some(active) = &self.active {
            self.vfs
                .sync_file(&active.file, &self.dir.join(&active.name))?;
        }
        if self.dir_dirty {
            self.vfs.sync_dir(&self.dir)?;
            self.dir_dirty = false;
        }
        // 3. Commit point: the manifest record (append + fsync).
        let record = CheckpointRecord {
            seq,
            cycles_done,
            kg_digest,
            compacted: false,
            entries: entries.into_values().collect(),
        };
        self.manifest.append(&record)?;
        self.records.push(record);
        self.baseline = Some(self.records.len() - 1);
        Ok(())
    }

    /// Walk checkpoints newest→oldest; for the first whose every blob
    /// verifies (frame intact, checksum matches the manifest) *and* whose
    /// semantic reassembly `f` succeeds, return `f`'s value and set the
    /// carry-forward baseline there. Rejected checkpoints are quarantined
    /// with attribution and **dropped from the retained set** — they must
    /// not be carried forward, compacted, or protected from pruning (their
    /// corrupt frames would poison all three). `Ok(None)` means no
    /// checkpoint survived.
    pub fn recover_with<T>(
        &mut self,
        mut f: impl FnMut(&CheckpointRecord, &BTreeMap<String, Vec<u8>>) -> Result<T, String>,
    ) -> Result<Option<T>, PersistError> {
        self.quarantine.clear();
        let mut file_cache: HashMap<String, Option<Vec<u8>>> = HashMap::new();
        for idx in (0..self.records.len()).rev() {
            let record = &self.records[idx];
            match load_checkpoint(&self.dir, record, &mut file_cache) {
                Err(event) => self.quarantine.push(event),
                Ok(blobs) => match f(record, &blobs) {
                    Ok(value) => {
                        self.records.truncate(idx + 1);
                        self.baseline = Some(idx);
                        return Ok(Some(value));
                    }
                    Err(reason) => self.quarantine.push(RecoveryEvent {
                        checkpoint_seq: record.seq,
                        file: "-".into(),
                        logical: None,
                        reason,
                    }),
                },
            }
        }
        self.records.clear();
        self.baseline = None;
        Ok(None)
    }

    /// Read the first `n` payload bytes of one referenced blob — enough for
    /// format sniffing (`recover --verify`'s payload column) — without
    /// loading or checksumming the whole frame. Truncated files surface as
    /// an I/O error.
    pub fn blob_prefix(&self, entry: &BlobEntry, n: usize) -> Result<Vec<u8>, PersistError> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = std::fs::File::open(self.dir.join(&entry.file))?;
        file.seek(SeekFrom::Start(entry.offset + FRAME_HEADER as u64))?;
        let mut buf = vec![0u8; n.min(entry.len as usize)];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Drop retained records beyond the retention count and delete data
    /// files no retained record references. Returns deleted file names.
    pub fn prune(&mut self) -> Result<Vec<String>, PersistError> {
        let keep = self.opts.retention.max(1);
        if self.records.len() > keep {
            let drop_n = self.records.len() - keep;
            self.records.drain(..drop_n);
            self.baseline = match self.baseline {
                Some(idx) if idx >= drop_n => Some(idx - drop_n),
                _ => None,
            };
        }
        let live: BTreeSet<&str> = self
            .records
            .iter()
            .flat_map(|r| r.entries.iter().map(|e| e.file.as_str()))
            .collect();
        let mut deleted = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if parse_data_file_name(&name).is_none() || live.contains(name.as_str()) {
                continue;
            }
            if self.active.as_ref().is_some_and(|a| a.name == name) {
                continue; // never unlink the open append target
            }
            self.vfs.remove(&self.dir.join(&name))?;
            self.dir_dirty = true;
            deleted.push(name);
        }
        Ok(deleted)
    }

    /// Whether accumulated garbage warrants a [`SegmentStore::compact`].
    pub fn should_compact(&self) -> bool {
        if self.manifest.len_bytes() > self.opts.compact_manifest_bytes {
            return true;
        }
        let stats = self.stats();
        stats.data_bytes > self.opts.compact_min_bytes
            && stats.data_bytes.saturating_sub(stats.live_bytes) > stats.live_bytes
    }

    /// Rewrite every live frame of the retained checkpoints into a fresh
    /// data generation, atomically swap the manifest to the relocated
    /// records, and delete the old generation. Crash-safe at every syscall
    /// boundary: until the manifest rename lands, recovery reads the old
    /// generation; after it, the new one (already synced).
    pub fn compact(&mut self) -> Result<(), PersistError> {
        if self.records.is_empty() {
            return Ok(());
        }
        // Detach from the current active file: compaction writes a fresh
        // generation so old files become wholly deletable.
        if let Some(old) = self.active.take() {
            self.vfs.sync_file(&old.file, &self.dir.join(&old.name))?;
        }
        let name = data_file_name(self.next_file);
        self.next_file += 1;
        let path = self.dir.join(&name);
        let mut file = self.vfs.create(&path)?;
        self.vfs.append(&mut file, &path, DATA_MAGIC)?;
        let mut len = DATA_MAGIC.len() as u64;

        // 1. Copy live frames (deduplicated across records) into the new file.
        let mut relocated: HashMap<(String, u64), u64> = HashMap::new();
        let mut file_cache: HashMap<String, Option<Vec<u8>>> = HashMap::new();
        let mut new_records = self.records.clone();
        let mut frame = Vec::new();
        for record in &mut new_records {
            for entry in &mut record.entries {
                let key = (entry.file.clone(), entry.offset);
                let new_offset = match relocated.get(&key) {
                    Some(&o) => o,
                    None => {
                        let payload =
                            read_frame(&self.dir, entry, &mut file_cache).map_err(|event| {
                                // A corrupt live frame makes this checkpoint
                                // unrecoverable either way; surface it rather
                                // than silently dropping data.
                                PersistError::CorruptFrame {
                                    file: event.file,
                                    offset: entry.offset,
                                    reason: event.reason,
                                }
                            })?;
                        frame.clear();
                        format::encode_frame_into(&payload, &mut frame);
                        let offset = len;
                        self.vfs.append(&mut file, &path, &frame)?;
                        len += frame.len() as u64;
                        relocated.insert(key, offset);
                        offset
                    }
                };
                entry.file = name.clone();
                entry.offset = new_offset;
            }
            record.compacted = true;
        }
        // 2. Barrier: the new generation is durable before any reference.
        self.vfs.sync_file(&file, &path)?;
        self.vfs.sync_dir(&self.dir)?;
        // 3. Commit point: swap the manifest to the relocated records.
        self.manifest.replace_with(&new_records)?;
        self.records = new_records;
        self.baseline = Some(self.records.len() - 1);
        self.active = Some(ActiveFile { file, name, len });
        // 4. The old generation is garbage now.
        self.dir_dirty = false;
        self.prune()?;
        Ok(())
    }

    /// Disk accounting.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats {
            checkpoints: self.records.len(),
            manifest_bytes: self.manifest.len_bytes(),
            ..StoreStats::default()
        };
        if let Ok(dir) = std::fs::read_dir(&self.dir) {
            for entry in dir.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if parse_data_file_name(&name).is_some() {
                    stats.data_files += 1;
                    stats.data_bytes += entry.metadata().map(|m| m.len()).unwrap_or(0);
                }
            }
        }
        let mut seen: BTreeSet<(&str, u64)> = BTreeSet::new();
        for record in &self.records {
            for e in &record.entries {
                if seen.insert((e.file.as_str(), e.offset)) {
                    stats.live_bytes += FRAME_HEADER as u64 + e.len as u64;
                }
            }
        }
        stats
    }
}

/// Read and verify one referenced frame. Every failure is attributed.
fn read_frame(
    dir: &Path,
    entry: &BlobEntry,
    cache: &mut HashMap<String, Option<Vec<u8>>>,
) -> Result<Vec<u8>, RecoveryEvent> {
    let fail = |reason: String| RecoveryEvent {
        checkpoint_seq: 0, // stamped by the caller
        file: entry.file.clone(),
        logical: Some(entry.logical.clone()),
        reason,
    };
    let bytes = cache
        .entry(entry.file.clone())
        .or_insert_with(|| std::fs::read(dir.join(&entry.file)).ok())
        .as_ref()
        .ok_or_else(|| fail("cannot read file".into()))?;
    if bytes.len() < DATA_MAGIC.len() || &bytes[..DATA_MAGIC.len()] != DATA_MAGIC {
        return Err(fail("bad magic header".into()));
    }
    let (payload, _) = format::decode_frame_at(bytes, entry.offset as usize).map_err(&fail)?;
    if payload.len() != entry.len as usize {
        return Err(fail(format!(
            "length mismatch: frame {} vs manifest {}",
            payload.len(),
            entry.len
        )));
    }
    if kg_ir::fnv1a64(payload) != entry.checksum {
        return Err(fail("checksum differs from manifest".into()));
    }
    Ok(payload.to_vec())
}

/// Load every blob of one checkpoint, verified.
fn load_checkpoint(
    dir: &Path,
    record: &CheckpointRecord,
    cache: &mut HashMap<String, Option<Vec<u8>>>,
) -> Result<BTreeMap<String, Vec<u8>>, RecoveryEvent> {
    let mut blobs = BTreeMap::new();
    for entry in &record.entries {
        let payload = read_frame(dir, entry, cache).map_err(|mut event| {
            event.checkpoint_seq = record.seq;
            event
        })?;
        blobs.insert(entry.logical.clone(), payload);
    }
    Ok(blobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kg-persist-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn blob(tag: &str, n: usize) -> (String, Vec<u8>) {
        (tag.to_owned(), format!("payload-{tag}-{n}").into_bytes())
    }

    fn recover_all(store: &mut SegmentStore) -> Option<(u64, BTreeMap<String, Vec<u8>>)> {
        store
            .recover_with(|record, blobs| Ok((record.seq, blobs.clone())))
            .unwrap()
    }

    #[test]
    fn incremental_checkpoints_carry_unwritten_blobs_forward() {
        let dir = tmp("carry");
        let mut store = SegmentStore::open(&dir, StoreOptions::default()).unwrap();
        store
            .checkpoint(1, 10, 0xD1, vec![blob("a", 1), blob("b", 1)])
            .unwrap();
        // Second checkpoint rewrites only "a"; "b" must be carried.
        store.checkpoint(2, 20, 0xD2, vec![blob("a", 2)]).unwrap();
        drop(store);

        let mut store = SegmentStore::open(&dir, StoreOptions::default()).unwrap();
        let (seq, blobs) = recover_all(&mut store).unwrap();
        assert_eq!(seq, 2);
        assert_eq!(blobs["a"], b"payload-a-2");
        assert_eq!(blobs["b"], b"payload-b-1");
        assert!(store.quarantine_log().is_empty());
        assert_eq!(store.baseline_seq(), Some(2));
    }

    #[test]
    fn corrupt_newest_falls_back_to_older_checkpoint_with_attribution() {
        let dir = tmp("fallback");
        let mut store = SegmentStore::open(&dir, StoreOptions::default()).unwrap();
        store.checkpoint(1, 10, 0xD1, vec![blob("a", 1)]).unwrap();
        store.checkpoint(2, 20, 0xD2, vec![blob("a", 2)]).unwrap();
        let newest = store.checkpoints().last().unwrap().entries[0].clone();
        drop(store);

        // Flip one byte inside the newest checkpoint's payload.
        let path = dir.join(&newest.file);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[(newest.offset as usize) + FRAME_HEADER] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let mut store = SegmentStore::open(&dir, StoreOptions::default()).unwrap();
        let (seq, blobs) = recover_all(&mut store).unwrap();
        assert_eq!(seq, 1, "must fall back to the older checkpoint");
        assert_eq!(blobs["a"], b"payload-a-1");
        let events = store.quarantine_log();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].checkpoint_seq, 2);
        assert_eq!(events[0].logical.as_deref(), Some("a"));
        assert!(events[0].reason.contains("checksum"));
        // The baseline moved to the surviving checkpoint: the next
        // checkpoint carries from it, not from the corrupt one.
        assert_eq!(store.baseline_seq(), Some(1));
        store.checkpoint(3, 30, 0xD3, vec![blob("b", 3)]).unwrap();
        let mut store = SegmentStore::open(&dir, StoreOptions::default()).unwrap();
        let (seq, blobs) = recover_all(&mut store).unwrap();
        assert_eq!(seq, 3);
        assert_eq!(blobs["a"], b"payload-a-1");
        assert_eq!(blobs["b"], b"payload-b-3");
    }

    #[test]
    fn semantic_rejection_also_falls_back() {
        let dir = tmp("semantic");
        let mut store = SegmentStore::open(&dir, StoreOptions::default()).unwrap();
        store.checkpoint(1, 10, 0xD1, vec![blob("a", 1)]).unwrap();
        store.checkpoint(2, 20, 0xD2, vec![blob("a", 2)]).unwrap();
        let got = store
            .recover_with(|record, _| {
                if record.seq == 2 {
                    Err("digest mismatch after reassembly".into())
                } else {
                    Ok(record.seq)
                }
            })
            .unwrap();
        assert_eq!(got, Some(1));
        assert_eq!(store.quarantine_log().len(), 1);
        assert!(store.quarantine_log()[0].reason.contains("digest"));
    }

    #[test]
    fn every_byte_flip_recovers_or_quarantines_cleanly() {
        let dir = tmp("bitflip");
        let mut store = SegmentStore::open(&dir, StoreOptions::default()).unwrap();
        store
            .checkpoint(1, 10, 0xAA, vec![blob("a", 1), blob("b", 1)])
            .unwrap();
        store.checkpoint(2, 20, 0xBB, vec![blob("a", 2)]).unwrap();
        drop(store);

        let mut files: Vec<PathBuf> = vec![dir.join("manifest.log")];
        for entry in std::fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            if parse_data_file_name(&p.file_name().unwrap().to_string_lossy()).is_some() {
                files.push(p);
            }
        }
        assert!(files.len() >= 2);
        for path in files {
            let pristine = std::fs::read(&path).unwrap();
            for offset in 0..pristine.len() {
                let mut mutated = pristine.clone();
                mutated[offset] ^= 0xFF;
                std::fs::write(&path, &mutated).unwrap();
                // Outcome must be: newest intact (flip in dead bytes), an
                // older checkpoint (quarantine fallback), nothing at all, or
                // a clean manifest-unusable error. Never a panic.
                match SegmentStore::open(&dir, StoreOptions::default()) {
                    Ok(mut store) => match recover_all(&mut store) {
                        Some((2, blobs)) => {
                            assert_eq!(blobs["a"], b"payload-a-2");
                            assert_eq!(blobs["b"], b"payload-b-1");
                        }
                        Some((1, blobs)) => {
                            assert_eq!(blobs["a"], b"payload-a-1");
                            // Falling back must be attributed: a quarantined
                            // frame, or the newest record lost to a manifest
                            // torn tail.
                            assert!(!store.quarantine_log().is_empty() || store.manifest_torn());
                        }
                        Some((seq, _)) => panic!("unexpected checkpoint {seq}"),
                        // No survivor is clean only when attributed: either
                        // quarantine events, or the manifest lost records to
                        // a (simulated) torn tail.
                        None => assert!(
                            !store.quarantine_log().is_empty()
                                || store.manifest_torn()
                                || store.checkpoints().is_empty()
                        ),
                    },
                    Err(PersistError::ManifestUnusable { .. }) => {}
                    Err(other) => panic!("flip at {path:?}+{offset}: unclean error {other}"),
                }
            }
            std::fs::write(&path, &pristine).unwrap();
        }
    }

    #[test]
    fn prune_bounds_disk_and_keeps_retention() {
        let dir = tmp("prune");
        let opts = StoreOptions {
            retention: 2,
            roll_bytes: 256, // roll aggressively so pruning has files to drop
            ..StoreOptions::default()
        };
        let mut store = SegmentStore::open(&dir, opts).unwrap();
        for seq in 1..=20 {
            store
                .checkpoint(seq, seq * 10, seq, vec![blob("a", seq as usize)])
                .unwrap();
            store.prune().unwrap();
        }
        assert_eq!(store.checkpoints().len(), 2);
        assert_eq!(store.oldest_retained_seq(), Some(19));
        let stats = store.stats();
        assert!(
            stats.data_files <= 4,
            "pruning must delete dead generations: {stats:?}"
        );
        // Both retained checkpoints still recover.
        let (seq, blobs) = recover_all(&mut store).unwrap();
        assert_eq!(seq, 20);
        assert_eq!(blobs["a"], b"payload-a-20");
    }

    #[test]
    fn compaction_drops_shadowed_frames_and_survives_reopen() {
        let dir = tmp("compact");
        let mut store = SegmentStore::open(&dir, StoreOptions::default()).unwrap();
        for seq in 1..=10 {
            store
                .checkpoint(
                    seq,
                    seq * 10,
                    seq,
                    vec![blob("a", seq as usize), blob("b", seq as usize)],
                )
                .unwrap();
            store.prune().unwrap();
        }
        let before = store.stats();
        store.compact().unwrap();
        let after = store.stats();
        assert!(after.data_bytes < before.data_bytes);
        assert!(after.manifest_bytes < before.manifest_bytes);
        assert_eq!(after.checkpoints, 2);
        // Shadowed frames are gone: bytes ≈ live.
        assert!(after.data_bytes <= after.live_bytes + 64);

        drop(store);
        let mut store = SegmentStore::open(&dir, StoreOptions::default()).unwrap();
        let (seq, blobs) = recover_all(&mut store).unwrap();
        assert_eq!(seq, 10);
        assert_eq!(blobs["a"], b"payload-a-10");
        assert_eq!(blobs["b"], b"payload-b-10");
        // Post-compaction checkpoints keep carrying forward correctly.
        store.checkpoint(11, 110, 11, vec![blob("a", 11)]).unwrap();
        let (seq, blobs) = recover_all(&mut store).unwrap();
        assert_eq!(seq, 11);
        assert_eq!(blobs["b"], b"payload-b-10");
    }

    #[test]
    fn kill_at_every_syscall_boundary_leaves_a_readable_generation() {
        // Dry-run a checkpoint+compact workload to count I/O ops, then kill
        // before each op in turn and verify recovery sees either the old or
        // the new state — with all carried blobs intact.
        let seed = |dir: &Path| {
            let mut store = SegmentStore::open(dir, StoreOptions::default()).unwrap();
            store
                .checkpoint(1, 10, 1, vec![blob("a", 1), blob("b", 1)])
                .unwrap();
            store.checkpoint(2, 20, 2, vec![blob("a", 2)]).unwrap();
            // recover to set the baseline as a resumed run would
            recover_all(&mut store).unwrap();
            store
        };

        // Dry run: count the workload's I/O ops with a hook attached but no
        // kill armed.
        let count_dir = tmp("kill-count");
        {
            let s = seed(&count_dir);
            drop(s);
        }
        let count_hook = FaultHook::new();
        {
            let opts = StoreOptions {
                retention: 2,
                hook: Some(count_hook.clone()),
                ..StoreOptions::default()
            };
            let mut s = SegmentStore::open(&count_dir, opts).unwrap();
            recover_all(&mut s).unwrap();
            s.checkpoint(3, 30, 3, vec![blob("a", 3)]).unwrap();
            s.prune().unwrap();
            s.compact().unwrap();
            s.checkpoint(4, 40, 4, vec![blob("b", 4)]).unwrap();
            s.prune().unwrap();
        }
        let total_ops = count_hook.ops_done();
        assert!(total_ops > 10, "workload too small: {total_ops} ops");

        for kill_at in 0..total_ops {
            let dir = tmp(&format!("kill-{kill_at}"));
            {
                let mut s = seed(&dir);
                recover_all(&mut s).unwrap();
            }
            let hook = FaultHook::new();
            {
                let opts = StoreOptions {
                    retention: 2,
                    hook: Some(hook.clone()),
                    ..StoreOptions::default()
                };
                let mut s = SegmentStore::open(&dir, opts).unwrap();
                recover_all(&mut s).unwrap();
                hook.arm_kill_after(hook.ops_done() + kill_at, kill_at % 2 == 0);
                let result = (|| -> Result<(), PersistError> {
                    s.checkpoint(3, 30, 3, vec![blob("a", 3)])?;
                    s.prune()?;
                    s.compact()?;
                    s.checkpoint(4, 40, 4, vec![blob("b", 4)])?;
                    s.prune()?;
                    Ok(())
                })();
                match result {
                    Err(PersistError::InjectedCrash { .. }) => {}
                    Ok(()) => panic!("kill at op {kill_at} never fired"),
                    Err(other) => panic!("kill at op {kill_at}: unclean error {other}"),
                }
            }
            // Recovery after the kill: some prefix of the checkpoint
            // sequence must be fully readable, carried blobs included.
            let mut s = SegmentStore::open(&dir, StoreOptions::default()).unwrap();
            let (seq, blobs) = recover_all(&mut s)
                .unwrap_or_else(|| panic!("kill at op {kill_at}: no checkpoint recovered"));
            let expect_a: &[u8] = match seq {
                2 => b"payload-a-2",
                3 | 4 => b"payload-a-3",
                other => panic!("kill at op {kill_at}: unexpected checkpoint {other}"),
            };
            assert_eq!(blobs["a"], expect_a, "kill at op {kill_at}, seq {seq}");
            let expect_b: &[u8] = if seq == 4 {
                b"payload-b-4"
            } else {
                b"payload-b-1"
            };
            assert_eq!(blobs["b"], expect_b, "kill at op {kill_at}, seq {seq}");
            let _ = std::fs::remove_dir_all(&dir);
        }
        let _ = std::fs::remove_dir_all(&count_dir);
    }

    #[test]
    fn recover_with_no_manifest_is_a_fresh_store() {
        let dir = tmp("fresh");
        let mut store = SegmentStore::open(&dir, StoreOptions::default()).unwrap();
        assert!(recover_all(&mut store).is_none());
        assert!(store.baseline_seq().is_none());
    }
}
