//! Frame format shared by data files and the manifest log, and the error
//! type every persistence path reports through.
//!
//! ```text
//! data file:      [8-byte magic "KGSEGD01"] frame*
//! manifest log:   [8-byte magic "KGMANIF1"] frame*
//! frame:          [u32 LE payload length][u64 LE FNV-1a of payload][payload]
//! ```
//!
//! The framing is the `KGJOURN1` journal format generalized: a reader can
//! always tell a complete frame from the torn tail a crash leaves behind,
//! and a corrupt length prefix can never ask us to allocate garbage
//! ([`MAX_PAYLOAD`]).

use kg_ir::fnv1a64;
use std::fmt;

/// First bytes of every segment data file.
pub const DATA_MAGIC: &[u8; 8] = b"KGSEGD01";

/// First bytes of the manifest log.
pub const MANIFEST_MAGIC: &[u8; 8] = b"KGMANIF1";

/// Frame header size: u32 length + u64 checksum.
pub const FRAME_HEADER: usize = 4 + 8;

/// Upper bound on a single frame payload; a larger claimed length is treated
/// as corruption rather than an allocation request.
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// Persistence failure modes. Corruption variants carry enough attribution
/// (file, offset, reason) for an operator to know *what* was quarantined.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    Serde(serde_json::Error),
    /// A file exists but does not start with its expected magic.
    BadHeader {
        file: String,
    },
    /// A referenced frame failed verification.
    CorruptFrame {
        file: String,
        offset: u64,
        reason: String,
    },
    /// The manifest log cannot be used at all (unreadable or bad header) —
    /// unlike a corrupt checkpoint there is nothing to fall back to.
    ManifestUnusable {
        reason: String,
    },
    /// A [`crate::FaultHook`] crash point fired (chaos harness only).
    InjectedCrash {
        op_index: u64,
        op: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persist I/O error: {e}"),
            PersistError::Serde(e) => write!(f, "persist encoding error: {e}"),
            PersistError::BadHeader { file } => write!(f, "{file}: bad magic header"),
            PersistError::CorruptFrame {
                file,
                offset,
                reason,
            } => write!(f, "{file}@{offset}: corrupt frame: {reason}"),
            PersistError::ManifestUnusable { reason } => {
                write!(f, "manifest unusable: {reason}")
            }
            PersistError::InjectedCrash { op_index, op } => {
                write!(f, "injected crash before I/O op #{op_index} ({op})")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

/// Encode one frame (header + payload), appending to `out`. The checkpoint
/// write loop clears and reuses one buffer across a cycle's blobs, so the
/// frame allocation is amortised to the largest blob of the cycle.
pub fn encode_frame_into(payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encode one frame into a fresh buffer.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    encode_frame_into(payload, &mut frame);
    frame
}

/// Decode the frame starting at `offset`. Returns `(payload, next_offset)`
/// or the reason the bytes do not form a complete, intact frame.
pub fn decode_frame_at(bytes: &[u8], offset: usize) -> Result<(&[u8], usize), String> {
    let rest = bytes.get(offset..).unwrap_or_default();
    if rest.len() < FRAME_HEADER {
        return Err(format!(
            "short frame header: {} of {FRAME_HEADER} bytes",
            rest.len()
        ));
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(format!("length prefix {len} exceeds MAX_PAYLOAD"));
    }
    if rest.len() < FRAME_HEADER + len {
        return Err(format!(
            "short payload: {} of {len} bytes",
            rest.len() - FRAME_HEADER
        ));
    }
    let checksum = u64::from_le_bytes([
        rest[4], rest[5], rest[6], rest[7], rest[8], rest[9], rest[10], rest[11],
    ]);
    let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
    if fnv1a64(payload) != checksum {
        return Err("checksum mismatch".to_owned());
    }
    Ok((payload, offset + FRAME_HEADER + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut bytes = DATA_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_frame(b"hello"));
        bytes.extend_from_slice(&encode_frame(b""));
        let (p1, next) = decode_frame_at(&bytes, DATA_MAGIC.len()).unwrap();
        assert_eq!(p1, b"hello");
        let (p2, end) = decode_frame_at(&bytes, next).unwrap();
        assert_eq!(p2, b"");
        assert_eq!(end, bytes.len());
    }

    #[test]
    fn every_corruption_is_detected() {
        let mut bytes = encode_frame(b"payload-bytes");
        // Torn tail.
        assert!(decode_frame_at(&bytes[..bytes.len() - 1], 0).is_err());
        assert!(decode_frame_at(&bytes[..4], 0).is_err());
        // Bit flip in the payload.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(decode_frame_at(&bytes, 0).unwrap_err().contains("checksum"));
        bytes[last] ^= 0x01;
        // Garbage length prefix.
        bytes[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_frame_at(&bytes, 0)
            .unwrap_err()
            .contains("MAX_PAYLOAD"));
        // Offset past the end.
        assert!(decode_frame_at(b"xy", 7).is_err());
    }
}
