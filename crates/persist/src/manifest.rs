//! The manifest log: an append-only, checksummed index of checkpoints.
//!
//! Each [`CheckpointRecord`] lists the *complete* blob set of one
//! checkpoint — blobs written by that checkpoint and blobs carried forward
//! from the previous one both appear, so a single record is sufficient to
//! recover (no chain walking, no dependency on older records being intact).
//! Records are framed exactly like journal records (see
//! [`crate::format`]); a torn tail is truncated away on reopen, and
//! compaction rewrites the whole log atomically (tmp + rename + dir fsync)
//! to drop records that only reference dead generations.

use crate::fault::Vfs;
use crate::format::{self, PersistError, MANIFEST_MAGIC};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek};
use std::path::{Path, PathBuf};

/// Where one logical blob lives on disk. `offset` addresses the frame
/// header inside `file`; `len`/`checksum` describe the payload and are
/// verified against both the frame header and the bytes on every load.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlobEntry {
    pub logical: String,
    pub file: String,
    pub offset: u64,
    pub len: u32,
    pub checksum: u64,
}

/// One checkpoint: its identity, the digest recovery must reproduce, and
/// the complete blob set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointRecord {
    pub seq: u64,
    /// Scheduler cycles completed when the checkpoint was taken.
    pub cycles_done: u64,
    /// Digest of the persisted graph, re-verified after reassembly.
    pub kg_digest: u64,
    /// True when this record was rewritten by compaction (relocated
    /// entries, no new data).
    pub compacted: bool,
    pub entries: Vec<BlobEntry>,
}

/// Outcome of replaying a manifest log.
#[derive(Debug)]
pub struct ManifestReplay {
    /// Every intact record, in append order.
    pub records: Vec<CheckpointRecord>,
    /// Whether trailing bytes had to be discarded.
    pub torn_tail: bool,
    /// Clean prefix length in bytes.
    pub clean_len: u64,
}

/// Replay a manifest from disk, tolerating a torn tail. A missing file or
/// bad magic is [`PersistError::ManifestUnusable`] — there is nothing to
/// fall back to below the manifest.
pub fn replay_manifest(path: &Path) -> Result<ManifestReplay, PersistError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| PersistError::ManifestUnusable {
            reason: format!("cannot read {}: {e}", path.display()),
        })?;
    if bytes.len() < MANIFEST_MAGIC.len() || &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err(PersistError::ManifestUnusable {
            reason: format!("{} does not start with {MANIFEST_MAGIC:?}", path.display()),
        });
    }
    let mut records = Vec::new();
    let mut offset = MANIFEST_MAGIC.len();
    let mut torn_tail = false;
    while offset < bytes.len() {
        match format::decode_frame_at(&bytes, offset) {
            Ok((payload, next)) => match serde_json::from_slice::<CheckpointRecord>(payload) {
                Ok(record) => {
                    records.push(record);
                    offset = next;
                }
                Err(_) => {
                    torn_tail = true;
                    break;
                }
            },
            Err(_) => {
                torn_tail = true;
                break;
            }
        }
    }
    Ok(ManifestReplay {
        records,
        torn_tail,
        clean_len: offset as u64,
    })
}

/// An open manifest log, ready to append.
#[derive(Debug)]
pub struct ManifestLog {
    file: File,
    path: PathBuf,
    vfs: Vfs,
    len: u64,
}

impl ManifestLog {
    /// Create a fresh manifest (truncating anything at `path`), durably:
    /// the magic is synced and so is the parent directory.
    pub fn create(path: &Path, vfs: Vfs) -> Result<Self, PersistError> {
        let mut file = vfs.create(path)?;
        vfs.append(&mut file, path, MANIFEST_MAGIC)?;
        vfs.sync_file(&file, path)?;
        if let Some(parent) = path.parent() {
            vfs.sync_dir(parent)?;
        }
        Ok(ManifestLog {
            file,
            path: path.to_owned(),
            vfs,
            len: MANIFEST_MAGIC.len() as u64,
        })
    }

    /// Re-open after [`replay_manifest`], truncating any torn tail.
    pub fn open_after_replay(
        path: &Path,
        replay: &ManifestReplay,
        vfs: Vfs,
    ) -> Result<Self, PersistError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(replay.clean_len)?;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(ManifestLog {
            file,
            path: path.to_owned(),
            vfs,
            len: replay.clean_len,
        })
    }

    /// Current manifest size in bytes (clean prefix + appends).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The manifest file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record and fsync — the commit point of a checkpoint. The
    /// caller must have synced every data frame the record references first.
    pub fn append(&mut self, record: &CheckpointRecord) -> Result<(), PersistError> {
        let frame = format::encode_frame(&serde_json::to_vec(record)?);
        self.vfs.append(&mut self.file, &self.path, &frame)?;
        self.vfs.sync_file(&self.file, &self.path)?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Atomically replace the whole log with `records` (compaction): write
    /// a tmp file, fsync it, rename over the log, fsync the directory, then
    /// continue appending to the new file.
    pub fn replace_with(&mut self, records: &[CheckpointRecord]) -> Result<(), PersistError> {
        let tmp_path = self.path.with_extension("log.tmp");
        let mut tmp = self.vfs.create(&tmp_path)?;
        let mut bytes = MANIFEST_MAGIC.to_vec();
        for record in records {
            bytes.extend_from_slice(&format::encode_frame(&serde_json::to_vec(record)?));
        }
        self.vfs.append(&mut tmp, &tmp_path, &bytes)?;
        self.vfs.sync_file(&tmp, &tmp_path)?;
        self.vfs.rename(&tmp_path, &self.path)?;
        if let Some(parent) = self.path.parent() {
            self.vfs.sync_dir(parent)?;
        }
        // Swap the open handle to the new file.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(std::io::SeekFrom::End(0))?;
        self.file = file;
        self.len = bytes.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kg-persist-manifest-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("manifest.log")
    }

    fn record(seq: u64) -> CheckpointRecord {
        CheckpointRecord {
            seq,
            cycles_done: seq * 10,
            kg_digest: 0xABCD ^ seq,
            compacted: false,
            entries: vec![BlobEntry {
                logical: format!("n{seq}"),
                file: "data-000001.log".into(),
                offset: 8,
                len: 4,
                checksum: 99,
            }],
        }
    }

    #[test]
    fn round_trip_and_torn_tail() {
        let path = tmp("roundtrip");
        let mut log = ManifestLog::create(&path, Vfs::default()).unwrap();
        log.append(&record(1)).unwrap();
        log.append(&record(2)).unwrap();
        drop(log);

        let replay = replay_manifest(&path).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.records, vec![record(1), record(2)]);

        // Torn tail: garbage half-frame is truncated on reopen.
        let clean = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[9, 9, 9]).unwrap();
        drop(f);
        let torn = replay_manifest(&path).unwrap();
        assert!(torn.torn_tail);
        assert_eq!(torn.clean_len, clean);
        assert_eq!(torn.records.len(), 2);

        let mut log = ManifestLog::open_after_replay(&path, &torn, Vfs::default()).unwrap();
        log.append(&record(3)).unwrap();
        let again = replay_manifest(&path).unwrap();
        assert!(!again.torn_tail);
        assert_eq!(again.records.len(), 3);
    }

    #[test]
    fn bad_or_missing_manifest_is_unusable_not_a_panic() {
        let path = tmp("bad");
        assert!(matches!(
            replay_manifest(&path),
            Err(PersistError::ManifestUnusable { .. })
        ));
        std::fs::write(&path, b"not a manifest at all").unwrap();
        assert!(matches!(
            replay_manifest(&path),
            Err(PersistError::ManifestUnusable { .. })
        ));
    }

    #[test]
    fn replace_with_rewrites_atomically() {
        let path = tmp("replace");
        let mut log = ManifestLog::create(&path, Vfs::default()).unwrap();
        for seq in 1..=5 {
            log.append(&record(seq)).unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        log.replace_with(&[record(5)]).unwrap();
        let replay = replay_manifest(&path).unwrap();
        assert_eq!(replay.records, vec![record(5)]);
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        // Appending after the swap extends the new file.
        log.append(&record(6)).unwrap();
        assert_eq!(replay_manifest(&path).unwrap().records.len(), 2);
    }
}
