//! Entity kinds of the security knowledge ontology (Figure 2).
//!
//! The figure groups entities into three layers: *report* entities (one per
//! crawled OSCTI report, categorised as malware / vulnerability / attack
//! report), *concept* entities (vendor, threat actor, technique, tactic, tool,
//! software, malware, vulnerability, campaign), and *IOC* entities (file name,
//! file path, IP, URL, email, domain, registry key and the three common hash
//! digests).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The category of an OSCTI report (paper §2.3: "we categorize OSCTI reports
/// into three types: malware reports, vulnerability reports, and attack
/// reports").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ReportCategory {
    Malware,
    Vulnerability,
    Attack,
}

impl ReportCategory {
    /// All report categories, in a stable order.
    pub const ALL: [ReportCategory; 3] = [
        ReportCategory::Malware,
        ReportCategory::Vulnerability,
        ReportCategory::Attack,
    ];

    /// The entity kind used for a report node of this category.
    pub fn entity_kind(self) -> EntityKind {
        match self {
            ReportCategory::Malware => EntityKind::MalwareReport,
            ReportCategory::Vulnerability => EntityKind::VulnerabilityReport,
            ReportCategory::Attack => EntityKind::AttackReport,
        }
    }
}

impl fmt::Display for ReportCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReportCategory::Malware => "malware",
            ReportCategory::Vulnerability => "vulnerability",
            ReportCategory::Attack => "attack",
        };
        f.write_str(s)
    }
}

/// Every entity kind in the security knowledge ontology.
///
/// The discriminants are stable; [`EntityKind::ALL`] enumerates them in that
/// order and the graph store uses the order for its label index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EntityKind {
    // ---- report entities -------------------------------------------------
    /// A crawled report describing a malware family.
    MalwareReport,
    /// A crawled report describing a vulnerability.
    VulnerabilityReport,
    /// A crawled report describing an attack / campaign / incident.
    AttackReport,

    // ---- concept entities ------------------------------------------------
    /// The CTI vendor (source website / organisation) that published a report.
    CtiVendor,
    /// An adversary group (APT29, Lazarus Group, ...).
    ThreatActor,
    /// An adversary technique (ATT&CK-style, e.g. "spearphishing attachment").
    Technique,
    /// A high-level adversary tactic (ATT&CK-style, e.g. "lateral movement").
    Tactic,
    /// An attack tool (mimikatz, cobalt strike, ...).
    Tool,
    /// Benign software targeted or abused by a threat.
    Software,
    /// A malware family (wannacry, emotet, ...).
    Malware,
    /// A vulnerability (CVE identifiers and named vulnerabilities).
    Vulnerability,
    /// A named campaign or operation.
    Campaign,

    // ---- IOC entities ----------------------------------------------------
    /// A file name IOC (e.g. `tasksche.exe`).
    FileName,
    /// A file path IOC (e.g. `C:\Windows\mssecsvc.exe`).
    FilePath,
    /// An IPv4/IPv6 address IOC.
    IpAddress,
    /// A URL IOC.
    Url,
    /// An email address IOC.
    Email,
    /// A domain name IOC.
    Domain,
    /// A Windows registry key IOC.
    RegistryKey,
    /// An MD5 digest IOC.
    HashMd5,
    /// A SHA-1 digest IOC.
    HashSha1,
    /// A SHA-256 digest IOC.
    HashSha256,
}

impl EntityKind {
    /// All entity kinds, in declaration order.
    pub const ALL: [EntityKind; 22] = [
        EntityKind::MalwareReport,
        EntityKind::VulnerabilityReport,
        EntityKind::AttackReport,
        EntityKind::CtiVendor,
        EntityKind::ThreatActor,
        EntityKind::Technique,
        EntityKind::Tactic,
        EntityKind::Tool,
        EntityKind::Software,
        EntityKind::Malware,
        EntityKind::Vulnerability,
        EntityKind::Campaign,
        EntityKind::FileName,
        EntityKind::FilePath,
        EntityKind::IpAddress,
        EntityKind::Url,
        EntityKind::Email,
        EntityKind::Domain,
        EntityKind::RegistryKey,
        EntityKind::HashMd5,
        EntityKind::HashSha1,
        EntityKind::HashSha256,
    ];

    /// Kinds that represent report nodes.
    pub const REPORTS: [EntityKind; 3] = [
        EntityKind::MalwareReport,
        EntityKind::VulnerabilityReport,
        EntityKind::AttackReport,
    ];

    /// Kinds that represent low-level Indicators of Compromise.
    pub const IOCS: [EntityKind; 10] = [
        EntityKind::FileName,
        EntityKind::FilePath,
        EntityKind::IpAddress,
        EntityKind::Url,
        EntityKind::Email,
        EntityKind::Domain,
        EntityKind::RegistryKey,
        EntityKind::HashMd5,
        EntityKind::HashSha1,
        EntityKind::HashSha256,
    ];

    /// Kinds that represent higher-level threat concepts (the layer the paper
    /// argues existing platforms overlook).
    pub const CONCEPTS: [EntityKind; 9] = [
        EntityKind::CtiVendor,
        EntityKind::ThreatActor,
        EntityKind::Technique,
        EntityKind::Tactic,
        EntityKind::Tool,
        EntityKind::Software,
        EntityKind::Malware,
        EntityKind::Vulnerability,
        EntityKind::Campaign,
    ];

    /// Whether this kind is one of the IOC kinds.
    pub fn is_ioc(self) -> bool {
        Self::IOCS.contains(&self)
    }

    /// Whether this kind is a report node kind.
    pub fn is_report(self) -> bool {
        Self::REPORTS.contains(&self)
    }

    /// Whether this kind is a higher-level concept.
    pub fn is_concept(self) -> bool {
        Self::CONCEPTS.contains(&self)
    }

    /// The canonical label string used in the graph store and in Cypher
    /// queries (UpperCamelCase, matching Neo4j conventions).
    pub fn label(self) -> &'static str {
        match self {
            EntityKind::MalwareReport => "MalwareReport",
            EntityKind::VulnerabilityReport => "VulnerabilityReport",
            EntityKind::AttackReport => "AttackReport",
            EntityKind::CtiVendor => "CtiVendor",
            EntityKind::ThreatActor => "ThreatActor",
            EntityKind::Technique => "Technique",
            EntityKind::Tactic => "Tactic",
            EntityKind::Tool => "Tool",
            EntityKind::Software => "Software",
            EntityKind::Malware => "Malware",
            EntityKind::Vulnerability => "Vulnerability",
            EntityKind::Campaign => "Campaign",
            EntityKind::FileName => "FileName",
            EntityKind::FilePath => "FilePath",
            EntityKind::IpAddress => "IpAddress",
            EntityKind::Url => "Url",
            EntityKind::Email => "Email",
            EntityKind::Domain => "Domain",
            EntityKind::RegistryKey => "RegistryKey",
            EntityKind::HashMd5 => "HashMd5",
            EntityKind::HashSha1 => "HashSha1",
            EntityKind::HashSha256 => "HashSha256",
        }
    }

    /// The BIO tag stem used by the NER layer (`B-MAL`, `I-MAL`, ...).
    ///
    /// Report kinds and vendor kinds are not produced by the sequence tagger,
    /// so they share stems with their concept counterparts where sensible.
    pub fn tag_stem(self) -> &'static str {
        match self {
            EntityKind::MalwareReport | EntityKind::Malware => "MAL",
            EntityKind::VulnerabilityReport | EntityKind::Vulnerability => "VUL",
            EntityKind::AttackReport | EntityKind::Campaign => "CAM",
            EntityKind::CtiVendor => "VEN",
            EntityKind::ThreatActor => "ACT",
            EntityKind::Technique => "TEC",
            EntityKind::Tactic => "TAC",
            EntityKind::Tool => "TOO",
            EntityKind::Software => "SOF",
            EntityKind::FileName => "FIL",
            EntityKind::FilePath => "PTH",
            EntityKind::IpAddress => "IP",
            EntityKind::Url => "URL",
            EntityKind::Email => "EML",
            EntityKind::Domain => "DOM",
            EntityKind::RegistryKey => "REG",
            EntityKind::HashMd5 => "MD5",
            EntityKind::HashSha1 => "SH1",
            EntityKind::HashSha256 => "SH2",
        }
    }

    /// Resolve a tag stem (as produced by [`EntityKind::tag_stem`]) back to
    /// the entity kind the tagger means. Report kinds are never returned.
    pub fn from_tag_stem(stem: &str) -> Option<EntityKind> {
        Some(match stem {
            "MAL" => EntityKind::Malware,
            "VUL" => EntityKind::Vulnerability,
            "CAM" => EntityKind::Campaign,
            "VEN" => EntityKind::CtiVendor,
            "ACT" => EntityKind::ThreatActor,
            "TEC" => EntityKind::Technique,
            "TAC" => EntityKind::Tactic,
            "TOO" => EntityKind::Tool,
            "SOF" => EntityKind::Software,
            "FIL" => EntityKind::FileName,
            "PTH" => EntityKind::FilePath,
            "IP" => EntityKind::IpAddress,
            "URL" => EntityKind::Url,
            "EML" => EntityKind::Email,
            "DOM" => EntityKind::Domain,
            "REG" => EntityKind::RegistryKey,
            "MD5" => EntityKind::HashMd5,
            "SH1" => EntityKind::HashSha1,
            "SH2" => EntityKind::HashSha256,
            _ => return None,
        })
    }
}

impl fmt::Display for EntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for EntityKind {
    type Err = UnknownEntityKind;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EntityKind::ALL
            .iter()
            .copied()
            .find(|k| k.label() == s)
            .ok_or_else(|| UnknownEntityKind(s.to_owned()))
    }
}

/// Error returned when a label string does not name an entity kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownEntityKind(pub String);

impl fmt::Display for UnknownEntityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown entity kind: {:?}", self.0)
    }
}

impl std::error::Error for UnknownEntityKind {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_every_kind_once() {
        let mut seen = std::collections::HashSet::new();
        for k in EntityKind::ALL {
            assert!(seen.insert(k), "duplicate kind {k}");
        }
        assert_eq!(seen.len(), 22);
    }

    #[test]
    fn partition_is_exhaustive() {
        for k in EntityKind::ALL {
            let memberships = [k.is_ioc(), k.is_report(), k.is_concept()]
                .iter()
                .filter(|b| **b)
                .count();
            assert_eq!(memberships, 1, "{k} must be in exactly one layer");
        }
    }

    #[test]
    fn label_round_trips() {
        for k in EntityKind::ALL {
            assert_eq!(k.label().parse::<EntityKind>().unwrap(), k);
        }
    }

    #[test]
    fn unknown_label_is_rejected() {
        assert!("Banana".parse::<EntityKind>().is_err());
    }

    #[test]
    fn tag_stems_round_trip_for_non_report_kinds() {
        for k in EntityKind::ALL {
            if k.is_report() {
                continue;
            }
            let stem = k.tag_stem();
            let back = EntityKind::from_tag_stem(stem).unwrap();
            // Campaign shares a stem with AttackReport only; all non-report
            // kinds must round-trip exactly.
            assert_eq!(back, k, "stem {stem} for {k}");
        }
    }

    #[test]
    fn report_categories_map_to_report_kinds() {
        for c in ReportCategory::ALL {
            assert!(c.entity_kind().is_report());
        }
    }

    #[test]
    fn serde_round_trip() {
        for k in EntityKind::ALL {
            let j = serde_json::to_string(&k).unwrap();
            let back: EntityKind = serde_json::from_str(&j).unwrap();
            assert_eq!(back, k);
        }
    }
}
