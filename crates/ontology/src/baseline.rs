//! Embedded baseline cyber ontologies for experiment E5.
//!
//! Paper §2.3: "Compared to other cyber ontologies [STIX, UCO], our ontology
//! targets a larger set." To make that claim measurable offline, the core
//! object/relationship vocabularies of STIX 2.1 and the UCO core are embedded
//! here as static data (types only — we do not reimplement those standards).

/// STIX 2.1 Domain Object types (SDOs), per the OASIS specification.
pub const STIX_CORE_OBJECT_TYPES: [&str; 18] = [
    "attack-pattern",
    "campaign",
    "course-of-action",
    "grouping",
    "identity",
    "incident",
    "indicator",
    "infrastructure",
    "intrusion-set",
    "location",
    "malware",
    "malware-analysis",
    "note",
    "observed-data",
    "opinion",
    "report",
    "threat-actor",
    "tool",
];

/// STIX 2.1 common relationship types used between SDOs.
pub const STIX_CORE_RELATIONSHIP_TYPES: [&str; 14] = [
    "uses",
    "targets",
    "indicates",
    "mitigates",
    "attributed-to",
    "compromises",
    "originates-from",
    "investigates",
    "remediates",
    "located-at",
    "based-on",
    "communicates-with",
    "consists-of",
    "delivers",
];

/// UCO (Unified Cybersecurity Ontology) core class names, per Syed et al.
pub const UCO_CORE_CLASSES: [&str; 12] = [
    "Means",
    "Consequences",
    "AttackPattern",
    "Attacker",
    "Attack",
    "Exploit",
    "ExploitTarget",
    "Indicator",
    "Malware",
    "CourseOfAction",
    "Vulnerability",
    "Weakness",
];

/// Coverage comparison row produced by experiment E5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageRow {
    pub ontology: &'static str,
    pub entity_types: usize,
    pub relation_types: usize,
}

/// Compute the E5 comparison table: SecurityKG vs the embedded baselines.
pub fn coverage_table() -> Vec<CoverageRow> {
    let ours = crate::Ontology::standard();
    vec![
        CoverageRow {
            ontology: "SecurityKG (this work)",
            entity_types: ours.entity_kind_count(),
            relation_types: ours.relation_kind_count(),
        },
        CoverageRow {
            ontology: "STIX 2.1 core",
            entity_types: STIX_CORE_OBJECT_TYPES.len(),
            relation_types: STIX_CORE_RELATIONSHIP_TYPES.len(),
        },
        CoverageRow {
            ontology: "UCO core",
            entity_types: UCO_CORE_CLASSES.len(),
            // UCO core defines object properties per class pair; the commonly
            // cited core set has 9 named relations.
            relation_types: 9,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_table_puts_securitykg_first_and_largest() {
        let table = coverage_table();
        assert_eq!(table[0].ontology, "SecurityKG (this work)");
        for row in &table[1..] {
            assert!(table[0].entity_types > row.entity_types, "{row:?}");
            assert!(table[0].relation_types > row.relation_types, "{row:?}");
        }
    }

    #[test]
    fn baselines_have_no_duplicates() {
        let unique: std::collections::HashSet<_> = STIX_CORE_OBJECT_TYPES.iter().collect();
        assert_eq!(unique.len(), STIX_CORE_OBJECT_TYPES.len());
        let unique: std::collections::HashSet<_> = STIX_CORE_RELATIONSHIP_TYPES.iter().collect();
        assert_eq!(unique.len(), STIX_CORE_RELATIONSHIP_TYPES.len());
        let unique: std::collections::HashSet<_> = UCO_CORE_CLASSES.iter().collect();
        assert_eq!(unique.len(), UCO_CORE_CLASSES.len());
    }
}
