//! Security knowledge ontology (paper §2.3, Figure 2).
//!
//! The ontology specifies the *types* of security-related entities and
//! relations that may appear in the security knowledge graph, together with a
//! schema of which `(subject kind, relation kind, object kind)` triplets are
//! well-formed. Every downstream component (extractors, connectors, the graph
//! store, the fusion stage) validates against this crate, so the knowledge
//! graph can never contain a triplet the ontology does not sanction.
//!
//! Compared to other cyber ontologies (STIX core, UCO core) the paper claims a
//! *larger* set of entity and relation types; [`baseline`] embeds those
//! baselines so experiment E5 can verify the claim mechanically.

pub mod attribute;
pub mod baseline;
pub mod entity;
pub mod relation;
pub mod schema;

pub use attribute::{AttributeKey, AttributeValue, Attributes};
pub use entity::{EntityKind, ReportCategory};
pub use relation::RelationKind;
pub use schema::{Ontology, SchemaError, TripletRule};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ontology_is_larger_than_baselines() {
        let ont = Ontology::standard();
        assert!(ont.entity_kind_count() > baseline::STIX_CORE_OBJECT_TYPES.len());
        assert!(ont.relation_kind_count() > baseline::STIX_CORE_RELATIONSHIP_TYPES.len());
    }

    #[test]
    fn drop_example_from_paper_validates() {
        // The paper's worked example: <MALWARE_A, DROP, FILE_A>.
        let ont = Ontology::standard();
        assert!(ont
            .validate_triplet(
                EntityKind::Malware,
                RelationKind::Drop,
                EntityKind::FileName
            )
            .is_ok());
    }
}
