//! The triplet schema: which `(subject, relation, object)` combinations are
//! well-formed (Figure 2's arrows).
//!
//! [`Ontology::standard`] builds the schema the paper's figure depicts. The
//! schema is data, not code, so applications can extend it (paper §2.1:
//! extensibility) by adding [`TripletRule`]s at runtime.

use crate::entity::EntityKind;
use crate::relation::RelationKind;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// One schema rule: `relation` may connect any subject kind in `subjects` to
/// any object kind in `objects`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TripletRule {
    pub relation: RelationKind,
    pub subjects: Vec<EntityKind>,
    pub objects: Vec<EntityKind>,
}

impl TripletRule {
    /// Build a rule from slices.
    pub fn new(relation: RelationKind, subjects: &[EntityKind], objects: &[EntityKind]) -> Self {
        TripletRule {
            relation,
            subjects: subjects.to_vec(),
            objects: objects.to_vec(),
        }
    }
}

/// Error returned when a triplet violates the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// No rule exists for this relation at all.
    UnknownRelation(RelationKind),
    /// The relation exists but does not admit this subject/object pair.
    IllegalTriplet {
        subject: EntityKind,
        relation: RelationKind,
        object: EntityKind,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownRelation(r) => write!(f, "no schema rule for relation {r}"),
            SchemaError::IllegalTriplet {
                subject,
                relation,
                object,
            } => {
                write!(f, "illegal triplet <{subject}, {relation}, {object}>")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// The full ontology: entity kinds, relation kinds, and the triplet schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ontology {
    rules: Vec<TripletRule>,
    /// Flattened `(subject, relation, object)` set for O(1) validation.
    #[serde(skip)]
    index: HashSet<(EntityKind, RelationKind, EntityKind)>,
}

impl Ontology {
    /// Build an ontology from explicit rules.
    pub fn from_rules(rules: Vec<TripletRule>) -> Self {
        let mut ont = Ontology {
            rules,
            index: HashSet::new(),
        };
        ont.rebuild_index();
        ont
    }

    /// The standard SecurityKG ontology of Figure 2.
    pub fn standard() -> Self {
        use EntityKind::*;
        use RelationKind::*;

        const ACTORS: &[EntityKind] = &[ThreatActor, Malware, Campaign];
        const INFRA: &[EntityKind] = &[IpAddress, Url, Domain];
        const ARTIFACTS: &[EntityKind] = &[FileName, FilePath, RegistryKey];
        const HASHES: &[EntityKind] = &[HashMd5, HashSha1, HashSha256];
        let all: Vec<EntityKind> = EntityKind::ALL.to_vec();
        let non_report: Vec<EntityKind> = EntityKind::ALL
            .iter()
            .copied()
            .filter(|k| !k.is_report())
            .collect();

        let rules = vec![
            TripletRule::new(Publishes, &[CtiVendor], &EntityKind::REPORTS),
            TripletRule::new(Mentions, &EntityKind::REPORTS, &non_report),
            TripletRule::new(
                Describes,
                &EntityKind::REPORTS,
                &[Malware, Vulnerability, Campaign, ThreatActor],
            ),
            TripletRule::new(Uses, ACTORS, &[Tool, Technique, Tactic, Software, Malware]),
            TripletRule::new(
                Targets,
                ACTORS,
                &[Software, IpAddress, Domain, Url, CtiVendor],
            ),
            TripletRule::new(AttributedTo, &[Malware, Campaign], &[ThreatActor]),
            TripletRule::new(Conducts, &[ThreatActor], &[Campaign]),
            TripletRule::new(Drop, &[Malware, Tool, ThreatActor], &[FileName, FilePath]),
            TripletRule::new(Exploits, ACTORS, &[Vulnerability]),
            TripletRule::new(ConnectsTo, &[Malware, Tool], INFRA),
            TripletRule::new(
                Downloads,
                &[Malware, Tool, ThreatActor],
                &[Url, Domain, IpAddress, FileName],
            ),
            TripletRule::new(
                Executes,
                &[Malware, Tool, ThreatActor],
                &[FileName, FilePath, Tool, Software],
            ),
            TripletRule::new(
                Creates,
                &[Malware, Tool],
                &[FileName, FilePath, RegistryKey],
            ),
            TripletRule::new(
                Modifies,
                &[Malware, Tool],
                &[FileName, FilePath, RegistryKey, Software],
            ),
            TripletRule::new(
                Deletes,
                &[Malware, Tool],
                &[FileName, FilePath, RegistryKey],
            ),
            TripletRule::new(InjectsInto, &[Malware, Tool], &[Software, FileName]),
            TripletRule::new(
                SpreadsVia,
                &[Malware],
                &[Software, Technique, Email, Domain],
            ),
            TripletRule::new(Encrypts, &[Malware], &[FileName, FilePath, Software]),
            TripletRule::new(Exfiltrates, &[Malware, ThreatActor], INFRA),
            TripletRule::new(Sends, &[Malware, ThreatActor], &[Email, Url]),
            TripletRule::new(Resolves, &[Malware], &[Domain]),
            TripletRule::new(PersistsVia, &[Malware], ARTIFACTS),
            TripletRule::new(Identifies, HASHES, &[FileName, FilePath, Malware]),
            TripletRule::new(Affects, &[Vulnerability], &[Software]),
            TripletRule::new(RelatedTo, &non_report, &all),
        ];
        Ontology::from_rules(rules)
    }

    fn rebuild_index(&mut self) {
        self.index.clear();
        for rule in &self.rules {
            for &s in &rule.subjects {
                for &o in &rule.objects {
                    self.index.insert((s, rule.relation, o));
                }
            }
        }
    }

    /// Add a rule at runtime (extensibility hook).
    pub fn add_rule(&mut self, rule: TripletRule) {
        for &s in &rule.subjects {
            for &o in &rule.objects {
                self.index.insert((s, rule.relation, o));
            }
        }
        self.rules.push(rule);
    }

    /// Validate a triplet against the schema.
    pub fn validate_triplet(
        &self,
        subject: EntityKind,
        relation: RelationKind,
        object: EntityKind,
    ) -> Result<(), SchemaError> {
        if self.index.contains(&(subject, relation, object)) {
            return Ok(());
        }
        if self.rules.iter().any(|r| r.relation == relation) {
            Err(SchemaError::IllegalTriplet {
                subject,
                relation,
                object,
            })
        } else {
            Err(SchemaError::UnknownRelation(relation))
        }
    }

    /// Whether a triplet is well-formed.
    pub fn allows(&self, subject: EntityKind, relation: RelationKind, object: EntityKind) -> bool {
        self.validate_triplet(subject, relation, object).is_ok()
    }

    /// All relation kinds that may connect `subject` to `object`, in
    /// declaration order.
    pub fn relations_between(&self, subject: EntityKind, object: EntityKind) -> Vec<RelationKind> {
        RelationKind::ALL
            .iter()
            .copied()
            .filter(|&r| self.index.contains(&(subject, r, object)))
            .collect()
    }

    /// Choose the relation kind for an extracted `(subject, verb, object)`
    /// triple: the verb's kind if the schema admits it, otherwise
    /// [`RelationKind::RelatedTo`] if admissible, otherwise `None`.
    pub fn resolve_extracted(
        &self,
        subject: EntityKind,
        verb_lemma: &str,
        object: EntityKind,
    ) -> Option<RelationKind> {
        if let Some(kind) = RelationKind::from_verb_lemma(verb_lemma) {
            if self.allows(subject, kind, object) {
                return Some(kind);
            }
        }
        if self.allows(subject, RelationKind::RelatedTo, object) {
            Some(RelationKind::RelatedTo)
        } else {
            None
        }
    }

    /// Number of entity kinds in the ontology.
    pub fn entity_kind_count(&self) -> usize {
        EntityKind::ALL.len()
    }

    /// Number of relation kinds in the ontology.
    pub fn relation_kind_count(&self) -> usize {
        RelationKind::ALL.len()
    }

    /// Number of distinct legal triplets.
    pub fn triplet_count(&self) -> usize {
        self.index.len()
    }

    /// The schema rules.
    pub fn rules(&self) -> &[TripletRule] {
        &self.rules
    }
}

impl Default for Ontology {
    fn default() -> Self {
        Ontology::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use EntityKind::*;
    use RelationKind::*;

    #[test]
    fn standard_schema_accepts_figure_examples() {
        let ont = Ontology::standard();
        assert!(ont.allows(Malware, Drop, FileName));
        assert!(ont.allows(ThreatActor, Uses, Technique));
        assert!(ont.allows(Malware, Exploits, Vulnerability));
        assert!(ont.allows(CtiVendor, Publishes, MalwareReport));
        assert!(ont.allows(MalwareReport, Mentions, HashSha256));
        assert!(ont.allows(Vulnerability, Affects, Software));
        assert!(ont.allows(HashMd5, Identifies, FileName));
    }

    #[test]
    fn standard_schema_rejects_nonsense() {
        let ont = Ontology::standard();
        assert!(!ont.allows(FileName, Drop, Malware));
        assert!(!ont.allows(IpAddress, Publishes, MalwareReport));
        assert!(!ont.allows(Url, Exploits, Vulnerability));
        // Reports are never subjects of behavioural relations.
        assert!(!ont.allows(MalwareReport, Drop, FileName));
    }

    #[test]
    fn error_distinguishes_unknown_relation() {
        let ont = Ontology::from_rules(vec![TripletRule::new(Drop, &[Malware], &[FileName])]);
        assert_eq!(
            ont.validate_triplet(Malware, Encrypts, FileName),
            Err(SchemaError::UnknownRelation(Encrypts))
        );
        assert_eq!(
            ont.validate_triplet(Tool, Drop, FileName),
            Err(SchemaError::IllegalTriplet {
                subject: Tool,
                relation: Drop,
                object: FileName
            })
        );
    }

    #[test]
    fn resolve_extracted_falls_back_to_related_to() {
        let ont = Ontology::standard();
        // "drop" between Malware and FileName resolves to DROP.
        assert_eq!(ont.resolve_extracted(Malware, "drop", FileName), Some(Drop));
        // "drop" between Malware and Domain is not admissible as DROP but the
        // generic RELATED_TO edge still captures it.
        assert_eq!(
            ont.resolve_extracted(Malware, "drop", Domain),
            Some(RelatedTo)
        );
        // Unknown verbs degrade to RELATED_TO too.
        assert_eq!(
            ont.resolve_extracted(Malware, "florble", Domain),
            Some(RelatedTo)
        );
        // Reports can never be subjects of extracted relations.
        assert_eq!(ont.resolve_extracted(MalwareReport, "drop", FileName), None);
    }

    #[test]
    fn relations_between_is_ordered_and_complete() {
        let ont = Ontology::standard();
        let rels = ont.relations_between(Malware, FileName);
        assert!(rels.contains(&Drop));
        assert!(rels.contains(&Encrypts));
        assert!(rels.contains(&RelatedTo));
        let mut sorted = rels.clone();
        sorted.sort_by_key(|r| RelationKind::ALL.iter().position(|k| k == r).unwrap());
        assert_eq!(rels, sorted);
    }

    #[test]
    fn add_rule_extends_schema() {
        let mut ont = Ontology::standard();
        assert!(!ont.allows(Software, Affects, Software));
        ont.add_rule(TripletRule::new(Affects, &[Software], &[Software]));
        assert!(ont.allows(Software, Affects, Software));
    }

    #[test]
    fn serde_round_trip_rebuilds_index() {
        let ont = Ontology::standard();
        let json = serde_json::to_string(&ont).unwrap();
        let back: Ontology = serde_json::from_str(&json).unwrap();
        // The index is #[serde(skip)]; reconstruct and verify behaviour.
        let back = Ontology::from_rules(back.rules);
        assert!(back.allows(Malware, Drop, FileName));
        assert_eq!(back.triplet_count(), ont.triplet_count());
    }
}
