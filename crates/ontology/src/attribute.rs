//! Entity and relation attributes (paper §2.3: entities have "attributes in
//! the form of key-value pairs").
//!
//! Attributes are an ordered map from well-known keys to typed values. The
//! graph store persists them verbatim; the Cypher engine can filter on them.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Well-known attribute keys plus an escape hatch for source-specific keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttributeKey {
    /// Canonical display name of the entity.
    Name,
    /// Free-text description (used for exact-match merging in §2.5).
    Description,
    /// Source URL the fact was extracted from.
    SourceUrl,
    /// Identifier of the report the fact came from.
    ReportId,
    /// Crawl timestamp (simulated epoch milliseconds).
    Timestamp,
    /// Name of the CTI vendor.
    Vendor,
    /// Extractor confidence in `[0, 1]`.
    Confidence,
    /// The raw verb that produced a `RELATED_TO` edge.
    Verb,
    /// Aliases accumulated during knowledge fusion.
    Aliases,
    /// Any other key, preserved verbatim from the source.
    Other(String),
}

impl AttributeKey {
    /// The canonical property name used in the graph store / Cypher.
    pub fn as_str(&self) -> &str {
        match self {
            AttributeKey::Name => "name",
            AttributeKey::Description => "description",
            AttributeKey::SourceUrl => "source_url",
            AttributeKey::ReportId => "report_id",
            AttributeKey::Timestamp => "timestamp",
            AttributeKey::Vendor => "vendor",
            AttributeKey::Confidence => "confidence",
            AttributeKey::Verb => "verb",
            AttributeKey::Aliases => "aliases",
            AttributeKey::Other(s) => s,
        }
    }

    /// Parse a property name back into a key; unknown names become `Other`.
    pub fn from_name(name: &str) -> AttributeKey {
        match name {
            "name" => AttributeKey::Name,
            "description" => AttributeKey::Description,
            "source_url" => AttributeKey::SourceUrl,
            "report_id" => AttributeKey::ReportId,
            "timestamp" => AttributeKey::Timestamp,
            "vendor" => AttributeKey::Vendor,
            "confidence" => AttributeKey::Confidence,
            "verb" => AttributeKey::Verb,
            "aliases" => AttributeKey::Aliases,
            other => AttributeKey::Other(other.to_owned()),
        }
    }
}

impl fmt::Display for AttributeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeValue {
    Text(String),
    Integer(i64),
    Float(f64),
    Bool(bool),
    /// A list of strings (e.g. accumulated aliases).
    List(Vec<String>),
}

impl AttributeValue {
    /// The value as text, if it is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttributeValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is one.
    pub fn as_integer(&self) -> Option<i64> {
        match self {
            AttributeValue::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a float; integers coerce.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            AttributeValue::Float(f) => Some(*f),
            AttributeValue::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }
}

impl From<&str> for AttributeValue {
    fn from(s: &str) -> Self {
        AttributeValue::Text(s.to_owned())
    }
}

impl From<String> for AttributeValue {
    fn from(s: String) -> Self {
        AttributeValue::Text(s)
    }
}

impl From<i64> for AttributeValue {
    fn from(i: i64) -> Self {
        AttributeValue::Integer(i)
    }
}

impl From<f64> for AttributeValue {
    fn from(f: f64) -> Self {
        AttributeValue::Float(f)
    }
}

impl From<bool> for AttributeValue {
    fn from(b: bool) -> Self {
        AttributeValue::Bool(b)
    }
}

impl fmt::Display for AttributeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributeValue::Text(s) => f.write_str(s),
            AttributeValue::Integer(i) => write!(f, "{i}"),
            AttributeValue::Float(x) => write!(f, "{x}"),
            AttributeValue::Bool(b) => write!(f, "{b}"),
            AttributeValue::List(xs) => write!(f, "[{}]", xs.join(", ")),
        }
    }
}

/// An ordered key → value attribute map.
///
/// `BTreeMap` keeps serialisation deterministic, which the pipeline relies on
/// for byte-identical intermediate representations across hosts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Attributes(BTreeMap<AttributeKey, AttributeValue>);

impl Attributes {
    /// An empty attribute map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace a value; returns `self` for builder-style chaining.
    pub fn with(mut self, key: AttributeKey, value: impl Into<AttributeValue>) -> Self {
        self.set(key, value);
        self
    }

    /// Insert or replace a value.
    pub fn set(&mut self, key: AttributeKey, value: impl Into<AttributeValue>) {
        self.0.insert(key, value.into());
    }

    /// Look up a value.
    pub fn get(&self, key: &AttributeKey) -> Option<&AttributeValue> {
        self.0.get(key)
    }

    /// Look up a text value by key.
    pub fn text(&self, key: &AttributeKey) -> Option<&str> {
        self.get(key).and_then(AttributeValue::as_text)
    }

    /// Remove a value, returning it if present.
    pub fn remove(&mut self, key: &AttributeKey) -> Option<AttributeValue> {
        self.0.remove(key)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&AttributeKey, &AttributeValue)> {
        self.0.iter()
    }

    /// Merge `other` into `self`. Existing keys win (the fusion stage relies
    /// on this to prevent late reports from clobbering earlier attributes);
    /// `Aliases` lists are unioned instead.
    pub fn merge_preferring_self(&mut self, other: &Attributes) {
        for (k, v) in other.iter() {
            match (self.0.get_mut(k), v) {
                (Some(AttributeValue::List(mine)), AttributeValue::List(theirs)) => {
                    for alias in theirs {
                        if !mine.contains(alias) {
                            mine.push(alias.clone());
                        }
                    }
                }
                (Some(_), _) => {}
                (None, _) => {
                    self.0.insert(k.clone(), v.clone());
                }
            }
        }
    }
}

impl FromIterator<(AttributeKey, AttributeValue)> for Attributes {
    fn from_iter<T: IntoIterator<Item = (AttributeKey, AttributeValue)>>(iter: T) -> Self {
        Attributes(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let a = Attributes::new()
            .with(AttributeKey::Name, "wannacry")
            .with(AttributeKey::Confidence, 0.97);
        assert_eq!(a.text(&AttributeKey::Name), Some("wannacry"));
        assert_eq!(
            a.get(&AttributeKey::Confidence).unwrap().as_float(),
            Some(0.97)
        );
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn merge_prefers_self_but_unions_lists() {
        let mut a = Attributes::new().with(AttributeKey::Name, "wannacry").with(
            AttributeKey::Aliases,
            AttributeValue::List(vec!["wcry".into()]),
        );
        let b = Attributes::new()
            .with(AttributeKey::Name, "WannaCrypt")
            .with(
                AttributeKey::Aliases,
                AttributeValue::List(vec!["wcry".into(), "wanna decryptor".into()]),
            )
            .with(AttributeKey::Vendor, "securelist");
        a.merge_preferring_self(&b);
        assert_eq!(a.text(&AttributeKey::Name), Some("wannacry"));
        assert_eq!(a.text(&AttributeKey::Vendor), Some("securelist"));
        match a.get(&AttributeKey::Aliases).unwrap() {
            AttributeValue::List(xs) => {
                assert_eq!(xs, &vec!["wcry".to_owned(), "wanna decryptor".to_owned()])
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn key_name_round_trip() {
        for key in [
            AttributeKey::Name,
            AttributeKey::Description,
            AttributeKey::SourceUrl,
            AttributeKey::ReportId,
            AttributeKey::Timestamp,
            AttributeKey::Vendor,
            AttributeKey::Confidence,
            AttributeKey::Verb,
            AttributeKey::Aliases,
            AttributeKey::Other("custom_field".into()),
        ] {
            assert_eq!(AttributeKey::from_name(key.as_str()), key);
        }
    }

    #[test]
    fn serde_round_trip() {
        let a = Attributes::new()
            .with(AttributeKey::Name, "emotet")
            .with(AttributeKey::Timestamp, 1_600_000_000_000_i64);
        let j = serde_json::to_string(&a).unwrap();
        let back: Attributes = serde_json::from_str(&j).unwrap();
        assert_eq!(back, a);
    }
}
