//! Relation kinds of the security knowledge ontology (Figure 2).
//!
//! Relations split into *structural* relations that the backend creates
//! deterministically (a vendor PUBLISHES a report, a report MENTIONS an
//! entity) and *behavioural* relations extracted from text by the relation
//! extractor (malware DROPs a file, an actor USEs a tool, ...). Behavioural
//! relation kinds carry the set of verb lemmas the extractor maps onto them.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Every relation kind in the security knowledge ontology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RelationKind {
    // ---- structural ------------------------------------------------------
    /// CTI vendor published a report.
    Publishes,
    /// A report mentions an entity (catch-all provenance edge).
    Mentions,
    /// A report primarily describes an entity (its subject).
    Describes,

    // ---- behavioural: actor-level ---------------------------------------
    /// Threat actor / malware uses a tool, technique or piece of software.
    Uses,
    /// Threat actor / campaign targets software, infrastructure or sector.
    Targets,
    /// Campaign or malware is attributed to a threat actor.
    AttributedTo,
    /// Actor or malware launches / conducts a campaign.
    Conducts,

    // ---- behavioural: malware behaviour ----------------------------------
    /// Malware drops a file (the paper's worked example).
    Drop,
    /// Malware or actor exploits a vulnerability.
    Exploits,
    /// Malware connects / beacons to network infrastructure.
    ConnectsTo,
    /// Malware downloads a payload from a URL / domain / IP.
    Downloads,
    /// Malware executes a file or tool.
    Executes,
    /// Malware creates a file, registry key or process artifact.
    Creates,
    /// Malware modifies a file or registry key.
    Modifies,
    /// Malware deletes a file or registry key.
    Deletes,
    /// Malware injects into software (process injection).
    InjectsInto,
    /// Malware spreads to / propagates via software or infrastructure.
    SpreadsVia,
    /// Malware encrypts files (ransomware behaviour).
    Encrypts,
    /// Malware steals / exfiltrates data to infrastructure.
    Exfiltrates,
    /// Malware sends email (spam / phishing delivery).
    Sends,
    /// Malware registers or resolves a domain (DGA, kill-switch).
    Resolves,
    /// Malware achieves persistence via a registry key or file.
    PersistsVia,
    /// A hash identifies a file / malware sample.
    Identifies,
    /// A vulnerability affects software.
    Affects,
    /// Generic extracted relation whose verb did not map to a specific kind;
    /// the verb lemma is preserved in the edge attributes.
    RelatedTo,
}

impl RelationKind {
    /// All relation kinds, in declaration order.
    pub const ALL: [RelationKind; 25] = [
        RelationKind::Publishes,
        RelationKind::Mentions,
        RelationKind::Describes,
        RelationKind::Uses,
        RelationKind::Targets,
        RelationKind::AttributedTo,
        RelationKind::Conducts,
        RelationKind::Drop,
        RelationKind::Exploits,
        RelationKind::ConnectsTo,
        RelationKind::Downloads,
        RelationKind::Executes,
        RelationKind::Creates,
        RelationKind::Modifies,
        RelationKind::Deletes,
        RelationKind::InjectsInto,
        RelationKind::SpreadsVia,
        RelationKind::Encrypts,
        RelationKind::Exfiltrates,
        RelationKind::Sends,
        RelationKind::Resolves,
        RelationKind::PersistsVia,
        RelationKind::Identifies,
        RelationKind::Affects,
        RelationKind::RelatedTo,
    ];

    /// The canonical edge type string used in the graph store and Cypher
    /// (UPPER_SNAKE_CASE, matching Neo4j conventions).
    pub fn label(self) -> &'static str {
        match self {
            RelationKind::Publishes => "PUBLISHES",
            RelationKind::Mentions => "MENTIONS",
            RelationKind::Describes => "DESCRIBES",
            RelationKind::Uses => "USES",
            RelationKind::Targets => "TARGETS",
            RelationKind::AttributedTo => "ATTRIBUTED_TO",
            RelationKind::Conducts => "CONDUCTS",
            RelationKind::Drop => "DROP",
            RelationKind::Exploits => "EXPLOITS",
            RelationKind::ConnectsTo => "CONNECTS_TO",
            RelationKind::Downloads => "DOWNLOADS",
            RelationKind::Executes => "EXECUTES",
            RelationKind::Creates => "CREATES",
            RelationKind::Modifies => "MODIFIES",
            RelationKind::Deletes => "DELETES",
            RelationKind::InjectsInto => "INJECTS_INTO",
            RelationKind::SpreadsVia => "SPREADS_VIA",
            RelationKind::Encrypts => "ENCRYPTS",
            RelationKind::Exfiltrates => "EXFILTRATES",
            RelationKind::Sends => "SENDS",
            RelationKind::Resolves => "RESOLVES",
            RelationKind::PersistsVia => "PERSISTS_VIA",
            RelationKind::Identifies => "IDENTIFIES",
            RelationKind::Affects => "AFFECTS",
            RelationKind::RelatedTo => "RELATED_TO",
        }
    }

    /// Whether this relation is created structurally by the backend rather
    /// than extracted from text.
    pub fn is_structural(self) -> bool {
        matches!(
            self,
            RelationKind::Publishes | RelationKind::Mentions | RelationKind::Describes
        )
    }

    /// Verb lemmas that the relation extractor maps onto this kind.
    ///
    /// The mapping is many-to-one: e.g. "drop", "deposit" and "plant" all
    /// indicate [`RelationKind::Drop`]. Structural kinds have no verbs.
    pub fn verb_lemmas(self) -> &'static [&'static str] {
        match self {
            RelationKind::Publishes | RelationKind::Mentions | RelationKind::Describes => &[],
            RelationKind::Uses => &["use", "employ", "leverage", "utilize", "deploy", "abuse"],
            RelationKind::Targets => &["target", "attack", "compromise", "infect", "victimize"],
            RelationKind::AttributedTo => &["attribute", "link", "associate", "tie"],
            RelationKind::Conducts => &["conduct", "launch", "run", "orchestrate", "operate"],
            RelationKind::Drop => &["drop", "deposit", "plant", "write"],
            RelationKind::Exploits => &["exploit", "weaponize", "trigger"],
            RelationKind::ConnectsTo => &["connect", "beacon", "communicate", "contact", "reach"],
            RelationKind::Downloads => &["download", "fetch", "retrieve", "pull"],
            RelationKind::Executes => &["execute", "launch", "run", "spawn", "invoke", "start"],
            RelationKind::Creates => &["create", "generate", "install", "add"],
            RelationKind::Modifies => &["modify", "change", "alter", "patch", "tamper", "edit"],
            RelationKind::Deletes => &["delete", "remove", "wipe", "erase"],
            RelationKind::InjectsInto => &["inject", "hollow", "hijack"],
            RelationKind::SpreadsVia => &["spread", "propagate", "worm", "move"],
            RelationKind::Encrypts => &["encrypt", "lock", "ransom", "scramble"],
            RelationKind::Exfiltrates => &["exfiltrate", "steal", "harvest", "collect", "upload"],
            RelationKind::Sends => &["send", "email", "deliver", "distribute", "mail"],
            RelationKind::Resolves => &["resolve", "register", "query", "lookup"],
            RelationKind::PersistsVia => &["persist", "survive", "autostart", "maintain"],
            RelationKind::Identifies => &["identify", "match", "hash", "correspond"],
            RelationKind::Affects => &["affect", "impact", "concern"],
            RelationKind::RelatedTo => &[],
        }
    }

    /// Map a verb lemma to the behavioural relation kind it indicates, if any.
    ///
    /// When several kinds share a lemma ("launch", "run") the earlier kind in
    /// [`RelationKind::ALL`] wins; the tie-break is deterministic and covered
    /// by tests.
    pub fn from_verb_lemma(lemma: &str) -> Option<RelationKind> {
        RelationKind::ALL
            .iter()
            .copied()
            .find(|k| k.verb_lemmas().contains(&lemma))
    }
}

impl fmt::Display for RelationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for RelationKind {
    type Err = UnknownRelationKind;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        RelationKind::ALL
            .iter()
            .copied()
            .find(|k| k.label() == s)
            .ok_or_else(|| UnknownRelationKind(s.to_owned()))
    }
}

/// Error returned when a label string does not name a relation kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownRelationKind(pub String);

impl fmt::Display for UnknownRelationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown relation kind: {:?}", self.0)
    }
}

impl std::error::Error for UnknownRelationKind {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for k in RelationKind::ALL {
            assert_eq!(k.label().parse::<RelationKind>().unwrap(), k);
        }
    }

    #[test]
    fn verb_mapping_hits_expected_kinds() {
        assert_eq!(
            RelationKind::from_verb_lemma("drop"),
            Some(RelationKind::Drop)
        );
        assert_eq!(
            RelationKind::from_verb_lemma("exploit"),
            Some(RelationKind::Exploits)
        );
        assert_eq!(
            RelationKind::from_verb_lemma("beacon"),
            Some(RelationKind::ConnectsTo)
        );
        assert_eq!(
            RelationKind::from_verb_lemma("encrypt"),
            Some(RelationKind::Encrypts)
        );
        assert_eq!(RelationKind::from_verb_lemma("photosynthesize"), None);
    }

    #[test]
    fn shared_lemma_tiebreak_is_stable() {
        // "launch" appears for both Conducts and Executes; Conducts is
        // declared earlier and must win deterministically.
        assert_eq!(
            RelationKind::from_verb_lemma("launch"),
            Some(RelationKind::Conducts)
        );
    }

    #[test]
    fn structural_kinds_have_no_verbs() {
        for k in RelationKind::ALL {
            if k.is_structural() {
                assert!(k.verb_lemmas().is_empty(), "{k}");
            }
        }
    }

    #[test]
    fn all_is_duplicate_free() {
        let mut seen = std::collections::HashSet::new();
        for k in RelationKind::ALL {
            assert!(seen.insert(k));
        }
        assert_eq!(seen.len(), 25);
    }
}
