//! The immutable published snapshot readers query against.
//!
//! A [`KgSnapshot`] owns a frozen copy of the graph, the BM25 index and a
//! precomputed adjacency table (the explorer's expansion structure), plus the
//! graph's canonical digest. Once built it is never mutated — readers share
//! it via `Arc` and every answer it produces is consistent with exactly this
//! one graph state, whatever the ingest writer does meanwhile.

use kg_graph::{cypher::CypherError, GraphStore, NodeId, QueryResult, Value};
use kg_ir::fnv1a64;
use kg_search::SearchIndex;
use std::collections::HashMap;

/// An immutable, self-contained read snapshot of the knowledge base.
pub struct KgSnapshot {
    /// Publish sequence number, assigned by [`crate::KgServe::publish`]
    /// (0 until published).
    version: u64,
    /// FNV-1a over the graph's canonical JSON — the same fingerprint
    /// `securitykg::graph_digest` computes, so serving and durable-ingest
    /// snapshots are comparable.
    digest: u64,
    graph: GraphStore,
    search: SearchIndex<NodeId>,
    /// node → distinct neighbours (both directions, edge order) — the
    /// explorer's expansion adjacency, precomputed once per snapshot so
    /// k-hop expansion never walks edge lists under load.
    adjacency: HashMap<NodeId, Vec<NodeId>>,
}

/// A normalized serving query: the three read paths of the paper's UI
/// (§2.6 — Elasticsearch keyword search, Neo4j Cypher, node expansion).
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// BM25 keyword search (plus direct entity-name hits), top `k`.
    Search { q: String, k: usize },
    /// Read-only Cypher.
    Cypher { q: String },
    /// k-hop neighbourhood of the entity named `name` (any entity label),
    /// capped at `cap` nodes.
    Expand {
        name: String,
        hops: usize,
        cap: usize,
    },
}

impl Query {
    /// Canonical cache-key text: whitespace collapsed, parameters embedded,
    /// search terms lowercased (the tokenizer lowercases anyway). Two
    /// queries with the same key have the same answer on a given snapshot.
    pub fn cache_key(&self) -> String {
        match self {
            Query::Search { q, k } => format!("s:{k}:{}", normalize(q).to_lowercase()),
            Query::Cypher { q } => format!("c:{}", normalize(q)),
            Query::Expand { name, hops, cap } => {
                format!("x:{hops}:{cap}:{}", normalize(name).to_lowercase())
            }
        }
    }
}

/// Collapse runs of whitespace to single spaces and trim the ends.
pub fn normalize(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// What a query evaluates to. `Error` is an answer too: a malformed Cypher
/// query fails identically on every snapshot with the same digest, so it is
/// cacheable like any other result.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// Node ids (search and expand paths).
    Nodes(Vec<NodeId>),
    /// A Cypher projection.
    Rows {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
    /// A query-level failure (parse/execution error), rendered.
    Error(String),
}

impl Answer {
    /// Every node id referenced by the answer (for consistency checks).
    pub fn node_ids(&self) -> Vec<NodeId> {
        match self {
            Answer::Nodes(ids) => ids.clone(),
            Answer::Rows { rows, .. } => {
                let mut out = Vec::new();
                for row in rows {
                    for value in row {
                        if let Value::Node(id) = value {
                            if !out.contains(id) {
                                out.push(*id);
                            }
                        }
                    }
                }
                out
            }
            Answer::Error(_) => Vec::new(),
        }
    }
}

impl KgSnapshot {
    /// Freeze a graph + index pair into a publishable snapshot: computes the
    /// canonical digest and the expansion adjacency.
    pub fn build(
        graph: GraphStore,
        search: SearchIndex<NodeId>,
    ) -> Result<KgSnapshot, serde_json::Error> {
        let digest = fnv1a64(&serde_json::to_vec(&graph)?);
        let adjacency = graph
            .all_nodes()
            .map(|node| (node.id, graph.neighbors(node.id)))
            .collect();
        Ok(KgSnapshot {
            version: 0,
            digest,
            graph,
            search,
            adjacency,
        })
    }

    pub(crate) fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Publish sequence number (0 until published).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Canonical graph digest.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The frozen graph.
    pub fn graph(&self) -> &GraphStore {
        &self.graph
    }

    /// The frozen keyword index.
    pub fn search_index(&self) -> &SearchIndex<NodeId> {
        &self.search
    }

    /// Live nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Live edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Resolve an entity by canonical name under any entity label.
    pub fn entity_by_name(&self, name: &str) -> Option<NodeId> {
        let name = name.to_lowercase();
        kg_ontology::EntityKind::ALL
            .iter()
            .find_map(|kind| self.graph.node_by_name(kind.label(), &name))
    }

    /// Keyword search: direct entity-name hits first, then BM25 hits —
    /// the same composition as `securitykg::KnowledgeBase::keyword_search`.
    pub fn keyword_search(&self, query: &str, k: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        let lowered = query.to_lowercase();
        for kind in kg_ontology::EntityKind::ALL {
            if let Some(id) = self.graph.node_by_name(kind.label(), &lowered) {
                if !out.contains(&id) {
                    out.push(id);
                }
            }
        }
        for hit in self.search.search(query, k) {
            if !out.contains(&hit.doc) {
                out.push(hit.doc);
            }
        }
        out.truncate(k.max(1));
        out
    }

    /// Read-only Cypher against the frozen graph.
    pub fn cypher(&self, query: &str) -> Result<QueryResult, CypherError> {
        self.graph.query_readonly(query)
    }

    /// BFS over the precomputed adjacency: `start` plus everything within
    /// `hops`, in BFS order, capped at `cap` nodes.
    pub fn expand(&self, start: NodeId, hops: usize, cap: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        if self.graph.node(start).is_none() || cap == 0 {
            return out;
        }
        let mut frontier = vec![start];
        let mut seen: std::collections::HashSet<NodeId> = [start].into_iter().collect();
        out.push(start);
        for _ in 0..hops {
            let mut next = Vec::new();
            for &node in &frontier {
                for &neighbor in self.adjacency.get(&node).map_or(&[][..], Vec::as_slice) {
                    if out.len() >= cap {
                        return out;
                    }
                    if seen.insert(neighbor) {
                        out.push(neighbor);
                        next.push(neighbor);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        out
    }

    /// Evaluate a [`Query`] fresh against this snapshot (no cache).
    pub fn answer(&self, query: &Query) -> Answer {
        match query {
            Query::Search { q, k } => Answer::Nodes(self.keyword_search(q, *k)),
            Query::Cypher { q } => match self.cypher(q) {
                Ok(result) => Answer::Rows {
                    columns: result.columns,
                    rows: result.rows,
                },
                Err(e) => Answer::Error(e.to_string()),
            },
            Query::Expand { name, hops, cap } => match self.entity_by_name(name) {
                Some(id) => Answer::Nodes(self.expand(id, *hops, *cap)),
                None => Answer::Nodes(Vec::new()),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::Value;

    fn snapshot() -> KgSnapshot {
        let mut graph = GraphStore::new();
        let m = graph.create_node("Malware", [("name", Value::from("wannacry"))]);
        let f = graph.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        let d = graph.create_node("Domain", [("name", Value::from("kill.switch.test"))]);
        graph
            .create_edge(m, "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        graph
            .create_edge(m, "CONNECTS_TO", d, [] as [(&str, Value); 0])
            .unwrap();
        let mut search = SearchIndex::default();
        search.add(m, "wannacry ransomware drops tasksche.exe");
        search.add(f, "tasksche.exe dropped file");
        KgSnapshot::build(graph, search).unwrap()
    }

    #[test]
    fn digest_matches_canonical_graph_serialisation() {
        let snap = snapshot();
        let expected = fnv1a64(&serde_json::to_vec(snap.graph()).unwrap());
        assert_eq!(snap.digest(), expected);
        assert_eq!(snap.version(), 0);
    }

    #[test]
    fn keyword_search_prefers_named_entity() {
        let snap = snapshot();
        let m = snap.graph().node_by_name("Malware", "wannacry").unwrap();
        let hits = snap.keyword_search("wannacry", 5);
        assert_eq!(hits.first(), Some(&m));
    }

    #[test]
    fn expand_bfs_layers_and_cap() {
        let snap = snapshot();
        let m = snap.graph().node_by_name("Malware", "wannacry").unwrap();
        let hood = snap.expand(m, 1, 10);
        assert_eq!(hood.len(), 3);
        assert_eq!(hood[0], m);
        assert_eq!(snap.expand(m, 1, 2).len(), 2);
        assert_eq!(snap.expand(m, 0, 10), vec![m]);
        assert!(snap.expand(NodeId(999), 1, 10).is_empty());
    }

    #[test]
    fn answers_cover_all_query_kinds() {
        let snap = snapshot();
        let m = snap.graph().node_by_name("Malware", "wannacry").unwrap();
        assert_eq!(
            snap.answer(&Query::Search {
                q: "wannacry".into(),
                k: 5
            })
            .node_ids()
            .first(),
            Some(&m)
        );
        match snap.answer(&Query::Cypher {
            q: "MATCH (n:Malware) RETURN n".into(),
        }) {
            Answer::Rows { rows, .. } => assert_eq!(rows.len(), 1),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            snap.answer(&Query::Cypher {
                q: "NOT CYPHER".into()
            }),
            Answer::Error(_)
        ));
        assert_eq!(
            snap.answer(&Query::Expand {
                name: "WannaCry".into(),
                hops: 1,
                cap: 10
            })
            .node_ids()
            .len(),
            3
        );
    }

    #[test]
    fn cache_keys_normalize_whitespace_and_case() {
        let a = Query::Search {
            q: "  WannaCry   ransomware ".into(),
            k: 5,
        };
        let b = Query::Search {
            q: "wannacry ransomware".into(),
            k: 5,
        };
        assert_eq!(a.cache_key(), b.cache_key());
        let c = Query::Cypher {
            q: "MATCH (n)  RETURN n".into(),
        };
        let d = Query::Cypher {
            q: "MATCH (n) RETURN n".into(),
        };
        assert_eq!(c.cache_key(), d.cache_key());
        // Cypher string literals stay case-sensitive.
        assert_ne!(
            Query::Cypher {
                q: "MATCH (n {name: 'A'}) RETURN n".into()
            }
            .cache_key(),
            Query::Cypher {
                q: "MATCH (n {name: 'a'}) RETURN n".into()
            }
            .cache_key()
        );
    }
}
