//! The immutable published snapshot readers query against.
//!
//! A [`KgSnapshot`] owns a frozen copy of the graph, the BM25 index and a
//! precomputed adjacency table (the explorer's expansion structure), plus the
//! graph's canonical digest. Once built it is never mutated — readers share
//! it via `Arc` and every answer it produces is consistent with exactly this
//! one graph state, whatever the ingest writer does meanwhile.

use kg_graph::store::{Edge, EdgeId, Node};
use kg_graph::{cypher::CypherError, GraphSnapshot, GraphStore, NodeId, QueryResult, Value};
use kg_search::SearchIndex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// How a snapshot was frozen: full rebuild (the oracle) or incrementally
/// via [`crate::EpochBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotMode {
    /// Digest and adjacency recomputed from scratch ([`KgSnapshot::build`]).
    Full,
    /// Digest and adjacency carried forward and patched with the delta.
    Incremental,
}

impl SnapshotMode {
    /// Stable lowercase label for traces and stats output.
    pub fn label(&self) -> &'static str {
        match self {
            SnapshotMode::Full => "full",
            SnapshotMode::Incremental => "incremental",
        }
    }
}

/// An immutable, self-contained read snapshot of the knowledge base.
pub struct KgSnapshot {
    /// Publish sequence number, assigned by [`crate::KgServe::publish`]
    /// (0 until published).
    version: u64,
    /// The graph's content digest — `GraphStore::digest()`, the same
    /// commutative per-element fingerprint `securitykg::graph_digest`
    /// computes, so serving and durable-ingest snapshots are comparable.
    digest: u64,
    graph: GraphStore,
    search: SearchIndex<NodeId>,
    /// node → distinct neighbours (both directions, edge order) — the
    /// explorer's expansion adjacency, precomputed once per snapshot so
    /// k-hop expansion never walks edge lists under load. Lists are `Arc`'d:
    /// the incremental builder re-freezes only delta-touched entries.
    adjacency: HashMap<NodeId, Arc<Vec<NodeId>>>,
    /// Wall time spent freezing this snapshot, microseconds.
    build_us: u64,
    /// Full rebuild or incremental patch.
    mode: SnapshotMode,
}

/// A normalized serving query: the three read paths of the paper's UI
/// (§2.6 — Elasticsearch keyword search, Neo4j Cypher, node expansion).
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// BM25 keyword search (plus direct entity-name hits), top `k`.
    Search { q: String, k: usize },
    /// Read-only Cypher.
    Cypher { q: String },
    /// k-hop neighbourhood of the entity named `name` (any entity label),
    /// capped at `cap` nodes.
    Expand {
        name: String,
        hops: usize,
        cap: usize,
    },
}

impl Query {
    /// Canonical cache-key text: whitespace collapsed, parameters embedded,
    /// search terms lowercased (the tokenizer lowercases anyway). Two
    /// queries with the same key have the same answer on a given snapshot.
    pub fn cache_key(&self) -> String {
        match self {
            Query::Search { q, k } => format!("s:{k}:{}", normalize(q).to_lowercase()),
            Query::Cypher { q } => format!("c:{}", normalize(q)),
            Query::Expand { name, hops, cap } => {
                format!("x:{hops}:{cap}:{}", normalize(name).to_lowercase())
            }
        }
    }
}

/// Collapse runs of whitespace to single spaces and trim the ends.
pub fn normalize(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// What a query evaluates to. `Error` is an answer too: a malformed Cypher
/// query fails identically on every snapshot with the same digest, so it is
/// cacheable like any other result.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// Node ids (search and expand paths).
    Nodes(Vec<NodeId>),
    /// A Cypher projection.
    Rows {
        columns: Vec<String>,
        rows: Vec<Vec<Value>>,
    },
    /// A query-level failure (parse/execution error), rendered.
    Error(String),
}

impl Answer {
    /// Every node id referenced by the answer (for consistency checks).
    pub fn node_ids(&self) -> Vec<NodeId> {
        match self {
            Answer::Nodes(ids) => ids.clone(),
            Answer::Rows { rows, .. } => {
                let mut out = Vec::new();
                for row in rows {
                    for value in row {
                        if let Value::Node(id) = value {
                            if !out.contains(id) {
                                out.push(*id);
                            }
                        }
                    }
                }
                out
            }
            Answer::Error(_) => Vec::new(),
        }
    }
}

impl KgSnapshot {
    /// Freeze a graph + index pair into a publishable snapshot: computes the
    /// canonical digest and the expansion adjacency from scratch. This is
    /// the O(graph) path — the correctness oracle the incremental
    /// [`crate::EpochBuilder`] is proven against.
    pub fn build(graph: GraphStore, search: SearchIndex<NodeId>) -> KgSnapshot {
        let start = Instant::now();
        let digest = graph.digest();
        let adjacency = graph
            .all_nodes()
            .map(|node| (node.id, Arc::new(graph.neighbors(node.id))))
            .collect();
        KgSnapshot {
            version: 0,
            digest,
            graph,
            search,
            adjacency,
            build_us: start.elapsed().as_micros() as u64,
            mode: SnapshotMode::Full,
        }
    }

    /// Assemble a snapshot from components an [`crate::EpochBuilder`]
    /// maintained incrementally.
    pub(crate) fn from_parts(
        graph: GraphStore,
        search: SearchIndex<NodeId>,
        adjacency: HashMap<NodeId, Arc<Vec<NodeId>>>,
        digest: u64,
        build_us: u64,
    ) -> KgSnapshot {
        KgSnapshot {
            version: 0,
            digest,
            graph,
            search,
            adjacency,
            build_us,
            mode: SnapshotMode::Incremental,
        }
    }

    pub(crate) fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Publish sequence number (0 until published).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Canonical graph digest.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Wall time spent freezing this snapshot, microseconds.
    pub fn build_us(&self) -> u64 {
        self.build_us
    }

    /// How this snapshot was frozen.
    pub fn mode(&self) -> SnapshotMode {
        self.mode
    }

    /// The precomputed expansion adjacency of one node (empty when the node
    /// has no edges or does not exist). Exposed so equivalence tests can
    /// compare incremental against full-rebuilt tables entry by entry.
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        self.adjacency.get(&id).map_or(&[][..], |v| v.as_slice())
    }

    /// Number of adjacency entries (one per live node at freeze time).
    pub fn adjacency_len(&self) -> usize {
        self.adjacency.len()
    }

    /// The frozen graph.
    pub fn graph(&self) -> &GraphStore {
        &self.graph
    }

    /// The frozen keyword index.
    pub fn search_index(&self) -> &SearchIndex<NodeId> {
        &self.search
    }

    /// Live nodes in the snapshot.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Live edges in the snapshot.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Resolve an entity by canonical name under any entity label.
    pub fn entity_by_name(&self, name: &str) -> Option<NodeId> {
        let name = name.to_lowercase();
        kg_ontology::EntityKind::ALL
            .iter()
            .find_map(|kind| self.graph.node_by_name(kind.label(), &name))
    }

    /// Keyword search: direct entity-name hits first, then BM25 hits —
    /// the same composition as `securitykg::KnowledgeBase::keyword_search`.
    pub fn keyword_search(&self, query: &str, k: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        let lowered = query.to_lowercase();
        for kind in kg_ontology::EntityKind::ALL {
            if let Some(id) = self.graph.node_by_name(kind.label(), &lowered) {
                if !out.contains(&id) {
                    out.push(id);
                }
            }
        }
        for hit in self.search.search(query, k) {
            if !out.contains(&hit.doc) {
                out.push(hit.doc);
            }
        }
        out.truncate(k.max(1));
        out
    }

    /// Read-only Cypher against the frozen graph: compiled fresh here (the
    /// serving layer's [`crate::PlanCache`] is the plan-reusing path), then
    /// bound to *this snapshot* so var-length patterns ride the frozen
    /// adjacency table.
    pub fn cypher(&self, query: &str) -> Result<QueryResult, CypherError> {
        let plan = kg_graph::CompiledPlan::compile(&kg_graph::parse(query)?)?;
        plan.execute_on(self, &kg_graph::Params::new())
    }

    /// BFS over the precomputed adjacency: `start` plus everything within
    /// `hops`, in BFS order, capped at `cap` nodes.
    pub fn expand(&self, start: NodeId, hops: usize, cap: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        if self.graph.node(start).is_none() || cap == 0 {
            return out;
        }
        let mut frontier = vec![start];
        let mut seen: std::collections::HashSet<NodeId> = [start].into_iter().collect();
        out.push(start);
        for _ in 0..hops {
            let mut next = Vec::new();
            for &node in &frontier {
                for &neighbor in self.neighbors(node) {
                    if out.len() >= cap {
                        return out;
                    }
                    if seen.insert(neighbor) {
                        out.push(neighbor);
                        next.push(neighbor);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        out
    }

    /// Evaluate a [`Query`] fresh against this snapshot (no cache).
    pub fn answer(&self, query: &Query) -> Answer {
        match query {
            Query::Search { q, k } => Answer::Nodes(self.keyword_search(q, *k)),
            Query::Cypher { q } => match self.cypher(q) {
                Ok(result) => Answer::Rows {
                    columns: result.columns,
                    rows: result.rows,
                },
                Err(e) => Answer::Error(e.to_string()),
            },
            Query::Expand { name, hops, cap } => match self.entity_by_name(name) {
                Some(id) => Answer::Nodes(self.expand(id, *hops, *cap)),
                None => Answer::Nodes(Vec::new()),
            },
        }
    }
}

/// Compiled plans bind directly to the frozen snapshot. Everything
/// delegates to the frozen graph except [`GraphSnapshot::khop_adjacency`],
/// which serves the precomputed expansion adjacency — so var-length
/// patterns (`-[*1..k]-`) walk the frozen table instead of per-edge
/// records.
impl GraphSnapshot for KgSnapshot {
    fn node(&self, id: NodeId) -> Option<&Node> {
        self.graph.node(id)
    }

    fn edge(&self, id: EdgeId) -> Option<&Edge> {
        self.graph.edge(id)
    }

    fn out_edge_ids(&self, id: NodeId) -> &[EdgeId] {
        self.graph.out_edge_ids(id)
    }

    fn in_edge_ids(&self, id: NodeId) -> &[EdgeId] {
        self.graph.in_edge_ids(id)
    }

    fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
        self.graph.nodes_with_label(label)
    }

    fn node_by_name(&self, label: &str, name: &str) -> Option<NodeId> {
        self.graph.node_by_name(label, name)
    }

    fn all_node_ids(&self) -> Vec<NodeId> {
        self.graph.all_nodes().map(|n| n.id).collect()
    }

    fn nodes_with_prop_eq(&self, key: &str, value: &Value) -> Option<Vec<NodeId>> {
        self.graph.nodes_with_prop_eq(key, value)
    }

    fn khop_adjacency(&self, id: NodeId) -> Option<&[NodeId]> {
        self.adjacency.get(&id).map(|a| a.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::Value;

    fn snapshot() -> KgSnapshot {
        let mut graph = GraphStore::new();
        let m = graph.create_node("Malware", [("name", Value::from("wannacry"))]);
        let f = graph.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        let d = graph.create_node("Domain", [("name", Value::from("kill.switch.test"))]);
        graph
            .create_edge(m, "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        graph
            .create_edge(m, "CONNECTS_TO", d, [] as [(&str, Value); 0])
            .unwrap();
        let mut search = SearchIndex::default();
        search.add(m, "wannacry ransomware drops tasksche.exe");
        search.add(f, "tasksche.exe dropped file");
        KgSnapshot::build(graph, search)
    }

    #[test]
    fn digest_matches_canonical_graph_digest() {
        let snap = snapshot();
        assert_eq!(snap.digest(), snap.graph().digest());
        assert_eq!(snap.version(), 0);
        assert_eq!(snap.mode(), SnapshotMode::Full);
        assert_eq!(snap.mode().label(), "full");
        // One adjacency entry per live node, matching the live graph.
        assert_eq!(snap.adjacency_len(), snap.node_count());
        for node in snap.graph().all_nodes() {
            assert_eq!(snap.neighbors(node.id), snap.graph().neighbors(node.id));
        }
    }

    #[test]
    fn keyword_search_prefers_named_entity() {
        let snap = snapshot();
        let m = snap.graph().node_by_name("Malware", "wannacry").unwrap();
        let hits = snap.keyword_search("wannacry", 5);
        assert_eq!(hits.first(), Some(&m));
    }

    #[test]
    fn expand_bfs_layers_and_cap() {
        let snap = snapshot();
        let m = snap.graph().node_by_name("Malware", "wannacry").unwrap();
        let hood = snap.expand(m, 1, 10);
        assert_eq!(hood.len(), 3);
        assert_eq!(hood[0], m);
        assert_eq!(snap.expand(m, 1, 2).len(), 2);
        assert_eq!(snap.expand(m, 0, 10), vec![m]);
        assert!(snap.expand(NodeId(999), 1, 10).is_empty());
    }

    #[test]
    fn answers_cover_all_query_kinds() {
        let snap = snapshot();
        let m = snap.graph().node_by_name("Malware", "wannacry").unwrap();
        assert_eq!(
            snap.answer(&Query::Search {
                q: "wannacry".into(),
                k: 5
            })
            .node_ids()
            .first(),
            Some(&m)
        );
        match snap.answer(&Query::Cypher {
            q: "MATCH (n:Malware) RETURN n".into(),
        }) {
            Answer::Rows { rows, .. } => assert_eq!(rows.len(), 1),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            snap.answer(&Query::Cypher {
                q: "NOT CYPHER".into()
            }),
            Answer::Error(_)
        ));
        assert_eq!(
            snap.answer(&Query::Expand {
                name: "WannaCry".into(),
                hops: 1,
                cap: 10
            })
            .node_ids()
            .len(),
            3
        );
    }

    #[test]
    fn cache_keys_normalize_whitespace_and_case() {
        let a = Query::Search {
            q: "  WannaCry   ransomware ".into(),
            k: 5,
        };
        let b = Query::Search {
            q: "wannacry ransomware".into(),
            k: 5,
        };
        assert_eq!(a.cache_key(), b.cache_key());
        let c = Query::Cypher {
            q: "MATCH (n)  RETURN n".into(),
        };
        let d = Query::Cypher {
            q: "MATCH (n) RETURN n".into(),
        };
        assert_eq!(c.cache_key(), d.cache_key());
        // Cypher string literals stay case-sensitive.
        assert_ne!(
            Query::Cypher {
                q: "MATCH (n {name: 'A'}) RETURN n".into()
            }
            .cache_key(),
            Query::Cypher {
                q: "MATCH (n {name: 'a'}) RETURN n".into()
            }
            .cache_key()
        );
    }
}
