//! Bounded, sharded query cache keyed by `(snapshot digest, query key)`.
//!
//! Because the digest is part of the key, publishing a new snapshot
//! invalidates nothing explicitly: entries for the old digest simply stop
//! being looked up and age out of the FIFO. Shards keep the lock a reader
//! takes on a hit uncontended under concurrency (a single global lock would
//! serialise the whole read path).

use crate::snapshot::Answer;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked shards.
const SHARDS: usize = 16;

type Key = (u64, String);

#[derive(Default)]
struct Shard {
    map: HashMap<Key, Answer>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Key>,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: usize,
}

/// The bounded per-snapshot query cache.
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    /// Max entries per shard (total capacity / SHARDS, at least 1 when
    /// caching is enabled at all).
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl QueryCache {
    /// Cache holding at most ~`capacity` answers; 0 disables caching.
    pub fn new(capacity: usize) -> Self {
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(SHARDS)
        };
        QueryCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &Key) -> &Mutex<Shard> {
        let h = kg_ir::fnv1a64(key.1.as_bytes()) ^ key.0;
        &self.shards[(h as usize) % SHARDS]
    }

    /// Look up a cached answer for this `(digest, query key)`. A disabled
    /// cache (capacity 0) answers `None` without touching any counter — a
    /// lookup that was never attempted is not a miss, and counting it would
    /// skew every derived hit-rate to 0% instead of "no data".
    pub fn get(&self, digest: u64, query_key: &str) -> Option<Answer> {
        if self.per_shard == 0 {
            return None;
        }
        let key = (digest, query_key.to_owned());
        let found = self.shard_of(&key).lock().map.get(&key).cloned();
        match found {
            Some(answer) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(answer)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert an answer, evicting the shard's oldest entry at capacity.
    pub fn insert(&self, digest: u64, query_key: &str, answer: Answer) {
        if self.per_shard == 0 {
            return;
        }
        let key = (digest, query_key.to_owned());
        let mut shard = self.shard_of(&key).lock();
        if let Some(existing) = shard.map.get_mut(&key) {
            *existing = answer;
            return;
        }
        if shard.map.len() >= self.per_shard {
            if let Some(oldest) = shard.order.pop_front() {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.order.push_back(key.clone());
        shard.map.insert(key, answer);
    }

    /// Entries currently cached (across shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (counters keep accumulating).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.map.clear();
            shard.order.clear();
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::NodeId;

    fn nodes(id: u64) -> Answer {
        Answer::Nodes(vec![NodeId(id)])
    }

    #[test]
    fn hit_miss_and_digest_keying() {
        let cache = QueryCache::new(64);
        assert_eq!(cache.get(1, "s:5:x"), None);
        cache.insert(1, "s:5:x", nodes(7));
        assert_eq!(cache.get(1, "s:5:x"), Some(nodes(7)));
        // Same query under a different snapshot digest is a different entry.
        assert_eq!(cache.get(2, "s:5:x"), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
    }

    #[test]
    fn capacity_bounds_and_evictions_counted() {
        let cache = QueryCache::new(16); // 1 per shard
        for i in 0..200u64 {
            cache.insert(i, "q", nodes(i));
        }
        assert!(cache.len() <= 16, "{}", cache.len());
        assert_eq!(cache.stats().evictions, 200 - cache.len() as u64);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = QueryCache::new(0);
        cache.insert(1, "q", nodes(1));
        assert_eq!(cache.get(1, "q"), None);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn disabled_cache_counts_nothing() {
        let cache = QueryCache::new(0);
        for i in 0..10u64 {
            cache.insert(i, "q", nodes(i));
            assert_eq!(cache.get(i, "q"), None);
        }
        // Lookups that never reached a shard are not misses: all counters
        // stay zero, so hit-rate reads "no data" rather than 0%.
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = QueryCache::new(64);
        cache.insert(1, "a", nodes(1));
        assert!(cache.get(1, "a").is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
    }
}
