//! O(delta) snapshot freezing: the incremental epoch builder.
//!
//! [`KgSnapshot::build`] is O(entire graph) per publish — it hashes every
//! element for the digest and walks every adjacency list. As the KG grows,
//! each publish stalls the ingest writer for time proportional to everything
//! ever ingested, not to what changed since the previous epoch. An
//! [`EpochBuilder`] sits beside the writer and carries the digest and
//! adjacency table forward across epochs:
//!
//! - the **digest** is the commutative per-element sum from
//!   [`kg_graph::GraphStore::digest`] — patching it for a touched element is
//!   `wrapping_sub(old term)` + `wrapping_add(new term)`;
//! - the **adjacency table** re-freezes only the nodes whose edge sets the
//!   delta touched (each list individually `Arc`'d, untouched entries are
//!   shared with every previous epoch);
//! - the **graph and index clones** are cheap by structural sharing:
//!   `GraphStore` arenas are `Arc`'d segments and `SearchIndex` posting lists
//!   are `Arc`'d, so `clone()` bumps refcounts and only writer-touched
//!   shards were ever deep-copied.
//!
//! The builder does not re-apply `GraphDelta`s itself — apply is not
//! delta-pure (canon commit re-resolves against the live table), so the
//! builder instead *observes* the writer's graph through the store's delta
//! log: it registers a [`kg_graph::DeltaCursor`] at seeding time and each
//! absorb collects the sealed batches that cursor has not seen yet
//! ([`kg_graph::GraphStore::collect_changes`]) — whatever the writer did,
//! the batches name every element whose digest term or adjacency entry may
//! have moved. The log is multi-consumer: standing-query subscriptions
//! (`crate::subscribe`) read the same batches through their own cursor
//! without racing the builder. The full-rebuild path stays as the
//! correctness oracle (see `tests/epoch_props.rs` at the workspace root).

use crate::snapshot::KgSnapshot;
use kg_graph::{
    edge_digest, node_digest, DeltaBatch, DeltaCursor, GraphStore, NodeId, DIGEST_SEED,
};
use kg_search::SearchIndex;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Maintains digest + adjacency across epochs so freezing a snapshot costs
/// O(elements touched since the last freeze) instead of O(graph).
pub struct EpochBuilder {
    /// Current digest term of every live node (what to subtract when the
    /// node changes or dies).
    node_terms: HashMap<NodeId, u64>,
    /// Current digest term of every live edge.
    edge_terms: HashMap<kg_graph::EdgeId, u64>,
    /// Running graph digest, kept equal to `graph.digest()`.
    digest: u64,
    /// Carried-forward adjacency table; only dirty entries are re-frozen.
    adjacency: HashMap<NodeId, Arc<Vec<NodeId>>>,
    /// This builder's cursor on the writer's delta log (reader #1).
    cursor: DeltaCursor,
}

impl EpochBuilder {
    /// Seed the builder from the writer's live graph with one full scan —
    /// the only O(graph) moment in the builder's lifetime. Registering the
    /// cursor positions it after any changes the store had already tracked,
    /// so they are skipped (the scan sees them).
    pub fn new(graph: &mut GraphStore) -> Self {
        let cursor = graph.register_delta_consumer();
        let mut digest = DIGEST_SEED;
        let mut node_terms = HashMap::new();
        let mut edge_terms = HashMap::new();
        let mut adjacency = HashMap::new();
        for node in graph.all_nodes() {
            let term = node_digest(node);
            node_terms.insert(node.id, term);
            digest = digest.wrapping_add(term);
            adjacency.insert(node.id, Arc::new(graph.neighbors(node.id)));
        }
        for edge in graph.all_edges() {
            let term = edge_digest(edge);
            edge_terms.insert(edge.id, term);
            digest = digest.wrapping_add(term);
        }
        EpochBuilder {
            node_terms,
            edge_terms,
            digest,
            adjacency,
            cursor,
        }
    }

    /// Collect the delta batches this builder's cursor has not seen yet and
    /// patch digest + adjacency: O(delta).
    pub fn absorb(&mut self, graph: &mut GraphStore) {
        for batch in graph.collect_changes(self.cursor) {
            self.apply_batch(graph, &batch);
        }
    }

    /// Patch digest + adjacency for one sealed batch. Terms are re-read
    /// from the *live* graph, so applying consecutive batches that touch the
    /// same element converges on the same state as one merged batch.
    fn apply_batch(&mut self, graph: &GraphStore, batch: &DeltaBatch) {
        // Endpoints whose adjacency entry must be re-frozen.
        let mut dirty: BTreeSet<NodeId> = BTreeSet::new();
        for &(edge_id, from, to) in &batch.changes.edges {
            if let Some(old) = self.edge_terms.remove(&edge_id) {
                self.digest = self.digest.wrapping_sub(old);
            }
            if let Some(edge) = graph.edge(edge_id) {
                let term = edge_digest(edge);
                self.edge_terms.insert(edge_id, term);
                self.digest = self.digest.wrapping_add(term);
            }
            dirty.insert(from);
            dirty.insert(to);
        }
        for &node_id in &batch.changes.nodes {
            if let Some(old) = self.node_terms.remove(&node_id) {
                self.digest = self.digest.wrapping_sub(old);
            }
            if let Some(node) = graph.node(node_id) {
                let term = node_digest(node);
                self.node_terms.insert(node_id, term);
                self.digest = self.digest.wrapping_add(term);
            }
            dirty.insert(node_id);
        }
        for node_id in dirty {
            if graph.node(node_id).is_some() {
                self.adjacency
                    .insert(node_id, Arc::new(graph.neighbors(node_id)));
            } else {
                self.adjacency.remove(&node_id);
            }
        }
    }

    /// The digest the next frozen snapshot will carry (before any pending
    /// un-absorbed changes).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Absorb pending changes and freeze the current graph + index state
    /// into a publishable snapshot. The clones are refcount bumps over
    /// `Arc`'d segments/posting lists — only shards the writer touches
    /// *after* this freeze get deep-copied, on its side.
    pub fn freeze(&mut self, graph: &mut GraphStore, search: &SearchIndex<NodeId>) -> KgSnapshot {
        let start = Instant::now();
        self.absorb(graph);
        KgSnapshot::from_parts(
            graph.clone(),
            search.clone(),
            self.adjacency.clone(),
            self.digest,
            start.elapsed().as_micros() as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotMode;
    use kg_graph::Value;

    fn assert_equivalent(snap: &KgSnapshot, oracle: &KgSnapshot) {
        assert_eq!(snap.digest(), oracle.digest());
        assert_eq!(snap.node_count(), oracle.node_count());
        assert_eq!(snap.edge_count(), oracle.edge_count());
        assert_eq!(snap.adjacency_len(), oracle.adjacency_len());
        for node in oracle.graph().all_nodes() {
            assert_eq!(snap.neighbors(node.id), oracle.neighbors(node.id));
        }
    }

    #[test]
    fn incremental_freeze_matches_full_build_across_mutations() {
        let mut graph = GraphStore::new();
        let search: SearchIndex<NodeId> = SearchIndex::default();
        let m = graph.create_node("Malware", [("name", Value::from("wannacry"))]);
        let mut epoch = EpochBuilder::new(&mut graph);

        // Epoch 1: add nodes and edges.
        let f = graph.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        let d = graph.create_node("Domain", [("name", Value::from("kill.switch"))]);
        graph
            .create_edge(m, "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        let e2 = graph
            .create_edge(m, "CONNECTS_TO", d, [] as [(&str, Value); 0])
            .unwrap();
        let snap = epoch.freeze(&mut graph, &search);
        assert_eq!(snap.mode(), SnapshotMode::Incremental);
        assert_equivalent(&snap, &KgSnapshot::build(graph.clone(), search.clone()));

        // Epoch 2: mutate a node, delete an edge.
        graph
            .set_node_prop(m, "vendor", Value::from("talos"))
            .unwrap();
        graph.delete_edge(e2).unwrap();
        let snap = epoch.freeze(&mut graph, &search);
        assert_equivalent(&snap, &KgSnapshot::build(graph.clone(), search.clone()));

        // Epoch 3: delete a node (cascades through its edges).
        graph.delete_node(f).unwrap();
        let snap = epoch.freeze(&mut graph, &search);
        assert_equivalent(&snap, &KgSnapshot::build(graph.clone(), search.clone()));

        // Epoch 4: nothing changed — freeze is a near-no-op and still right.
        let snap = epoch.freeze(&mut graph, &search);
        assert_equivalent(&snap, &KgSnapshot::build(graph.clone(), search.clone()));
        assert_eq!(snap.digest(), graph.digest());
    }

    #[test]
    fn seeding_discards_previously_tracked_changes() {
        let mut graph = GraphStore::new();
        graph.create_node("Malware", [("name", Value::from("a"))]);
        // The create above is pending in the touched-set; seeding must not
        // double-count it (the full scan already sees the node).
        let mut epoch = EpochBuilder::new(&mut graph);
        assert_eq!(epoch.digest(), graph.digest());
        let search: SearchIndex<NodeId> = SearchIndex::default();
        let snap = epoch.freeze(&mut graph, &search);
        assert_eq!(snap.digest(), graph.digest());
    }

    #[test]
    fn old_epochs_stay_intact_while_writer_mutates() {
        let mut graph = GraphStore::new();
        let search: SearchIndex<NodeId> = SearchIndex::default();
        let m = graph.create_node("Malware", [("name", Value::from("x"))]);
        let f = graph.create_node("FileName", [("name", Value::from("y.exe"))]);
        graph
            .create_edge(m, "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        let mut epoch = EpochBuilder::new(&mut graph);
        let old = epoch.freeze(&mut graph, &search);
        let old_digest = old.digest();
        // Writer keeps going after the freeze.
        graph.delete_node(f).unwrap();
        graph.create_node("Tool", [("name", Value::from("t"))]);
        let new = epoch.freeze(&mut graph, &search);
        // The frozen epoch still answers from its own state.
        assert_eq!(old.digest(), old_digest);
        assert_eq!(old.node_count(), 2);
        assert_eq!(old.edge_count(), 1);
        assert_eq!(old.neighbors(m), &[f]);
        assert!(old.graph().node(f).is_some());
        // And the new epoch reflects the mutations.
        assert_ne!(new.digest(), old_digest);
        assert_eq!(new.node_count(), 2);
        assert_eq!(new.edge_count(), 0);
        assert!(new.neighbors(m).is_empty());
    }
}
