//! Standing queries over the epoch delta stream (the paper's "continuous
//! gathering" promise turned into push alerts: analysts register *alert me
//! when X* watches instead of polling ad-hoc queries).
//!
//! A [`SubscriptionHub`] sits beside the ingest writer and holds its own
//! [`DeltaCursor`] on the store's delta log (reader #2; the `EpochBuilder`
//! is reader #1). At each publish, [`SubscriptionHub::evaluate`] collects
//! the batches sealed by that epoch's freeze and evaluates every
//! subscription **against the touched elements only** — O(delta ×
//! subscriptions), never a full rescan — by comparing each touched element
//! between the previous published snapshot and the new one:
//!
//! - didn't match before, matches now → [`MatchKind::Appeared`];
//! - matched before and now, content changed → [`MatchKind::Updated`]
//!   (a conservative touch that left the element identical fires nothing,
//!   exactly like the full-rescan oracle);
//! - matched before, gone or non-matching now → [`MatchKind::Removed`].
//!
//! Matches are delivered into per-subscriber **bounded mailboxes**. A full
//! mailbox drops the event but never the count: `delivered + dropped ==
//! matched` holds exactly, and overflows are surfaced as
//! [`TraceEvent::MailboxOverflow`]. [`rescan_matches`] is the O(graph)
//! correctness oracle the proptests and bench E14 compare against.

use crate::snapshot::KgSnapshot;
use kg_graph::cypher::{self, CypherError};
use kg_graph::{DeltaCursor, EdgeId, GraphStore, NodeId};
use kg_pipeline::{TraceEvent, TraceLog};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The variable a subscription predicate binds the candidate node to, as in
/// `n.name CONTAINS 'T1486'`.
pub const PREDICATE_VAR: &str = "n";

/// Identifies one registered subscription (unique per hub).
pub type SubscriptionId = u64;

/// A predicate compiled to the Cypher `WHERE` expression form — parsed and
/// plan-compiled once at subscribe time ([`PREDICATE_VAR`] resolved to a
/// slot, names resolved to compiled accessors), then evaluated per touched
/// node by the same compiled evaluator query plans use (same truthiness,
/// same NULL propagation as interpreted `WHERE`; `node_satisfies` remains
/// the interpreted oracle the tests compare against).
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    source: String,
    compiled: kg_graph::CompiledNodePredicate,
}

impl CompiledPredicate {
    /// Compile a `WHERE`-style expression over [`PREDICATE_VAR`].
    /// Aggregates are rejected up front — they have no meaning for a
    /// node-at-a-time predicate and would only fail at evaluation time.
    pub fn compile(source: &str) -> Result<Self, CypherError> {
        let expr = cypher::parse_predicate(source)?;
        if expr.contains_aggregate() {
            return Err(CypherError::Parse(
                "aggregates are not allowed in subscription predicates".into(),
            ));
        }
        Ok(CompiledPredicate {
            source: source.to_owned(),
            compiled: kg_graph::CompiledNodePredicate::compile(&expr, PREDICATE_VAR),
        })
    }

    /// The predicate's source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Whether `id` satisfies the predicate in `graph`. Evaluation cannot
    /// error (aggregates were rejected at compile time); NULL-valued
    /// comparisons are non-matches, as in `WHERE`.
    pub fn matches(&self, graph: &GraphStore, id: NodeId) -> bool {
        self.compiled.matches(graph, id)
    }
}

/// What a subscription watches.
#[derive(Debug, Clone)]
pub enum WatchSpec {
    /// Nodes bearing this label (`None` = any label) that satisfy the
    /// predicate (`None` = every node).
    Node {
        label: Option<String>,
        predicate: Option<CompiledPredicate>,
    },
    /// Edges touching this entity, in either direction (created, deleted or
    /// re-pointed edges included — a deleted node's cascaded edges fire
    /// `Removed` here).
    EdgeTouching(NodeId),
}

fn node_spec_matches(
    label: &Option<String>,
    predicate: &Option<CompiledPredicate>,
    graph: &GraphStore,
    id: NodeId,
) -> bool {
    let Some(node) = graph.node(id) else {
        return false;
    };
    if let Some(want) = label {
        if &node.label != want {
            return false;
        }
    }
    predicate.as_ref().is_none_or(|p| p.matches(graph, id))
}

/// How a watched element changed between two published epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MatchKind {
    /// Matches the new epoch but did not match the previous one.
    Appeared,
    /// Matched both epochs with different content.
    Updated,
    /// Matched the previous epoch; deleted or no longer matching.
    Removed,
}

/// One delivered (or dropped) subscription match.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MatchEvent {
    pub subscription: SubscriptionId,
    pub kind: MatchKind,
    /// The matched node (node watches) or the watched entity (edge watches).
    pub node: NodeId,
    /// The touched edge, for edge watches.
    pub edge: Option<EdgeId>,
    /// Digest of the epoch the match was evaluated against.
    pub digest: u64,
}

/// Point-in-time per-subscription delivery counters. The accounting is
/// exact: `matched == delivered + dropped` always.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubscriptionStats {
    /// Matches the evaluator produced for this subscription.
    pub matched: u64,
    /// Matches enqueued into the mailbox.
    pub delivered: u64,
    /// Matches dropped because the mailbox was full (counted, never silent).
    pub dropped: u64,
    /// Events currently waiting in the mailbox.
    pub queued: usize,
}

#[derive(Debug)]
struct Mailbox {
    capacity: usize,
    queue: Mutex<VecDeque<MatchEvent>>,
    matched: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
}

impl Mailbox {
    fn new(capacity: usize) -> Self {
        Mailbox {
            capacity,
            queue: Mutex::new(VecDeque::new()),
            matched: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Count the match and enqueue it if there is room; returns whether it
    /// was delivered (false = dropped, still counted).
    fn offer(&self, event: MatchEvent) -> bool {
        self.matched.fetch_add(1, Ordering::Relaxed);
        let mut queue = self.queue.lock();
        if queue.len() < self.capacity {
            queue.push_back(event);
            drop(queue);
            self.delivered.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            drop(queue);
            self.dropped.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    fn stats(&self) -> SubscriptionStats {
        SubscriptionStats {
            matched: self.matched.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            queued: self.queue.lock().len(),
        }
    }
}

/// Client handle for one standing query: poll delivered matches, read the
/// delivery counters. Clones share the same mailbox. Dropping the handle
/// does not unsubscribe — use [`SubscriptionHub::unsubscribe`].
#[derive(Debug, Clone)]
pub struct Subscription {
    id: SubscriptionId,
    mailbox: Arc<Mailbox>,
}

impl Subscription {
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// Pop the oldest undelivered match, if any.
    pub fn poll(&self) -> Option<MatchEvent> {
        self.mailbox.queue.lock().pop_front()
    }

    /// Take every queued match, oldest first.
    pub fn drain(&self) -> Vec<MatchEvent> {
        self.mailbox.queue.lock().drain(..).collect()
    }

    /// Exact delivery accounting for this subscription.
    pub fn stats(&self) -> SubscriptionStats {
        self.mailbox.stats()
    }
}

struct HubEntry {
    id: SubscriptionId,
    spec: WatchSpec,
    mailbox: Arc<Mailbox>,
}

struct HubInner {
    next_id: SubscriptionId,
    entries: Vec<HubEntry>,
}

/// Aggregate outcome of evaluating one epoch's delta against every
/// subscription.
#[derive(Debug, Clone, Default)]
pub struct DeliveryReport {
    /// Every match this evaluation produced, across all subscriptions
    /// (each was also offered to its subscriber's mailbox, where it may
    /// have been dropped). Sorted by node/edge id within a subscription.
    pub matches: Vec<MatchEvent>,
    pub matched: u64,
    pub delivered: u64,
    pub dropped: u64,
}

/// The standing-query registry + evaluator: delta-log reader #2.
pub struct SubscriptionHub {
    cursor: DeltaCursor,
    inner: Mutex<HubInner>,
}

impl SubscriptionHub {
    /// Register the hub's cursor on the writer's delta log. Changes already
    /// tracked at this moment are skipped — a subscription has no baseline
    /// epoch to diff them against until the next publish.
    pub fn new(graph: &mut GraphStore) -> Self {
        SubscriptionHub {
            cursor: graph.register_delta_consumer(),
            inner: Mutex::new(HubInner {
                next_id: 1,
                entries: Vec::new(),
            }),
        }
    }

    /// Register a standing query delivering into a mailbox bounded to
    /// `capacity` events (0 = count-only: every match is dropped but still
    /// exactly counted).
    pub fn subscribe(&self, spec: WatchSpec, capacity: usize) -> Subscription {
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        let mailbox = Arc::new(Mailbox::new(capacity));
        inner.entries.push(HubEntry {
            id,
            spec,
            mailbox: Arc::clone(&mailbox),
        });
        Subscription { id, mailbox }
    }

    /// Remove a subscription; its handle keeps any already-queued events.
    pub fn unsubscribe(&self, id: SubscriptionId) {
        self.inner.lock().entries.retain(|e| e.id != id);
    }

    /// Registered subscriptions.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluate every subscription against the delta sealed by the epoch
    /// that froze `next` (reading only *sealed* batches: whatever the
    /// writer mutated after the freeze stays pending for the next epoch).
    /// `prev` must be the previously published snapshot — the baseline each
    /// touched element is diffed against. O(delta × subscriptions).
    pub fn evaluate(
        &self,
        graph: &mut GraphStore,
        prev: &KgSnapshot,
        next: &KgSnapshot,
        trace: Option<&TraceLog>,
    ) -> DeliveryReport {
        let batches = graph.collect_sealed_changes(self.cursor);
        let mut touched_nodes: BTreeSet<NodeId> = BTreeSet::new();
        let mut touched_edges: BTreeMap<EdgeId, (NodeId, NodeId)> = BTreeMap::new();
        for batch in &batches {
            touched_nodes.extend(batch.changes.nodes.iter().copied());
            for &(id, from, to) in &batch.changes.edges {
                touched_edges.insert(id, (from, to));
            }
        }

        let prev_graph = prev.graph();
        let next_graph = next.graph();
        let digest = next.digest();
        let mut report = DeliveryReport::default();
        let inner = self.inner.lock();
        for entry in &inner.entries {
            let found: Vec<(MatchKind, NodeId, Option<EdgeId>)> = match &entry.spec {
                WatchSpec::Node { label, predicate } => touched_nodes
                    .iter()
                    .filter_map(|&id| {
                        diff_node(label, predicate, prev_graph, next_graph, id)
                            .map(|kind| (kind, id, None))
                    })
                    .collect(),
                WatchSpec::EdgeTouching(target) => touched_edges
                    .iter()
                    .filter(|(_, &(from, to))| from == *target || to == *target)
                    .filter_map(|(&edge_id, _)| {
                        diff_edge(prev_graph, next_graph, edge_id)
                            .map(|kind| (kind, *target, Some(edge_id)))
                    })
                    .collect(),
            };
            let (mut appeared, mut updated, mut removed) = (0usize, 0usize, 0usize);
            let mut dropped_here = 0u64;
            for (kind, node, edge) in found {
                match kind {
                    MatchKind::Appeared => appeared += 1,
                    MatchKind::Updated => updated += 1,
                    MatchKind::Removed => removed += 1,
                }
                let event = MatchEvent {
                    subscription: entry.id,
                    kind,
                    node,
                    edge,
                    digest,
                };
                if entry.mailbox.offer(event.clone()) {
                    report.delivered += 1;
                } else {
                    dropped_here += 1;
                }
                report.matched += 1;
                report.matches.push(event);
            }
            report.dropped += dropped_here;
            if let Some(trace) = trace {
                let matched = appeared + updated + removed;
                if matched > 0 {
                    trace.record(TraceEvent::SubscriptionMatched {
                        subscription: entry.id,
                        kg_digest: digest,
                        matched,
                        appeared,
                        updated,
                        removed,
                    });
                }
                if dropped_here > 0 {
                    trace.record(TraceEvent::MailboxOverflow {
                        subscription: entry.id,
                        kg_digest: digest,
                        dropped: dropped_here,
                    });
                }
            }
        }
        report
    }
}

/// How one node changed between epochs w.r.t. a node spec, or `None` for no
/// event. Shared verbatim by the incremental path (over touched ids) and
/// the rescan oracle (over all ids), so they can only differ if change
/// tracking missed a touched element.
fn diff_node(
    label: &Option<String>,
    predicate: &Option<CompiledPredicate>,
    prev: &GraphStore,
    next: &GraphStore,
    id: NodeId,
) -> Option<MatchKind> {
    let was = node_spec_matches(label, predicate, prev, id);
    let is = node_spec_matches(label, predicate, next, id);
    match (was, is) {
        (false, true) => Some(MatchKind::Appeared),
        (true, false) => Some(MatchKind::Removed),
        (true, true) if prev.node(id) != next.node(id) => Some(MatchKind::Updated),
        _ => None,
    }
}

/// How one edge changed between epochs, or `None` for no event.
fn diff_edge(prev: &GraphStore, next: &GraphStore, id: EdgeId) -> Option<MatchKind> {
    match (prev.edge(id), next.edge(id)) {
        (None, Some(_)) => Some(MatchKind::Appeared),
        (Some(_), None) => Some(MatchKind::Removed),
        (Some(a), Some(b)) if a != b => Some(MatchKind::Updated),
        _ => None,
    }
}

/// The O(graph) full-rescan oracle: diff *every* element of the two
/// snapshots against the spec, ignoring the delta entirely. Incremental
/// evaluation must produce exactly this match set — E14 and the subscribe
/// proptests assert it per publish.
pub fn rescan_matches(
    spec: &WatchSpec,
    subscription: SubscriptionId,
    prev: &KgSnapshot,
    next: &KgSnapshot,
) -> Vec<MatchEvent> {
    let prev_graph = prev.graph();
    let next_graph = next.graph();
    let digest = next.digest();
    let mut out = Vec::new();
    match spec {
        WatchSpec::Node { label, predicate } => {
            let mut ids: BTreeSet<NodeId> = prev_graph.all_nodes().map(|n| n.id).collect();
            ids.extend(next_graph.all_nodes().map(|n| n.id));
            for id in ids {
                if let Some(kind) = diff_node(label, predicate, prev_graph, next_graph, id) {
                    out.push(MatchEvent {
                        subscription,
                        kind,
                        node: id,
                        edge: None,
                        digest,
                    });
                }
            }
        }
        WatchSpec::EdgeTouching(target) => {
            let touching = |graph: &GraphStore| {
                graph
                    .all_edges()
                    .filter(|e| e.from == *target || e.to == *target)
                    .map(|e| e.id)
                    .collect::<BTreeSet<EdgeId>>()
            };
            let mut ids = touching(prev_graph);
            ids.extend(touching(next_graph));
            for id in ids {
                if let Some(kind) = diff_edge(prev_graph, next_graph, id) {
                    out.push(MatchEvent {
                        subscription,
                        kind,
                        node: *target,
                        edge: Some(id),
                        digest,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochBuilder;
    use kg_graph::Value;
    use kg_search::SearchIndex;

    fn freeze(epoch: &mut EpochBuilder, graph: &mut GraphStore) -> KgSnapshot {
        let search: SearchIndex<NodeId> = SearchIndex::default();
        epoch.freeze(graph, &search)
    }

    fn technique_watch(pred: &str) -> WatchSpec {
        WatchSpec::Node {
            label: Some("Technique".into()),
            predicate: Some(CompiledPredicate::compile(pred).unwrap()),
        }
    }

    #[test]
    fn node_predicate_lifecycle_appeared_updated_removed() {
        let mut graph = GraphStore::new();
        let hub = SubscriptionHub::new(&mut graph);
        let mut epoch = EpochBuilder::new(&mut graph);
        let sub = hub.subscribe(technique_watch("n.name CONTAINS 'T1486'"), 16);
        let mut prev = freeze(&mut epoch, &mut graph);

        // Epoch 1: the watched entity appears (plus noise it must ignore).
        let t = graph.create_node("Technique", [("name", Value::from("T1486 encrypt"))]);
        graph.create_node("Technique", [("name", Value::from("T1059 scripting"))]);
        graph.create_node("Malware", [("name", Value::from("T1486 decoy label"))]);
        let next = freeze(&mut epoch, &mut graph);
        let report = hub.evaluate(&mut graph, &prev, &next, None);
        assert_eq!(report.matched, 1);
        assert_eq!(
            sub.poll().unwrap(),
            MatchEvent {
                subscription: sub.id(),
                kind: MatchKind::Appeared,
                node: t,
                edge: None,
                digest: next.digest(),
            }
        );
        prev = next;

        // Epoch 2: content change on a matching node → Updated.
        graph
            .set_node_prop(t, "severity", Value::from(9i64))
            .unwrap();
        let next = freeze(&mut epoch, &mut graph);
        hub.evaluate(&mut graph, &prev, &next, None);
        assert_eq!(sub.poll().unwrap().kind, MatchKind::Updated);
        prev = next;

        // Epoch 3: a conservative touch (same value re-written) fires
        // nothing — identical to what a full diff would say.
        graph
            .set_node_prop(t, "severity", Value::from(9i64))
            .unwrap();
        let next = freeze(&mut epoch, &mut graph);
        let report = hub.evaluate(&mut graph, &prev, &next, None);
        assert_eq!(report.matched, 0);
        assert!(sub.poll().is_none());
        prev = next;

        // Epoch 4: rename away from the predicate → Removed.
        graph
            .set_node_prop(t, "name", Value::from("T9999 renamed"))
            .unwrap();
        let next = freeze(&mut epoch, &mut graph);
        hub.evaluate(&mut graph, &prev, &next, None);
        assert_eq!(sub.poll().unwrap().kind, MatchKind::Removed);
    }

    #[test]
    fn edge_watch_sees_attach_retarget_and_cascade() {
        let mut graph = GraphStore::new();
        let m = graph.create_node("Malware", [("name", Value::from("wannacry"))]);
        let f1 = graph.create_node("FileName", [("name", Value::from("a.exe"))]);
        let f2 = graph.create_node("FileName", [("name", Value::from("b.exe"))]);
        let hub = SubscriptionHub::new(&mut graph);
        let mut epoch = EpochBuilder::new(&mut graph);
        let sub = hub.subscribe(WatchSpec::EdgeTouching(m), 16);
        let prev = freeze(&mut epoch, &mut graph);

        // Attach an edge; also an unrelated edge the watch must ignore.
        let e1 = graph
            .create_edge(m, "DROP", f1, [] as [(&str, Value); 0])
            .unwrap();
        graph
            .create_edge(f1, "RELATED_TO", f2, [] as [(&str, Value); 0])
            .unwrap();
        let next = freeze(&mut epoch, &mut graph);
        hub.evaluate(&mut graph, &prev, &next, None);
        let got = sub.drain();
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].kind, got[0].edge), (MatchKind::Appeared, Some(e1)));
        let prev = next;

        // Re-point: delete + recreate toward another file, one epoch.
        graph.delete_edge(e1).unwrap();
        let e2 = graph
            .create_edge(m, "DROP", f2, [] as [(&str, Value); 0])
            .unwrap();
        let next = freeze(&mut epoch, &mut graph);
        hub.evaluate(&mut graph, &prev, &next, None);
        let mut got = sub.drain();
        got.sort();
        assert_eq!(got.len(), 2);
        assert!(got
            .iter()
            .any(|e| e.kind == MatchKind::Removed && e.edge == Some(e1)));
        assert!(got
            .iter()
            .any(|e| e.kind == MatchKind::Appeared && e.edge == Some(e2)));
        let prev = next;

        // Deleting the watched entity cascades Removed for its edge.
        graph.delete_node(m).unwrap();
        let next = freeze(&mut epoch, &mut graph);
        hub.evaluate(&mut graph, &prev, &next, None);
        let got = sub.drain();
        assert!(got
            .iter()
            .any(|e| e.kind == MatchKind::Removed && e.edge == Some(e2)));
    }

    #[test]
    fn bounded_mailbox_accounts_for_every_dropped_match() {
        let mut graph = GraphStore::new();
        let hub = SubscriptionHub::new(&mut graph);
        let mut epoch = EpochBuilder::new(&mut graph);
        let sub = hub.subscribe(
            WatchSpec::Node {
                label: Some("Malware".into()),
                predicate: None,
            },
            2,
        );
        let trace = TraceLog::new();
        let prev = freeze(&mut epoch, &mut graph);
        for i in 0..5 {
            graph.create_node("Malware", [("name", Value::from(format!("m{i}")))]);
        }
        let next = freeze(&mut epoch, &mut graph);
        let report = hub.evaluate(&mut graph, &prev, &next, Some(&trace));

        assert_eq!(report.matched, 5);
        assert_eq!((report.delivered, report.dropped), (2, 3));
        let stats = sub.stats();
        assert_eq!(stats.matched, stats.delivered + stats.dropped);
        assert_eq!((stats.delivered, stats.dropped, stats.queued), (2, 3, 2));
        // The report still carries all five (the count is never lost).
        assert_eq!(report.matches.len(), 5);
        let events: Vec<TraceEvent> = trace.snapshot().into_iter().map(|r| r.event).collect();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::SubscriptionMatched {
                matched: 5,
                appeared: 5,
                ..
            }
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::MailboxOverflow { dropped: 3, .. })));
    }

    #[test]
    fn incremental_matches_equal_full_rescan() {
        let mut graph = GraphStore::new();
        let seed = graph.create_node("Malware", [("name", Value::from("seed"))]);
        let hub = SubscriptionHub::new(&mut graph);
        let mut epoch = EpochBuilder::new(&mut graph);
        let specs = [
            WatchSpec::Node {
                label: None,
                predicate: Some(CompiledPredicate::compile("n.name CONTAINS 'e'").unwrap()),
            },
            WatchSpec::EdgeTouching(seed),
        ];
        let subs: Vec<Subscription> = specs
            .iter()
            .map(|s| hub.subscribe(s.clone(), usize::MAX))
            .collect();
        let mut prev = freeze(&mut epoch, &mut graph);
        for round in 0..6 {
            let n = graph.create_node("Tool", [("name", Value::from(format!("tool-{round}")))]);
            graph
                .create_edge(seed, "USES", n, [] as [(&str, Value); 0])
                .unwrap();
            if round % 2 == 0 {
                graph.delete_node(n).unwrap();
            }
            let next = freeze(&mut epoch, &mut graph);
            let report = hub.evaluate(&mut graph, &prev, &next, None);
            for (spec, sub) in specs.iter().zip(&subs) {
                let oracle = rescan_matches(spec, sub.id(), &prev, &next);
                let got: Vec<MatchEvent> = report
                    .matches
                    .iter()
                    .filter(|e| e.subscription == sub.id())
                    .cloned()
                    .collect();
                assert_eq!(got, oracle, "round {round} diverged from the oracle");
            }
            prev = next;
        }
    }

    #[test]
    fn unsubscribe_stops_delivery_and_rejects_aggregates() {
        let mut graph = GraphStore::new();
        let hub = SubscriptionHub::new(&mut graph);
        let mut epoch = EpochBuilder::new(&mut graph);
        let sub = hub.subscribe(
            WatchSpec::Node {
                label: None,
                predicate: None,
            },
            8,
        );
        assert_eq!(hub.len(), 1);
        hub.unsubscribe(sub.id());
        assert!(hub.is_empty());
        let prev = freeze(&mut epoch, &mut graph);
        graph.create_node("Malware", [("name", Value::from("x"))]);
        let next = freeze(&mut epoch, &mut graph);
        let report = hub.evaluate(&mut graph, &prev, &next, None);
        assert_eq!(report.matched, 0);
        assert!(sub.poll().is_none());
        // Aggregates have no row-at-a-time meaning: rejected at compile.
        assert!(CompiledPredicate::compile("count(*) > 0").is_err());
        assert!(CompiledPredicate::compile("NOT (count(n) = 1)").is_err());
    }

    #[test]
    fn compiled_predicates_agree_with_the_interpreted_evaluator() {
        let mut graph = GraphStore::new();
        let a = graph.create_node("Malware", [("name", Value::from("wannacry"))]);
        let b = graph.create_node(
            "Technique",
            [("name", Value::from("T1486")), ("score", Value::Int(9))],
        );
        let c = graph.create_node("Tool", [] as [(&str, Value); 0]);
        for source in [
            "n.name CONTAINS 'T14'",
            "n.name STARTS WITH 'wanna'",
            "n.score >= 5",
            "n.name = 'T1486' OR n.score < 3",
            "NOT n.name ENDS WITH 'cry'",
            "n.missing = 'x'",
            "other.name = 'wannacry'",
        ] {
            let predicate = CompiledPredicate::compile(source).unwrap();
            let expr = cypher::parse_predicate(source).unwrap();
            for id in [a, b, c, NodeId(999)] {
                let oracle =
                    cypher::node_satisfies(&graph, id, PREDICATE_VAR, &expr).unwrap_or(false);
                assert_eq!(
                    predicate.matches(&graph, id),
                    oracle,
                    "{source} on {id:?} diverged from node_satisfies"
                );
            }
        }
    }
}
