//! kg-serve — the knowledge-consumption layer (paper §2.6; ThreatKG's
//! explicit serving split): many concurrent readers over a store that
//! ingestion keeps writing to.
//!
//! The concurrency model is **epoch-style snapshot publication**: the ingest
//! writer periodically freezes the knowledge base into an immutable
//! [`KgSnapshot`] (graph + BM25 index + expansion adjacency + canonical
//! digest) and publishes it with one atomic `Arc` swap. Readers *pin* the
//! current snapshot (an `Arc` clone) and run keyword search, Cypher and
//! k-hop expansion against it for as long as they like:
//!
//! - readers never block the writer (the swap waits only for concurrent
//!   `Arc` clones, never for in-flight queries);
//! - readers never observe a torn graph — every answer is consistent with
//!   exactly one published digest, which the response carries;
//! - superseded snapshots are freed when the last pinned reader drops them.
//!
//! On top sits a bounded [`QueryCache`] keyed by `(snapshot digest,
//! normalized query)`: publishing a new snapshot invalidates nothing and
//! races nothing, because old-digest entries can never be returned for
//! new-digest lookups — they just age out. Publishes and cache counters are
//! surfaced as [`TraceEvent`]s on the serving [`TraceLog`].
//!
//! Freezing a snapshot comes in two flavours: [`KgSnapshot::build`] is the
//! O(graph) full rebuild (the correctness oracle), and [`EpochBuilder`] is
//! the O(delta) incremental path — it carries the digest and adjacency table
//! forward across epochs and relies on structural sharing (`Arc`'d graph
//! segments and posting lists) to make the freeze clones refcount bumps.
//!
//! Push alerts ride the same delta stream: a [`SubscriptionHub`] holds
//! standing queries (node predicates compiled to the Cypher `WHERE` form,
//! edge-touching-entity watches) and evaluates them **incrementally** against
//! each epoch's delta at publish time — O(delta × subscriptions), never a
//! rescan — delivering into per-subscriber bounded mailboxes with exact
//! overflow accounting. See [`KgServe::publish_watched`].

mod cache;
mod epoch;
mod plan;
mod shard;
mod snapshot;
mod subscribe;

pub use cache::{CacheStats, QueryCache};
pub use epoch::EpochBuilder;
pub use plan::{PlanCache, PlanCacheStats};
pub use shard::{
    combined_digest, ShardDoc, ShardSet, ShardSnapshot, ShardStamp, ShardedResponse, ShardedServe,
    ShardedStats,
};
pub use snapshot::{normalize, Answer, KgSnapshot, Query, SnapshotMode};
pub use subscribe::{
    rescan_matches, CompiledPredicate, DeliveryReport, MatchEvent, MatchKind, Subscription,
    SubscriptionHub, SubscriptionId, SubscriptionStats, WatchSpec, PREDICATE_VAR,
};

use kg_pipeline::{TraceEvent, TraceLog};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One answered query, stamped with the snapshot it was answered from.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Digest of the snapshot that produced `answer`.
    pub digest: u64,
    /// Publish version of that snapshot.
    pub version: u64,
    /// Whether the answer came from the cache.
    pub cached: bool,
    pub answer: Answer,
}

/// Aggregate serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Snapshots published (including the initial one).
    pub publishes: u64,
    /// Queries executed.
    pub queries: u64,
    pub cache: CacheStats,
    /// Compiled-plan cache counters (keyed by query text alone, so these
    /// survive publishes — `compiles` flat across epochs is the invariant).
    pub plans: PlanCacheStats,
}

/// Default capacity of the compiled-plan caches ([`KgServe`] and
/// [`ShardedServe`]). Plans are small (an AST-sized artifact, no graph
/// data), so the bound exists to cap adversarial churn, not memory.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 1024;

/// The serving layer: one writer publishing snapshots, N readers querying.
pub struct KgServe {
    current: RwLock<Arc<KgSnapshot>>,
    cache: QueryCache,
    /// Compiled Cypher plans keyed by normalized query text — deliberately
    /// *not* digest-keyed like `cache`: a plan depends only on the text, so
    /// publishes invalidate nothing and compiled artifacts live for the
    /// process lifetime.
    plans: PlanCache,
    publishes: AtomicU64,
    queries: AtomicU64,
    trace: TraceLog,
}

impl KgServe {
    /// Start serving `first` (published as version 1) with a query cache of
    /// ~`cache_capacity` entries (0 disables caching).
    pub fn new(first: KgSnapshot, cache_capacity: usize) -> Self {
        let serve = KgServe {
            current: RwLock::new(Arc::new(KgSnapshot::build_placeholder())),
            cache: QueryCache::new(cache_capacity),
            plans: PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY),
            publishes: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            trace: TraceLog::new(),
        };
        serve.publish(first);
        serve
    }

    /// Atomically swap in a new snapshot; returns its assigned version.
    /// The write lock is held only for the pointer swap — readers holding
    /// pinned `Arc`s are untouched and finish on their old epoch.
    pub fn publish(&self, mut snapshot: KgSnapshot) -> u64 {
        let version = self.publishes.fetch_add(1, Ordering::SeqCst) + 1;
        snapshot.set_version(version);
        let event = TraceEvent::SnapshotPublished {
            version,
            kg_digest: snapshot.digest(),
            nodes: snapshot.node_count(),
            edges: snapshot.edge_count(),
            build_us: snapshot.build_us(),
            mode: snapshot.mode().label(),
        };
        *self.current.write() = Arc::new(snapshot);
        self.trace.record(event);
        version
    }

    /// Publish with standing-query evaluation: diff the delta sealed by
    /// `snapshot`'s freeze against every subscription in `hub` (previous
    /// published snapshot as the baseline), record `SubscriptionMatched` /
    /// `MailboxOverflow` on the serving trace, then swap the snapshot in.
    /// Returns the assigned version and the delivery report.
    pub fn publish_watched(
        &self,
        hub: &SubscriptionHub,
        graph: &mut kg_graph::GraphStore,
        snapshot: KgSnapshot,
    ) -> (u64, DeliveryReport) {
        let prev = self.pin();
        let report = hub.evaluate(graph, &prev, &snapshot, Some(&self.trace));
        let version = self.publish(snapshot);
        (version, report)
    }

    /// Pin the current snapshot: an `Arc` clone readers hold for the
    /// duration of one query (or an entire session — epochs don't expire).
    pub fn pin(&self) -> Arc<KgSnapshot> {
        Arc::clone(&self.current.read())
    }

    /// Execute against the *current* snapshot (pin + [`Self::execute_on`]).
    pub fn execute(&self, query: &Query) -> QueryResponse {
        let snapshot = self.pin();
        self.execute_on(&snapshot, query)
    }

    /// Execute against an explicitly pinned snapshot, going through the
    /// digest-keyed cache. The response's digest always equals
    /// `snapshot.digest()` — answers can never leak across epochs.
    pub fn execute_on(&self, snapshot: &KgSnapshot, query: &Query) -> QueryResponse {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let key = query.cache_key();
        if let Some(answer) = self.cache.get(snapshot.digest(), &key) {
            return QueryResponse {
                digest: snapshot.digest(),
                version: snapshot.version(),
                cached: true,
                answer,
            };
        }
        let answer = match query {
            // The Cypher path binds a cached compiled plan to the pinned
            // snapshot — plan reuse across epochs, answer isolation per
            // epoch (the answer still enters the digest-keyed cache above).
            Query::Cypher { q } => match self.plans.plan(q) {
                Ok(plan) => match plan.execute_on(snapshot, &kg_graph::Params::new()) {
                    Ok(result) => Answer::Rows {
                        columns: result.columns,
                        rows: result.rows,
                    },
                    Err(e) => Answer::Error(e.to_string()),
                },
                Err(e) => Answer::Error(e.to_string()),
            },
            _ => snapshot.answer(query),
        };
        self.cache.insert(snapshot.digest(), &key, answer.clone());
        QueryResponse {
            digest: snapshot.digest(),
            version: snapshot.version(),
            cached: false,
            answer,
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            publishes: self.publishes.load(Ordering::SeqCst),
            queries: self.queries.load(Ordering::Relaxed),
            cache: self.cache.stats(),
            plans: self.plans.stats(),
        }
    }

    /// The query cache (for clearing between bench phases).
    pub fn cache(&self) -> &QueryCache {
        &self.cache
    }

    /// The compiled-plan cache (epoch-independent; never needs clearing on
    /// publish).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// The serving trace (snapshot publishes, cache reports).
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Record a point-in-time [`TraceEvent::CacheReport`] on the trace.
    pub fn record_cache_report(&self) {
        let stats = self.cache.stats();
        self.trace.record(TraceEvent::CacheReport {
            hits: stats.hits,
            misses: stats.misses,
            evictions: stats.evictions,
            entries: stats.entries,
        });
    }

    /// Record a point-in-time [`TraceEvent::PlanCacheReport`] on the trace.
    pub fn record_plan_cache_report(&self) {
        let stats = self.plans.stats();
        self.trace.record(TraceEvent::PlanCacheReport {
            hits: stats.hits,
            misses: stats.misses,
            compiles: stats.compiles,
            evictions: stats.evictions,
            entries: stats.entries,
        });
    }
}

impl KgSnapshot {
    /// Empty snapshot used only to initialise the publication cell before
    /// the first real publish (never observable: `KgServe::new` publishes
    /// over it before returning).
    fn build_placeholder() -> KgSnapshot {
        KgSnapshot::build(
            kg_graph::GraphStore::new(),
            kg_search::SearchIndex::default(),
        )
    }
}

/// `p`-th percentile (0.0–1.0) of an unsorted sample set, in the sample's
/// unit; 0 for empty samples. Sorts in place.
///
/// Uses linear interpolation between closest ranks (the "C = 1" /
/// `numpy.percentile` definition): the fractional rank `(n - 1) · p` is
/// split into its floor and ceiling neighbours and the result interpolates
/// between them. Rounding the rank instead (the previous behaviour)
/// collapses high quantiles on small samples — with n = 100, p999 rounded
/// to the p100 sample and p99 to... whatever `round` landed on — which
/// makes tail latencies in E16's open-loop sweeps unreportable.
pub fn percentile(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = (samples.len() - 1) as f64 * p.clamp(0.0, 1.0);
    let lo = rank.floor() as usize;
    let hi = (rank.ceil() as usize).min(samples.len() - 1);
    if lo == hi {
        return samples[lo];
    }
    let frac = rank - lo as f64;
    let (a, b) = (samples[lo] as f64, samples[hi] as f64);
    (a + (b - a) * frac).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::{GraphStore, Value};
    use kg_search::SearchIndex;

    fn small_snapshot(extra: usize) -> KgSnapshot {
        let mut graph = GraphStore::new();
        let m = graph.create_node("Malware", [("name", Value::from("wannacry"))]);
        let f = graph.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        graph
            .create_edge(m, "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        for i in 0..extra {
            graph.create_node("Malware", [("name", Value::from(format!("mal-{i}")))]);
        }
        let mut search = SearchIndex::default();
        search.add(m, "wannacry ransomware drops tasksche.exe");
        KgSnapshot::build(graph, search)
    }

    #[test]
    fn publish_assigns_versions_and_traces() {
        let serve = KgServe::new(small_snapshot(0), 64);
        assert_eq!(serve.pin().version(), 1);
        let v2 = serve.publish(small_snapshot(3));
        assert_eq!(v2, 2);
        assert_eq!(serve.pin().version(), 2);
        assert_eq!(serve.stats().publishes, 2);
        let events: Vec<_> = serve
            .trace()
            .snapshot()
            .into_iter()
            .map(|r| r.event)
            .collect();
        assert!(matches!(
            events[0],
            TraceEvent::SnapshotPublished { version: 1, .. }
        ));
        assert!(matches!(
            events[1],
            TraceEvent::SnapshotPublished { version: 2, nodes, .. } if nodes == 5
        ));
    }

    #[test]
    fn pinned_readers_keep_their_epoch_across_publishes() {
        let serve = KgServe::new(small_snapshot(0), 64);
        let pinned = serve.pin();
        let d1 = pinned.digest();
        serve.publish(small_snapshot(5));
        // The pinned epoch is unchanged and still fully queryable...
        assert_eq!(pinned.digest(), d1);
        assert_eq!(pinned.node_count(), 2);
        let old = serve.execute_on(
            &pinned,
            &Query::Search {
                q: "wannacry".into(),
                k: 5,
            },
        );
        assert_eq!(old.digest, d1);
        // ...while fresh pins see the new epoch.
        let new = serve.execute(&Query::Search {
            q: "wannacry".into(),
            k: 5,
        });
        assert_ne!(new.digest, d1);
        assert_eq!(new.version, 2);
    }

    #[test]
    fn cache_hits_within_an_epoch_and_resets_across_epochs() {
        let serve = KgServe::new(small_snapshot(0), 64);
        let q = Query::Search {
            q: "wannacry".into(),
            k: 5,
        };
        let first = serve.execute(&q);
        assert!(!first.cached);
        let second = serve.execute(&q);
        assert!(second.cached);
        assert_eq!(first.answer, second.answer);
        // New epoch: same query misses (digest differs), then hits again.
        serve.publish(small_snapshot(1));
        let third = serve.execute(&q);
        assert!(!third.cached);
        assert!(serve.execute(&q).cached);
        let stats = serve.stats();
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.cache.hits, 2);
        assert_eq!(stats.cache.misses, 2);
    }

    #[test]
    fn cache_report_lands_on_the_trace() {
        let serve = KgServe::new(small_snapshot(0), 64);
        serve.execute(&Query::Cypher {
            q: "MATCH (n:Malware) RETURN count(*)".into(),
        });
        serve.record_cache_report();
        assert!(serve.trace().snapshot().iter().any(|r| matches!(
            r.event,
            TraceEvent::CacheReport {
                misses: 1,
                entries: 1,
                ..
            }
        )));
    }

    #[test]
    fn expand_and_cypher_answers_reference_only_snapshot_nodes() {
        let serve = KgServe::new(small_snapshot(4), 64);
        let snap = serve.pin();
        for query in [
            Query::Expand {
                name: "wannacry".into(),
                hops: 2,
                cap: 50,
            },
            Query::Cypher {
                q: "MATCH (m:Malware)-[:DROP]->(f) RETURN m, f".into(),
            },
        ] {
            let response = serve.execute_on(&snap, &query);
            assert_eq!(response.digest, snap.digest());
            let ids = response.answer.node_ids();
            assert!(!ids.is_empty());
            for id in ids {
                assert!(snap.graph().node(id).is_some());
            }
        }
    }

    #[test]
    fn percentile_bounds() {
        let mut samples = vec![50, 10, 30, 20, 40];
        assert_eq!(percentile(&mut samples, 0.0), 10);
        assert_eq!(percentile(&mut samples, 0.5), 30);
        assert_eq!(percentile(&mut samples, 1.0), 50);
        assert_eq!(percentile(&mut [], 0.5), 0);
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        let mut samples = vec![10, 20, 30, 40, 50];
        assert_eq!(percentile(&mut samples, 0.1), 14);
        assert_eq!(percentile(&mut samples, 0.9), 46);
        assert_eq!(percentile(&mut samples, 0.999), 50);
        // Out-of-range p clamps to the extremes.
        assert_eq!(percentile(&mut samples, -1.0), 10);
        assert_eq!(percentile(&mut samples, 2.0), 50);
    }

    #[test]
    fn percentile_degenerate_and_small_sample_counts() {
        assert_eq!(percentile(&mut [], 0.999), 0);
        // Single sample: every quantile is that sample.
        assert_eq!(percentile(&mut [42], 0.0), 42);
        assert_eq!(percentile(&mut [42], 0.999), 42);
        assert_eq!(percentile(&mut [42], 1.0), 42);
        // Two samples: p999 interpolates just below the max instead of
        // collapsing onto a rounded rank.
        assert_eq!(percentile(&mut [0, 1000], 0.5), 500);
        assert_eq!(percentile(&mut [0, 1000], 0.999), 999);
        // n < 1000: p999 lands between the top two samples.
        let mut samples: Vec<u64> = (0..100).map(|i| i * 10).collect();
        assert_eq!(percentile(&mut samples, 0.999), 989);
    }

    #[test]
    fn unknown_expand_target_is_an_empty_answer() {
        let serve = KgServe::new(small_snapshot(0), 64);
        let response = serve.execute(&Query::Expand {
            name: "no-such-entity".into(),
            hops: 3,
            cap: 10,
        });
        assert_eq!(response.answer, Answer::Nodes(Vec::new()));
    }
}
