//! The epoch-surviving compiled-plan cache.
//!
//! Compiling a Cypher read (parse + plan lowering) costs far more than
//! binding an already-compiled [`CompiledPlan`] to a snapshot, and — unlike
//! *answers* — a plan depends only on the query text, never on graph
//! content. So where the answer cache ([`crate::QueryCache`]) keys by
//! `(snapshot digest, normalized query)` and starts cold every epoch, this
//! cache keys by the normalized query text **alone**: publishing a new
//! snapshot invalidates nothing, and a serving fleet re-binds the same
//! `Arc`'d plan across every epoch it ever sees. The two caches share
//! [`crate::normalize`], so any pair of queries that agree on an answer-cache
//! key agree on a plan-cache key too.
//!
//! Only successful compilations are cached; a query that fails to parse or
//! plan is re-diagnosed on every miss (failures are cheap — they never reach
//! execution — and caching them would let a bounded cache be flushed by
//! garbage queries... which FIFO eviction permits anyway, so the real reason
//! is simpler: an `Err` entry has nothing reusable in it).

use kg_graph::cypher::CypherError;
use kg_graph::{parse, CompiledPlan};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked shards (same rationale as
/// [`crate::QueryCache`]: keep the hit path uncontended under concurrency).
const SHARDS: usize = 16;

#[derive(Default)]
struct Shard {
    map: HashMap<String, Arc<CompiledPlan>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<String>,
}

/// Point-in-time plan-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Successful compilations (a miss that failed to compile increments
    /// `misses` but not `compiles`).
    pub compiles: u64,
    pub evictions: u64,
    pub entries: usize,
}

/// Bounded, sharded cache of compiled query plans keyed by normalized query
/// text. Shared across epochs by construction — nothing snapshot-dependent
/// enters the key or the value.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    /// Max entries per shard; 0 disables caching (every lookup compiles).
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    /// Cache holding at most ~`capacity` plans; 0 disables caching.
    pub fn new(capacity: usize) -> Self {
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(SHARDS)
        };
        PlanCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &str) -> &Mutex<Shard> {
        let h = kg_ir::fnv1a64(key.as_bytes());
        &self.shards[(h as usize) % SHARDS]
    }

    /// Fetch the compiled plan for `text`, compiling (and caching) on a
    /// miss. The key is `normalize(text)` — the same normalizer the answer
    /// cache's Cypher keys use — so whitespace-variant spellings of one
    /// query share one plan.
    pub fn plan(&self, text: &str) -> Result<Arc<CompiledPlan>, CypherError> {
        if self.per_shard == 0 {
            self.compiles.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(CompiledPlan::compile(&parse(text)?)?));
        }
        let key = crate::normalize(text);
        if let Some(plan) = self.shard_of(&key).lock().map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(CompiledPlan::compile(&parse(text)?)?);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(&key).lock();
        if shard.map.contains_key(&key) {
            // Raced with another compiler; either plan is equivalent.
        } else {
            if shard.map.len() >= self.per_shard {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.map.remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            shard.order.push_back(key.clone());
            shard.map.insert(key, Arc::clone(&plan));
        }
        Ok(plan)
    }

    /// Plans currently cached (across shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (counters keep accumulating).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.map.clear();
            shard.order.clear();
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Query;

    #[test]
    fn whitespace_variants_share_one_plan() {
        let cache = PlanCache::new(64);
        let a = cache.plan("MATCH (n)   RETURN n").unwrap();
        let b = cache.plan("MATCH (n) RETURN n").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.compiles), (1, 1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn plan_keys_agree_with_the_answer_cache_normalizer() {
        // Regression: the two caches must agree on query equivalence. Any
        // pair of texts the answer cache unifies under one Cypher key must
        // hit one plan, and vice versa.
        let pairs = [
            ("MATCH (n)  RETURN n", "MATCH (n) RETURN n"),
            ("  MATCH (n) RETURN n  ", "MATCH (n) RETURN n"),
            ("MATCH\t(n)\nRETURN n", "MATCH (n) RETURN n"),
        ];
        let cache = PlanCache::new(64);
        for (left, right) in pairs {
            let answer_keys_equal = Query::Cypher { q: left.into() }.cache_key()
                == Query::Cypher { q: right.into() }.cache_key();
            let l = cache.plan(left).unwrap();
            let r = cache.plan(right).unwrap();
            assert_eq!(
                answer_keys_equal,
                Arc::ptr_eq(&l, &r),
                "{left:?} vs {right:?}"
            );
            assert!(answer_keys_equal);
        }
        // Case differences in string literals are distinct under both.
        let l = cache.plan("MATCH (n {name: 'A'}) RETURN n").unwrap();
        let r = cache.plan("MATCH (n {name: 'a'}) RETURN n").unwrap();
        assert!(!Arc::ptr_eq(&l, &r));
        assert_ne!(
            Query::Cypher {
                q: "MATCH (n {name: 'A'}) RETURN n".into()
            }
            .cache_key(),
            Query::Cypher {
                q: "MATCH (n {name: 'a'}) RETURN n".into()
            }
            .cache_key()
        );
    }

    #[test]
    fn failures_are_not_cached_and_count_as_misses() {
        let cache = PlanCache::new(64);
        assert!(cache.plan("not cypher").is_err());
        assert!(cache.plan("CREATE (n:Malware)").is_err());
        assert!(cache.is_empty());
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.compiles), (2, 0));
    }

    #[test]
    fn capacity_bounds_and_evictions_counted() {
        let cache = PlanCache::new(16); // 1 per shard
        for i in 0..100 {
            cache.plan(&format!("MATCH (n:L{i}) RETURN n")).unwrap();
        }
        assert!(cache.len() <= 16, "{}", cache.len());
        assert_eq!(cache.stats().evictions, 100 - cache.len() as u64);
    }

    #[test]
    fn zero_capacity_compiles_every_time() {
        let cache = PlanCache::new(0);
        let a = cache.plan("MATCH (n) RETURN n").unwrap();
        let b = cache.plan("MATCH (n) RETURN n").unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().compiles, 2);
    }
}
