//! Sharded scale-out serving: canon-key partitioning + scatter-gather.
//!
//! The single-shard serving layer ([`crate::KgServe`]) publishes one
//! [`KgSnapshot`] per epoch; every query runs against the whole graph and
//! the whole BM25 index. This module partitions the serving state across N
//! shards and reassembles exact answers:
//!
//! - **Routing** is by hashed entity canon key
//!   ([`kg_graph::node_shard`]): a node is owned by
//!   `hash(label + NUL + name) % N` (id hash for unnamed nodes), an edge by
//!   the owner of its `from` node, and a search document by the owner of
//!   its subject node at first sync (sticky thereafter). Canon-key routing
//!   means the entities the §2.5 merge rule would unify always land
//!   together, and a `(label, name)` query touches exactly one shard.
//! - **Per-shard epoch streams**: each shard runs its own
//!   [`ShardEpochBuilder`] — a delta-log cursor plus owned digest terms,
//!   owned adjacency entries and an owned posting partition — so shards
//!   freeze and publish independently, O(delta) each, exactly like the
//!   single-shard [`crate::EpochBuilder`].
//! - **Scatter-gather** ([`ShardedServe`]): keyword search computes global
//!   BM25 statistics from the partitions, scores shard-locally with those
//!   stats injected and merges per-shard top-k by `(score desc, global
//!   slot asc)` — bit-identical to the unsharded scores. Cypher anchors
//!   every row at the first pattern's first node, runs match/filter on the
//!   owning shard (each shard carries a full structurally-shared replica,
//!   so joins and property lookups resolve locally) and re-projects the
//!   merged rows in `(anchor, seq)` order. BFS expansion walks the
//!   per-shard adjacency partitions hop by hop from the gather side.
//! - **Auditability**: every [`ShardedResponse`] carries a `(shard,
//!   version, digest)` vector. Shard digests are *partial* digests — the
//!   seedless sum of owned element terms — chosen so that
//!   `DIGEST_SEED + Σ partial digests == GraphStore::digest()` holds for
//!   any consistent cut: cross-shard consistency is one wrapping sum away
//!   from the canonical whole-graph digest.
//!
//! The differential oracle battery lives in `tests/shard_props.rs`:
//! sharded answers must be byte-identical to the N=1 answers for arbitrary
//! mutate/publish interleavings and shard counts.

use crate::plan::PlanCache;
use crate::snapshot::{Answer, Query};
use kg_graph::store::{Edge, Node};
use kg_graph::{
    canon_shard, edge_digest, id_shard, node_digest, node_shard, DeltaBatch, DeltaCursor, EdgeId,
    GraphSnapshot, GraphStore, NodeId, Params, ScatterRow, Value, DIGEST_SEED,
};
use kg_search::{CorpusStats, Hit, SearchIndex};
use parking_lot::RwLock;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A search-partition document key: `(global slot, subject node)`. The
/// global slot makes the cross-shard tie-break identical to the unsharded
/// index's ascending-slot tie-break.
pub type ShardDoc = (u32, NodeId);

/// One shard's immutable published state: a full graph replica (cheap by
/// structural sharing — this is the ghost/halo layer, realised through
/// `Arc`'d arena segments instead of copies), the shard's posting
/// partition, its owned adjacency entries, and its partial digest.
pub struct ShardSnapshot {
    shard: usize,
    shards: usize,
    version: u64,
    /// Seedless wrapping sum of owned element digest terms. Summing all
    /// shards' partials and adding [`DIGEST_SEED`] yields the canonical
    /// whole-graph digest.
    partial_digest: u64,
    /// Full replica at freeze time; anchored match/filter and property
    /// lookups resolve locally against it.
    graph: GraphStore,
    /// Posting partition over owned documents, keyed by global slot.
    search: SearchIndex<ShardDoc>,
    /// Owned live nodes → expansion neighbours. Presence in this table IS
    /// the shard's ownership test.
    adjacency: HashMap<NodeId, Arc<Vec<NodeId>>>,
    build_us: u64,
}

impl ShardSnapshot {
    /// Which shard of how many this is.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Total shard count of the partition this snapshot belongs to.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Publish sequence number (0 until published).
    pub fn version(&self) -> u64 {
        self.version
    }

    pub(crate) fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// The seedless partial digest over owned elements.
    pub fn partial_digest(&self) -> u64 {
        self.partial_digest
    }

    /// Wall time spent freezing this shard snapshot, microseconds.
    pub fn build_us(&self) -> u64 {
        self.build_us
    }

    /// Whether this shard owns `id` (and the node is live).
    pub fn owns(&self, id: NodeId) -> bool {
        self.adjacency.contains_key(&id)
    }

    /// Owned live nodes.
    pub fn owned_count(&self) -> usize {
        self.adjacency.len()
    }

    /// The expansion neighbours of an owned node (empty when not owned).
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        self.adjacency.get(&id).map_or(&[][..], |v| v.as_slice())
    }

    /// The full graph replica frozen with this shard.
    pub fn graph(&self) -> &GraphStore {
        &self.graph
    }

    /// The shard's posting partition.
    pub fn search_partition(&self) -> &SearchIndex<ShardDoc> {
        &self.search
    }
}

/// Compiled plans scatter directly against a shard snapshot. Graph reads
/// delegate to the full replica; [`GraphSnapshot::khop_adjacency`] serves
/// the frozen table only for *owned* nodes (the shard's adjacency partition
/// is partial — an unowned node's entry is absent, not empty, so plans must
/// fall back to the replica's edge walk there).
impl GraphSnapshot for ShardSnapshot {
    fn node(&self, id: NodeId) -> Option<&Node> {
        self.graph.node(id)
    }

    fn edge(&self, id: EdgeId) -> Option<&Edge> {
        self.graph.edge(id)
    }

    fn out_edge_ids(&self, id: NodeId) -> &[EdgeId] {
        self.graph.out_edge_ids(id)
    }

    fn in_edge_ids(&self, id: NodeId) -> &[EdgeId] {
        self.graph.in_edge_ids(id)
    }

    fn nodes_with_label(&self, label: &str) -> Vec<NodeId> {
        self.graph.nodes_with_label(label)
    }

    fn node_by_name(&self, label: &str, name: &str) -> Option<NodeId> {
        self.graph.node_by_name(label, name)
    }

    fn all_node_ids(&self) -> Vec<NodeId> {
        self.graph.all_nodes().map(|n| n.id).collect()
    }

    fn nodes_with_prop_eq(&self, key: &str, value: &Value) -> Option<Vec<NodeId>> {
        self.graph.nodes_with_prop_eq(key, value)
    }

    fn khop_adjacency(&self, id: NodeId) -> Option<&[NodeId]> {
        self.adjacency.get(&id).map(|a| a.as_slice())
    }
}

/// One shard's writer-side incremental state: the sharded sibling of
/// [`crate::EpochBuilder`]. It observes the writer through its own
/// delta-log cursor and maintains only *owned* digest terms and adjacency
/// entries, re-evaluating ownership on every touched element (a rename
/// migrates the node and its outgoing edges to another shard with no edge
/// deltas, so node deltas re-route the node's outgoing edges too).
struct ShardEpochBuilder {
    shard: usize,
    shards: usize,
    /// Digest term of every live owned node.
    node_terms: HashMap<NodeId, u64>,
    /// Digest term of every live owned edge (owned = owner of `from`).
    edge_terms: HashMap<EdgeId, u64>,
    /// Running seedless partial digest.
    partial: u64,
    /// Owned live nodes → neighbours, individually `Arc`'d.
    adjacency: HashMap<NodeId, Arc<Vec<NodeId>>>,
    /// The shard's posting partition (append-only, like its source).
    search: SearchIndex<ShardDoc>,
    /// This builder's cursor on the writer's delta log.
    cursor: DeltaCursor,
}

impl ShardEpochBuilder {
    /// Seed from a full scan of the live graph, keeping only owned
    /// elements. The one O(graph) moment per shard.
    fn new(graph: &mut GraphStore, shard: usize, shards: usize) -> Self {
        let cursor = graph.register_delta_consumer();
        let mut partial = 0u64;
        let mut node_terms = HashMap::new();
        let mut edge_terms = HashMap::new();
        let mut adjacency = HashMap::new();
        for node in graph.all_nodes() {
            if node_shard(node, shards) != shard {
                continue;
            }
            let term = node_digest(node);
            node_terms.insert(node.id, term);
            partial = partial.wrapping_add(term);
            adjacency.insert(node.id, Arc::new(graph.neighbors(node.id)));
        }
        for edge in graph.all_edges() {
            if edge_owner(graph, edge.from, shards) != shard {
                continue;
            }
            let term = edge_digest(edge);
            edge_terms.insert(edge.id, term);
            partial = partial.wrapping_add(term);
        }
        ShardEpochBuilder {
            shard,
            shards,
            node_terms,
            edge_terms,
            partial,
            adjacency,
            search: SearchIndex::default(),
            cursor,
        }
    }

    /// Collect unseen delta batches and patch terms + adjacency: O(delta).
    fn absorb(&mut self, graph: &mut GraphStore) {
        for batch in graph.collect_changes(self.cursor) {
            self.apply_batch(graph, &batch);
        }
    }

    /// Drop a tracked edge term and re-add it iff the edge is live and
    /// currently owned — the one routine every edge-ownership path (edge
    /// delta, endpoint rename, endpoint delete) funnels through.
    fn reroute_edge(&mut self, graph: &GraphStore, edge_id: EdgeId) {
        if let Some(old) = self.edge_terms.remove(&edge_id) {
            self.partial = self.partial.wrapping_sub(old);
        }
        if let Some(edge) = graph.edge(edge_id) {
            if edge_owner(graph, edge.from, self.shards) == self.shard {
                let term = edge_digest(edge);
                self.edge_terms.insert(edge_id, term);
                self.partial = self.partial.wrapping_add(term);
            }
        }
    }

    fn apply_batch(&mut self, graph: &GraphStore, batch: &DeltaBatch) {
        let mut dirty: BTreeSet<NodeId> = BTreeSet::new();
        for &(edge_id, from, to) in &batch.changes.edges {
            self.reroute_edge(graph, edge_id);
            dirty.insert(from);
            dirty.insert(to);
        }
        for &node_id in &batch.changes.nodes {
            if let Some(old) = self.node_terms.remove(&node_id) {
                self.partial = self.partial.wrapping_sub(old);
            }
            if let Some(node) = graph.node(node_id) {
                if node_shard(node, self.shards) == self.shard {
                    let term = node_digest(node);
                    self.node_terms.insert(node_id, term);
                    self.partial = self.partial.wrapping_add(term);
                }
            }
            // A rename migrates the node's outgoing edges between shards
            // without any edge delta — re-route them off the node delta.
            for edge in graph.outgoing(node_id) {
                self.reroute_edge(graph, edge.id);
            }
            dirty.insert(node_id);
        }
        for node_id in dirty {
            let owned_live = graph
                .node(node_id)
                .is_some_and(|n| node_shard(n, self.shards) == self.shard);
            if owned_live {
                self.adjacency
                    .insert(node_id, Arc::new(graph.neighbors(node_id)));
            } else {
                self.adjacency.remove(&node_id);
            }
        }
    }

    fn freeze(&mut self, graph: &mut GraphStore) -> ShardSnapshot {
        let start = Instant::now();
        self.absorb(graph);
        ShardSnapshot {
            shard: self.shard,
            shards: self.shards,
            version: 0,
            partial_digest: self.partial,
            graph: graph.clone(),
            search: self.search.clone(),
            adjacency: self.adjacency.clone(),
            build_us: start.elapsed().as_micros() as u64,
        }
    }
}

/// The owner shard of an edge: the owner of its `from` node. Live edges
/// always have live endpoints (deletes cascade); the id-hash arm is a
/// defensive fallback that keeps routing total.
fn edge_owner(graph: &GraphStore, from: NodeId, shards: usize) -> usize {
    match graph.node(from) {
        Some(node) => node_shard(node, shards),
        None => id_shard(from.0, shards),
    }
}

/// Writer-side partition state: one [`ShardEpochBuilder`] per shard plus
/// the shared document watermark. Documents are routed exactly once,
/// globally, in slot order — per-shard freeze skew can therefore never
/// duplicate or drop a document, and within each partition local slot
/// order equals global slot order (the tie-break invariant).
pub struct ShardSet {
    builders: Vec<ShardEpochBuilder>,
    /// Docs below this watermark have been routed into a partition.
    docs_seen: usize,
}

impl ShardSet {
    /// Seed `shards` builders from a full scan and route every already-
    /// indexed document.
    pub fn new(graph: &mut GraphStore, search: &SearchIndex<NodeId>, shards: usize) -> Self {
        let shards = shards.max(1);
        let mut set = ShardSet {
            builders: (0..shards)
                .map(|shard| ShardEpochBuilder::new(graph, shard, shards))
                .collect(),
            docs_seen: 0,
        };
        set.sync_docs(graph, search);
        set
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.builders.len()
    }

    /// Route newly appended documents into their partitions: owner of the
    /// subject node at routing time, sticky forever after (BM25 scoring
    /// uses merged global stats, so *any* sticky assignment reproduces the
    /// unsharded scores — routing only decides locality).
    fn sync_docs(&mut self, graph: &GraphStore, search: &SearchIndex<NodeId>) {
        let shards = self.builders.len();
        for doc in search.appended_docs(self.docs_seen) {
            let owner = match graph.node(doc.key) {
                Some(node) => node_shard(node, shards),
                None => id_shard(doc.key.0, shards),
            };
            self.builders[owner].search.add_pretokenized(
                (doc.slot, doc.key),
                doc.counts,
                doc.token_len,
            );
        }
        self.docs_seen = search.len();
    }

    /// Freeze one shard's current state (absorbing its unseen deltas and
    /// any unrouted documents) into a publishable [`ShardSnapshot`].
    pub fn freeze_shard(
        &mut self,
        shard: usize,
        graph: &mut GraphStore,
        search: &SearchIndex<NodeId>,
    ) -> ShardSnapshot {
        self.sync_docs(graph, search);
        self.builders[shard].freeze(graph)
    }

    /// Freeze every shard at the same cut.
    pub fn freeze_all(
        &mut self,
        graph: &mut GraphStore,
        search: &SearchIndex<NodeId>,
    ) -> Vec<ShardSnapshot> {
        (0..self.builders.len())
            .map(|shard| self.freeze_shard(shard, graph, search))
            .collect()
    }
}

/// One shard's stamp on a response: which epoch of which shard the answer
/// was assembled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStamp {
    pub shard: usize,
    /// The shard snapshot's publish version.
    pub version: u64,
    /// The shard's partial digest.
    pub digest: u64,
}

/// A scatter-gather answer plus the per-shard `(shard, version, digest)`
/// consistency vector it was assembled from.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedResponse {
    pub vector: Vec<ShardStamp>,
    pub answer: Answer,
}

impl ShardedResponse {
    /// The whole-graph digest this vector claims:
    /// `DIGEST_SEED + Σ partial digests`. For a consistent cut this equals
    /// `GraphStore::digest()` of the underlying graph.
    pub fn combined_digest(&self) -> u64 {
        self.vector
            .iter()
            .fold(DIGEST_SEED, |acc, s| acc.wrapping_add(s.digest))
    }
}

/// Combine pinned shard snapshots into the whole-graph digest they imply.
pub fn combined_digest(pins: &[Arc<ShardSnapshot>]) -> u64 {
    pins.iter()
        .fold(DIGEST_SEED, |acc, p| acc.wrapping_add(p.partial_digest()))
}

/// Aggregate counters for a [`ShardedServe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedStats {
    /// Per-shard publishes (including the initial ones).
    pub publishes: u64,
    /// Scatter-gather queries executed.
    pub queries: u64,
}

/// The scatter-gather serving layer: N independently-published shard
/// cells, each an atomic `Arc` swap exactly like [`crate::KgServe`].
/// Readers pin all N cells (`pin_all`), fan a [`Query`] out and merge.
pub struct ShardedServe {
    cells: Vec<RwLock<Arc<ShardSnapshot>>>,
    /// Compiled Cypher plans, shared by every shard and every epoch: one
    /// compile serves the whole fleet for the lifetime of the process.
    plans: PlanCache,
    publishes: AtomicU64,
    queries: AtomicU64,
}

impl ShardedServe {
    /// Start serving an initial set of shard snapshots (one per shard, in
    /// shard order), each published with its own version.
    pub fn new(initial: Vec<ShardSnapshot>) -> Self {
        assert!(!initial.is_empty(), "at least one shard");
        let serve = ShardedServe {
            cells: initial
                .iter()
                .map(|_| {
                    RwLock::new(Arc::new(ShardSnapshot {
                        shard: 0,
                        shards: 1,
                        version: 0,
                        partial_digest: 0,
                        graph: GraphStore::new(),
                        search: SearchIndex::default(),
                        adjacency: HashMap::new(),
                        build_us: 0,
                    }))
                })
                .collect(),
            plans: PlanCache::new(crate::DEFAULT_PLAN_CACHE_CAPACITY),
            publishes: AtomicU64::new(0),
            queries: AtomicU64::new(0),
        };
        for snapshot in initial {
            serve.publish_shard(snapshot);
        }
        serve
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.cells.len()
    }

    /// Atomically swap one shard's snapshot in; other shards' readers and
    /// cells are untouched. Returns the assigned (globally monotonic)
    /// version.
    pub fn publish_shard(&self, mut snapshot: ShardSnapshot) -> u64 {
        let version = self.publishes.fetch_add(1, Ordering::SeqCst) + 1;
        snapshot.set_version(version);
        let shard = snapshot.shard();
        *self.cells[shard].write() = Arc::new(snapshot);
        version
    }

    /// Pin every shard's current snapshot. The vector is the read epoch: a
    /// reader holds it for one query or a whole session, and concurrent
    /// publishes never tear an individual cell (each stamp in the response
    /// names exactly the epoch combination answered from).
    pub fn pin_all(&self) -> Vec<Arc<ShardSnapshot>> {
        self.cells.iter().map(|c| Arc::clone(&c.read())).collect()
    }

    /// Pin and execute ([`Self::pin_all`] + [`Self::execute_on`]).
    pub fn execute(&self, query: &Query) -> ShardedResponse {
        let pins = self.pin_all();
        self.execute_on(&pins, query)
    }

    /// Scatter `query` over the pinned shard set and gather the exact
    /// merged answer.
    pub fn execute_on(&self, pins: &[Arc<ShardSnapshot>], query: &Query) -> ShardedResponse {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let answer = match query {
            Query::Search { q, k } => Answer::Nodes(sharded_search(pins, q, *k)),
            Query::Cypher { q } => sharded_cypher(&self.plans, pins, q),
            Query::Expand { name, hops, cap } => {
                Answer::Nodes(sharded_expand(pins, name, *hops, *cap))
            }
        };
        ShardedResponse {
            vector: pins
                .iter()
                .map(|p| ShardStamp {
                    shard: p.shard(),
                    version: p.version(),
                    digest: p.partial_digest(),
                })
                .collect(),
            answer,
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ShardedStats {
        ShardedStats {
            publishes: self.publishes.load(Ordering::SeqCst),
            queries: self.queries.load(Ordering::Relaxed),
        }
    }

    /// The shared compiled-plan cache (counters prove plans survive both
    /// shard republication and epoch turnover).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }
}

/// Resolve an entity name exactly as `KgSnapshot::entity_by_name` does,
/// but touching only the owning shard per entity kind (canon-key routing
/// makes the owner computable from the query alone).
fn sharded_entity_by_name(pins: &[Arc<ShardSnapshot>], name: &str) -> Option<NodeId> {
    let lowered = name.to_lowercase();
    kg_ontology::EntityKind::ALL.iter().find_map(|kind| {
        let owner = canon_shard(kind.label(), &lowered, pins.len());
        pins[owner].graph().node_by_name(kind.label(), &lowered)
    })
}

/// Scatter-gather keyword search: direct entity-name hits (owner shard
/// only) first, then the global-stats BM25 merge — the same composition,
/// hit for hit and score for score, as `KgSnapshot::keyword_search`.
fn sharded_search(pins: &[Arc<ShardSnapshot>], query: &str, k: usize) -> Vec<NodeId> {
    let mut out = Vec::new();
    let lowered = query.to_lowercase();
    for kind in kg_ontology::EntityKind::ALL {
        let owner = canon_shard(kind.label(), &lowered, pins.len());
        if let Some(id) = pins[owner].graph().node_by_name(kind.label(), &lowered) {
            if !out.contains(&id) {
                out.push(id);
            }
        }
    }
    // DFS-query-then-fetch: merge per-partition stats into the global
    // stats, score each partition with them injected, then k-merge.
    let terms = SearchIndex::<NodeId>::terms(query);
    let mut stats = CorpusStats::default();
    for pin in pins {
        stats.merge(&pin.search_partition().corpus_stats_for(&terms));
    }
    let mut merged: Vec<Hit<ShardDoc>> = pins
        .iter()
        .flat_map(|pin| {
            pin.search_partition()
                .search_terms_with_stats(&terms, k, &stats)
        })
        .collect();
    merged.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.doc.0.cmp(&b.doc.0))
    });
    merged.truncate(k);
    for hit in merged {
        if !out.contains(&hit.doc.1) {
            out.push(hit.doc.1);
        }
    }
    out.truncate(k.max(1));
    out
}

/// Scatter-gather Cypher: one compiled plan (cached across epochs),
/// anchor-scattered to the owning shards, merged rows re-projected by the
/// plan's gather half.
fn sharded_cypher(plans: &PlanCache, pins: &[Arc<ShardSnapshot>], query_text: &str) -> Answer {
    let plan = match plans.plan(query_text) {
        Ok(p) => p,
        Err(e) => return Answer::Error(e.to_string()),
    };
    let params = Params::new();
    let mut rows: Vec<ScatterRow> = Vec::new();
    for pin in pins {
        match plan.scatter_on(pin.as_ref(), &params, &|id| pin.owns(id)) {
            Ok(shard_rows) => rows.extend(shard_rows),
            Err(e) => return Answer::Error(e.to_string()),
        }
    }
    match plan.gather(rows) {
        Ok(result) => Answer::Rows {
            columns: result.columns,
            rows: result.rows,
        },
        Err(e) => Answer::Error(e.to_string()),
    }
}

/// Gather-driven BFS expansion over the per-shard adjacency partitions:
/// the exact `KgSnapshot::expand` loop, with each node's neighbour list
/// fetched from the shard that owns it.
fn sharded_expand(pins: &[Arc<ShardSnapshot>], name: &str, hops: usize, cap: usize) -> Vec<NodeId> {
    let Some(start) = sharded_entity_by_name(pins, name) else {
        return Vec::new();
    };
    let neighbors = |id: NodeId| -> &[NodeId] {
        pins.iter()
            .find(|p| p.owns(id))
            .map_or(&[][..], |p| p.neighbors(id))
    };
    let mut out = Vec::new();
    if !pins.iter().any(|p| p.owns(start)) || cap == 0 {
        return out;
    }
    let mut frontier = vec![start];
    let mut seen: HashSet<NodeId> = [start].into_iter().collect();
    out.push(start);
    for _ in 0..hops {
        let mut next = Vec::new();
        for &node in &frontier {
            for &neighbor in neighbors(node) {
                if out.len() >= cap {
                    return out;
                }
                if seen.insert(neighbor) {
                    out.push(neighbor);
                    next.push(neighbor);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::KgSnapshot;
    use kg_graph::Value;

    /// A small KG with cross-shard edges at any shard count: malware →
    /// files/domains/techniques plus free-text search docs.
    fn demo() -> (GraphStore, SearchIndex<NodeId>) {
        let mut graph = GraphStore::new();
        let m1 = graph.merge_node("Malware", "wannacry", [] as [(&str, Value); 0]);
        let m2 = graph.merge_node("Malware", "emotet", [] as [(&str, Value); 0]);
        let f = graph.merge_node("FileName", "tasksche.exe", [] as [(&str, Value); 0]);
        let d = graph.merge_node("Domain", "kill.switch.test", [] as [(&str, Value); 0]);
        let t = graph.merge_node("Technique", "smb exploitation", [] as [(&str, Value); 0]);
        let a = graph.merge_node("ThreatActor", "lazarus group", [] as [(&str, Value); 0]);
        graph.merge_edge(m1, "DROP", f).unwrap();
        graph.merge_edge(m1, "CONNECTS_TO", d).unwrap();
        graph.merge_edge(m1, "ATTRIBUTED_TO", a).unwrap();
        graph.merge_edge(a, "USES", t).unwrap();
        graph.merge_edge(m2, "USES", t).unwrap();
        let mut search = SearchIndex::default();
        search.add(
            m1,
            "wannacry ransomware encrypts files and drops tasksche.exe",
        );
        search.add(m2, "emotet banking trojan spreads via phishing");
        search.add(f, "tasksche.exe dropped by wannacry smb exploit");
        search.add(a, "lazarus group threat actor north korea");
        (graph, search)
    }

    fn queries() -> Vec<Query> {
        vec![
            Query::Search {
                q: "wannacry".into(),
                k: 5,
            },
            Query::Search {
                q: "wannacry smb banking".into(),
                k: 3,
            },
            Query::Cypher {
                q: "MATCH (m:Malware)-[:ATTRIBUTED_TO]->(a)-[:USES]->(t) RETURN t.name".into(),
            },
            Query::Cypher {
                q: "MATCH (x)-[:USES]->(t) RETURN t.name, count(x) AS n ORDER BY count(x) DESC"
                    .into(),
            },
            Query::Cypher {
                q: "not cypher at all".into(),
            },
            Query::Expand {
                name: "WannaCry".into(),
                hops: 2,
                cap: 10,
            },
            Query::Expand {
                name: "nobody".into(),
                hops: 2,
                cap: 10,
            },
        ]
    }

    #[test]
    fn sharded_answers_match_single_snapshot_at_every_shard_count() {
        for shards in [1usize, 2, 3, 5] {
            let (mut graph, search) = demo();
            let oracle = KgSnapshot::build(graph.clone(), search.clone());
            let mut set = ShardSet::new(&mut graph, &search, shards);
            let serve = ShardedServe::new(set.freeze_all(&mut graph, &search));
            for query in queries() {
                let response = serve.execute(&query);
                assert_eq!(
                    response.answer,
                    oracle.answer(&query),
                    "{query:?} at {shards} shards"
                );
                assert_eq!(response.vector.len(), shards);
                assert_eq!(response.combined_digest(), graph.digest());
            }
        }
    }

    #[test]
    fn partial_digests_sum_to_the_whole_graph_digest_across_epochs() {
        let (mut graph, mut search) = demo();
        let mut set = ShardSet::new(&mut graph, &search, 4);
        let serve = ShardedServe::new(set.freeze_all(&mut graph, &search));
        assert_eq!(combined_digest(&serve.pin_all()), graph.digest());

        // Mutate: rename (ownership migration incl. outgoing edges),
        // delete, create, new doc — then republish shard by shard.
        let m2 = graph.node_by_name("Malware", "emotet").unwrap();
        graph
            .set_node_prop(m2, "name", Value::from("heodo"))
            .unwrap();
        let f = graph.node_by_name("FileName", "tasksche.exe").unwrap();
        graph.delete_node(f).unwrap();
        let new = graph.merge_node("Tool", "mimikatz", [] as [(&str, Value); 0]);
        graph.merge_edge(m2, "USES", new).unwrap();
        search.add(new, "mimikatz credential dumping tool");

        for shard in 0..set.shards() {
            serve.publish_shard(set.freeze_shard(shard, &mut graph, &search));
        }
        let pins = serve.pin_all();
        assert_eq!(combined_digest(&pins), graph.digest());

        // And the answers still match a fresh full rebuild.
        let oracle = KgSnapshot::build(graph.clone(), search.clone());
        for query in queries() {
            assert_eq!(
                serve.execute_on(&pins, &query).answer,
                oracle.answer(&query),
                "{query:?}"
            );
        }
    }

    #[test]
    fn per_shard_publishes_are_independent_and_stamped() {
        let (mut graph, search) = demo();
        let mut set = ShardSet::new(&mut graph, &search, 2);
        let serve = ShardedServe::new(set.freeze_all(&mut graph, &search));
        let before = serve.pin_all();

        graph.merge_node("Malware", "qbot", [] as [(&str, Value); 0]);
        let v = serve.publish_shard(set.freeze_shard(0, &mut graph, &search));
        assert!(v > 2);
        let after = serve.pin_all();
        // Shard 0 moved, shard 1 is the very same Arc'd epoch.
        assert_eq!(after[0].version(), v);
        assert!(Arc::ptr_eq(&before[1], &after[1]));
        // The response vector names the mixed epoch combination.
        let response = serve.execute(&Query::Search {
            q: "wannacry".into(),
            k: 3,
        });
        assert_eq!(response.vector[0].version, v);
        assert_eq!(response.vector[1].version, before[1].version());
        assert_eq!(serve.stats().queries, 1);
        assert_eq!(serve.stats().publishes, 3);
    }
}
