//! Fixed-layout binary encoding (`KGBIN001`) for the hot checkpoint payloads:
//! graph arena segments, search doc-table segments, and posting shards.
//!
//! `kg-persist` frames every blob with a length + FNV checksum, so by the
//! time recovery hands a payload to this crate its bytes are already proven
//! intact. What used to remain was a serde_json parse — an allocation per
//! field. The binary layout here is positional instead: one pass over the
//! bytes both **validates** the structure (every length bounds-checked
//! against the remaining buffer, every offset required to equal the running
//! cursor, strings checked as UTF-8 in place) and **decodes** it, with
//! allocations only for the strings and vectors that end up in the live
//! structures. [`validate_payload`] runs the same walk without materialising
//! anything, for callers that only need a verdict.
//!
//! ## Layout
//!
//! Every payload starts with an 8-byte magic + 1-byte kind + u32 LE count:
//!
//! ```text
//! "KGBIN001" | kind u8 | count u32
//! ```
//!
//! - kind 1 (node segment) / kind 2 (edge segment):
//!   `count × offset u32` (offset table, `0xFFFF_FFFF` = tombstone slot),
//!   then `body_len u32`, then the packed records. Offsets are relative to
//!   the body start and **must** equal the decoder's running cursor — the
//!   encoding is canonical and the table doubles as a structural proof.
//!   A node record is `id u64 | label str | nprops u32 | (key str, value)…`
//!   with property keys strictly ascending; an edge record is
//!   `id u64 | from u64 | to u64 | rel_type str | nprops u32 | …`.
//! - kind 3 (doc segment): `count × (doc_key u64, token_len u32)` — fixed
//!   12-byte records, no per-record framing needed.
//! - kind 4 (posting shard): `count` term records, each
//!   `term str | npostings u32 | (doc u32, tf u32)…`, terms strictly
//!   ascending and postings strictly ascending by doc.
//!
//! `str` is `len u32 | UTF-8 bytes`. Values are tagged:
//! `0` Null, `1` Bool + u8, `2` Int + i64, `3` Float + f64 bits,
//! `4` Text + str, `5` List + count u32 + values, `6` Node + u64,
//! `7` Edge + u64. List nesting is capped at [`MAX_DEPTH`] so adversarial
//! payloads cannot overflow the decoder's stack. Trailing bytes after the
//! last record are an error.
//!
//! ## JSON stays as the oracle
//!
//! The serde_json encodings survive behind the `*_auto` decoders: a payload
//! that does not open with the magic is parsed as JSON. That keeps stores
//! written by older builds (and mixed manifests, where a carried-forward
//! blob predates the binary cut-over) recoverable, and gives the proptest
//! battery a differential oracle: `binary decode ≡ JSON decode` for every
//! generated segment.

use std::collections::BTreeMap;

use kg_graph::store::SEG_CAP;
use kg_graph::{Edge, EdgeId, Node, NodeId, Value};
use kg_search::{ShardTerms, DOC_SEG};

/// Leading magic of every binary payload; anything else is treated as JSON.
pub const BIN_MAGIC: &[u8; 8] = b"KGBIN001";

/// Offset-table sentinel marking an empty (tombstoned) arena slot.
pub const TOMBSTONE: u32 = 0xFFFF_FFFF;

/// Maximum `Value::List` nesting the decoder will follow.
pub const MAX_DEPTH: usize = 64;

/// Payload kind byte, directly after the magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PayloadKind {
    /// Graph node arena segment (`n{i}` blobs).
    NodeSegment = 1,
    /// Graph edge arena segment (`e{i}` blobs).
    EdgeSegment = 2,
    /// Search doc-table segment (`d{i}` blobs).
    DocSegment = 3,
    /// Search posting shard (`s{s}` blobs).
    PostingShard = 4,
}

impl PayloadKind {
    fn from_byte(b: u8) -> Option<PayloadKind> {
        match b {
            1 => Some(PayloadKind::NodeSegment),
            2 => Some(PayloadKind::EdgeSegment),
            3 => Some(PayloadKind::DocSegment),
            4 => Some(PayloadKind::PostingShard),
            _ => None,
        }
    }
}

/// Wire format of one blob payload, sniffed from its first bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadFormat {
    /// Opens with [`BIN_MAGIC`] — fixed-layout binary.
    Binary,
    /// Anything else — legacy serde_json.
    Json,
}

/// Classify a payload without decoding it.
pub fn payload_format(bytes: &[u8]) -> PayloadFormat {
    if bytes.len() >= BIN_MAGIC.len() && &bytes[..BIN_MAGIC.len()] == BIN_MAGIC {
        PayloadFormat::Binary
    } else {
        PayloadFormat::Json
    }
}

/// Structural decode failure: where the walk stopped and why. Decoders
/// return this for any malformed input — they never panic or read past the
/// buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset the decoder had reached when the violation was found.
    pub offset: usize,
    /// Human-readable violation.
    pub reason: String,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(3);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Text(s) => {
            out.push(4);
            put_str(s, out);
        }
        Value::List(items) => {
            out.push(5);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                put_value(item, out);
            }
        }
        Value::Node(NodeId(id)) => {
            out.push(6);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Value::Edge(EdgeId(id)) => {
            out.push(7);
            out.extend_from_slice(&id.to_le_bytes());
        }
    }
}

fn put_props(props: &BTreeMap<String, Value>, out: &mut Vec<u8>) {
    out.extend_from_slice(&(props.len() as u32).to_le_bytes());
    for (key, value) in props {
        put_str(key, out);
        put_value(value, out);
    }
}

fn put_node(node: &Node, out: &mut Vec<u8>) {
    out.extend_from_slice(&node.id.0.to_le_bytes());
    put_str(&node.label, out);
    put_props(&node.props, out);
}

fn put_edge(edge: &Edge, out: &mut Vec<u8>) {
    out.extend_from_slice(&edge.id.0.to_le_bytes());
    out.extend_from_slice(&edge.from.0.to_le_bytes());
    out.extend_from_slice(&edge.to.0.to_le_bytes());
    put_str(&edge.rel_type, out);
    put_props(&edge.props, out);
}

/// Shared encoder for the two offset-table kinds: header, slot offset table
/// (tombstones as [`TOMBSTONE`]), body length, packed records in slot order.
fn encode_slots_into<T>(
    kind: PayloadKind,
    slots: &[Option<T>],
    put: impl Fn(&T, &mut Vec<u8>),
    out: &mut Vec<u8>,
) {
    out.extend_from_slice(BIN_MAGIC);
    out.push(kind as u8);
    out.extend_from_slice(&(slots.len() as u32).to_le_bytes());
    let table_at = out.len();
    // Reserve the offset table plus the body_len word; both are patched once
    // the records are packed.
    out.resize(table_at + slots.len() * 4 + 4, 0);
    let body_at = out.len();
    for (i, slot) in slots.iter().enumerate() {
        let cell = table_at + i * 4;
        match slot {
            None => out[cell..cell + 4].copy_from_slice(&TOMBSTONE.to_le_bytes()),
            Some(record) => {
                let off = (out.len() - body_at) as u32;
                out[cell..cell + 4].copy_from_slice(&off.to_le_bytes());
                put(record, out);
            }
        }
    }
    let body_len = (out.len() - body_at) as u32;
    out[body_at - 4..body_at].copy_from_slice(&body_len.to_le_bytes());
}

/// Encode one node arena segment, appending to `out`.
pub fn encode_node_segment_into(slots: &[Option<Node>], out: &mut Vec<u8>) {
    encode_slots_into(PayloadKind::NodeSegment, slots, put_node, out);
}

/// Encode one node arena segment into a fresh buffer.
pub fn encode_node_segment(slots: &[Option<Node>]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_node_segment_into(slots, &mut out);
    out
}

/// Encode one edge arena segment, appending to `out`.
pub fn encode_edge_segment_into(slots: &[Option<Edge>], out: &mut Vec<u8>) {
    encode_slots_into(PayloadKind::EdgeSegment, slots, put_edge, out);
}

/// Encode one edge arena segment into a fresh buffer.
pub fn encode_edge_segment(slots: &[Option<Edge>]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_edge_segment_into(slots, &mut out);
    out
}

/// Encode one doc-table segment (`(doc key, token count)` rows), appending.
pub fn encode_doc_segment_into(slots: &[(NodeId, u32)], out: &mut Vec<u8>) {
    out.extend_from_slice(BIN_MAGIC);
    out.push(PayloadKind::DocSegment as u8);
    out.extend_from_slice(&(slots.len() as u32).to_le_bytes());
    for (key, tokens) in slots {
        out.extend_from_slice(&key.0.to_le_bytes());
        out.extend_from_slice(&tokens.to_le_bytes());
    }
}

/// Encode one doc-table segment into a fresh buffer.
pub fn encode_doc_segment(slots: &[(NodeId, u32)]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_doc_segment_into(slots, &mut out);
    out
}

/// Encode one posting shard (sorted `(term, postings)` rows), appending.
pub fn encode_posting_shard_into(terms: &ShardTerms, out: &mut Vec<u8>) {
    out.extend_from_slice(BIN_MAGIC);
    out.push(PayloadKind::PostingShard as u8);
    out.extend_from_slice(&(terms.len() as u32).to_le_bytes());
    for (term, postings) in terms {
        put_str(term, out);
        out.extend_from_slice(&(postings.len() as u32).to_le_bytes());
        for (doc, tf) in postings {
            out.extend_from_slice(&doc.to_le_bytes());
            out.extend_from_slice(&tf.to_le_bytes());
        }
    }
}

/// Encode one posting shard into a fresh buffer.
pub fn encode_posting_shard(terms: &ShardTerms) -> Vec<u8> {
    let mut out = Vec::new();
    encode_posting_shard_into(terms, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------------

/// Bounds-checked forward reader over a payload. Every accessor fails with
/// a positioned [`CodecError`] instead of reading past the end.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cur { buf, pos: 0 }
    }

    fn err<T>(&self, reason: impl Into<String>) -> Result<T> {
        Err(CodecError {
            offset: self.pos,
            reason: reason.into(),
        })
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return self.err(format!(
                "truncated: need {n} byte(s) for {what}, {} left",
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Length-prefixed UTF-8 string, validated in place (no allocation).
    fn str_(&mut self, what: &str) -> Result<&'a str> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s),
            Err(_) => {
                self.pos -= len;
                self.err(format!("{what}: invalid UTF-8"))
            }
        }
    }

    /// Read a count that prefixes records of at least `min_record` bytes
    /// each, rejecting counts the remaining buffer cannot possibly hold —
    /// the guard that keeps adversarial payloads from provoking huge
    /// allocations.
    fn count(&mut self, min_record: usize, what: &str) -> Result<usize> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(min_record) > self.remaining() {
            return self.err(format!(
                "{what}: count {n} cannot fit in {} remaining byte(s)",
                self.remaining()
            ));
        }
        Ok(n)
    }
}

/// Check magic + kind byte; returns the cursor positioned at the count.
fn header<'a>(bytes: &'a [u8], want: PayloadKind) -> Result<Cur<'a>> {
    let mut cur = Cur::new(bytes);
    let magic = cur.take(BIN_MAGIC.len(), "magic")?;
    if magic != BIN_MAGIC {
        cur.pos = 0;
        return cur.err("bad magic (not a KGBIN001 payload)");
    }
    let kind = cur.u8("kind")?;
    match PayloadKind::from_byte(kind) {
        Some(k) if k == want => Ok(cur),
        Some(k) => cur.err(format!("payload kind {k:?}, want {want:?}")),
        None => cur.err(format!("unknown payload kind {kind}")),
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Walk one value. `build` materialises; `None` return only on build=false.
fn walk_value(cur: &mut Cur<'_>, depth: usize, build: bool) -> Result<Option<Value>> {
    if depth > MAX_DEPTH {
        return cur.err(format!("list nesting deeper than {MAX_DEPTH}"));
    }
    let tag = cur.u8("value tag")?;
    let v = match tag {
        0 => Value::Null,
        1 => match cur.u8("bool")? {
            0 => Value::Bool(false),
            1 => Value::Bool(true),
            b => return cur.err(format!("bool byte {b}, want 0 or 1")),
        },
        2 => Value::Int(cur.u64("int")? as i64),
        3 => Value::Float(f64::from_bits(cur.u64("float")?)),
        4 => {
            let s = cur.str_("text value")?;
            if !build {
                return Ok(None);
            }
            Value::Text(s.to_owned())
        }
        5 => {
            let n = cur.count(1, "list")?;
            let mut items = if build {
                Vec::with_capacity(n)
            } else {
                Vec::new()
            };
            for _ in 0..n {
                if let Some(item) = walk_value(cur, depth + 1, build)? {
                    items.push(item);
                }
            }
            if !build {
                return Ok(None);
            }
            Value::List(items)
        }
        6 => Value::Node(NodeId(cur.u64("node ref")?)),
        7 => Value::Edge(EdgeId(cur.u64("edge ref")?)),
        t => return cur.err(format!("unknown value tag {t}")),
    };
    Ok(if build { Some(v) } else { None })
}

/// Property map: count, then strictly-ascending `(key, value)` pairs — the
/// ordering a `BTreeMap` encoder always produces, enforced so the encoding
/// is canonical (one byte string per logical map).
fn walk_props<'a>(cur: &mut Cur<'a>, build: bool) -> Result<BTreeMap<String, Value>> {
    // Smallest possible property: 4-byte key length + 1-byte value tag.
    let n = cur.count(5, "property count")?;
    let mut props = BTreeMap::new();
    let mut prev: Option<&'a str> = None;
    for _ in 0..n {
        let key_at = cur.pos;
        let key = cur.str_("property key")?;
        if let Some(p) = prev {
            if key <= p {
                cur.pos = key_at;
                return cur.err(format!("property keys not strictly ascending at {key:?}"));
            }
        }
        prev = Some(key);
        let value = walk_value(cur, 0, build)?;
        if build {
            props.insert(key.to_owned(), value.expect("build mode returns a value"));
        }
    }
    Ok(props)
}

fn walk_node(cur: &mut Cur<'_>, build: bool) -> Result<Option<Node>> {
    let id = NodeId(cur.u64("node id")?);
    let label = cur.str_("node label")?;
    let label = if build {
        label.to_owned()
    } else {
        String::new()
    };
    let props = walk_props(cur, build)?;
    Ok(if build {
        Some(Node { id, label, props })
    } else {
        None
    })
}

fn walk_edge(cur: &mut Cur<'_>, build: bool) -> Result<Option<Edge>> {
    let id = EdgeId(cur.u64("edge id")?);
    let from = NodeId(cur.u64("edge from")?);
    let to = NodeId(cur.u64("edge to")?);
    let rel_type = cur.str_("edge rel_type")?;
    let rel_type = if build {
        rel_type.to_owned()
    } else {
        String::new()
    };
    let props = walk_props(cur, build)?;
    Ok(if build {
        Some(Edge {
            id,
            from,
            to,
            rel_type,
            props,
        })
    } else {
        None
    })
}

/// Shared decoder for the offset-table kinds. One pass: the offset table is
/// read up front, then each populated slot's offset must equal the running
/// cursor — so a single forward walk proves the table, the record bounds,
/// and the exact body length all agree.
fn decode_slots<T>(
    bytes: &[u8],
    kind: PayloadKind,
    mut walk: impl FnMut(&mut Cur<'_>, bool) -> Result<Option<T>>,
    build: bool,
) -> Result<Vec<Option<T>>> {
    let mut cur = header(bytes, kind)?;
    let n = cur.u32("slot count")? as usize;
    if n > SEG_CAP {
        return cur.err(format!("slot count {n} exceeds segment capacity {SEG_CAP}"));
    }
    let mut offsets = Vec::with_capacity(n);
    for _ in 0..n {
        offsets.push(cur.u32("offset table")?);
    }
    let body_len = cur.u32("body length")? as usize;
    let body_start = cur.pos;
    if bytes.len() - body_start != body_len {
        return cur.err(format!(
            "body length {body_len} disagrees with {} byte(s) present",
            bytes.len() - body_start
        ));
    }
    let mut out = if build {
        Vec::with_capacity(n)
    } else {
        Vec::new()
    };
    for (i, off) in offsets.iter().enumerate() {
        if *off == TOMBSTONE {
            if build {
                out.push(None);
            }
            continue;
        }
        let at = (cur.pos - body_start) as u32;
        if *off != at {
            return cur.err(format!("offset[{i}] = {off}, but record starts at {at}"));
        }
        let record = walk(&mut cur, build)?;
        if build {
            out.push(record);
        }
    }
    if cur.remaining() != 0 {
        return cur.err(format!(
            "{} trailing byte(s) after last record",
            cur.remaining()
        ));
    }
    Ok(out)
}

/// Decode a binary node segment ([`PayloadKind::NodeSegment`]).
pub fn decode_node_segment(bytes: &[u8]) -> Result<Vec<Option<Node>>> {
    decode_slots(bytes, PayloadKind::NodeSegment, walk_node, true)
}

/// Decode a binary edge segment ([`PayloadKind::EdgeSegment`]).
pub fn decode_edge_segment(bytes: &[u8]) -> Result<Vec<Option<Edge>>> {
    decode_slots(bytes, PayloadKind::EdgeSegment, walk_edge, true)
}

fn decode_docs(bytes: &[u8], build: bool) -> Result<Vec<(NodeId, u32)>> {
    let mut cur = header(bytes, PayloadKind::DocSegment)?;
    let n = cur.count(12, "doc count")?;
    if n > DOC_SEG {
        return cur.err(format!("doc count {n} exceeds segment capacity {DOC_SEG}"));
    }
    let mut out = if build {
        Vec::with_capacity(n)
    } else {
        Vec::new()
    };
    for _ in 0..n {
        let key = NodeId(cur.u64("doc key")?);
        let tokens = cur.u32("doc token count")?;
        if build {
            out.push((key, tokens));
        }
    }
    if cur.remaining() != 0 {
        return cur.err(format!(
            "{} trailing byte(s) after last doc",
            cur.remaining()
        ));
    }
    Ok(out)
}

/// Decode a binary doc-table segment ([`PayloadKind::DocSegment`]).
pub fn decode_doc_segment(bytes: &[u8]) -> Result<Vec<(NodeId, u32)>> {
    decode_docs(bytes, true)
}

fn decode_shard(bytes: &[u8], build: bool) -> Result<ShardTerms> {
    let mut cur = header(bytes, PayloadKind::PostingShard)?;
    // Smallest possible term record: 4-byte term length + 4-byte posting
    // count (empty term, zero postings).
    let n = cur.count(8, "term count")?;
    let mut out = if build {
        Vec::with_capacity(n)
    } else {
        Vec::new()
    };
    let mut prev: Option<&str> = None;
    for _ in 0..n {
        let term_at = cur.pos;
        let term = cur.str_("term")?;
        if let Some(p) = prev {
            if term <= p {
                cur.pos = term_at;
                return cur.err(format!("terms not strictly ascending at {term:?}"));
            }
        }
        prev = Some(term);
        let npost = cur.count(8, "posting count")?;
        let mut postings = if build {
            Vec::with_capacity(npost)
        } else {
            Vec::new()
        };
        let mut prev_doc: Option<u32> = None;
        for _ in 0..npost {
            let doc = cur.u32("posting doc")?;
            let tf = cur.u32("posting tf")?;
            if let Some(p) = prev_doc {
                if doc <= p {
                    return cur.err(format!("postings for {term:?} not ascending at doc {doc}"));
                }
            }
            prev_doc = Some(doc);
            if build {
                postings.push((doc, tf));
            }
        }
        if build {
            out.push((term.to_owned(), postings));
        }
    }
    if cur.remaining() != 0 {
        return cur.err(format!(
            "{} trailing byte(s) after last term",
            cur.remaining()
        ));
    }
    Ok(out)
}

/// Decode a binary posting shard ([`PayloadKind::PostingShard`]).
pub fn decode_posting_shard(bytes: &[u8]) -> Result<ShardTerms> {
    decode_shard(bytes, true)
}

/// One-pass structural validation without materialising anything: magic,
/// kind, every offset/length bounds-checked, strings UTF-8-checked in
/// place, ordering invariants enforced. Returns the payload kind.
pub fn validate_payload(bytes: &[u8]) -> Result<PayloadKind> {
    let mut probe = Cur::new(bytes);
    let magic = probe.take(BIN_MAGIC.len(), "magic")?;
    if magic != BIN_MAGIC {
        probe.pos = 0;
        return probe.err("bad magic (not a KGBIN001 payload)");
    }
    let kind = probe.u8("kind")?;
    match PayloadKind::from_byte(kind) {
        Some(PayloadKind::NodeSegment) => {
            decode_slots(bytes, PayloadKind::NodeSegment, walk_node, false)?;
            Ok(PayloadKind::NodeSegment)
        }
        Some(PayloadKind::EdgeSegment) => {
            decode_slots(bytes, PayloadKind::EdgeSegment, walk_edge, false)?;
            Ok(PayloadKind::EdgeSegment)
        }
        Some(PayloadKind::DocSegment) => {
            decode_docs(bytes, false)?;
            Ok(PayloadKind::DocSegment)
        }
        Some(PayloadKind::PostingShard) => {
            decode_shard(bytes, false)?;
            Ok(PayloadKind::PostingShard)
        }
        None => probe.err(format!("unknown payload kind {kind}")),
    }
}

// ---------------------------------------------------------------------------
// Auto-sniffing decoders (binary with JSON fallback)
// ---------------------------------------------------------------------------

/// Decode a node segment from either wire format ([`payload_format`]).
pub fn decode_node_segment_auto(bytes: &[u8]) -> std::result::Result<Vec<Option<Node>>, String> {
    match payload_format(bytes) {
        PayloadFormat::Binary => decode_node_segment(bytes).map_err(|e| e.to_string()),
        PayloadFormat::Json => serde_json::from_slice(bytes).map_err(|e| e.to_string()),
    }
}

/// Decode an edge segment from either wire format.
pub fn decode_edge_segment_auto(bytes: &[u8]) -> std::result::Result<Vec<Option<Edge>>, String> {
    match payload_format(bytes) {
        PayloadFormat::Binary => decode_edge_segment(bytes).map_err(|e| e.to_string()),
        PayloadFormat::Json => serde_json::from_slice(bytes).map_err(|e| e.to_string()),
    }
}

/// Decode a doc-table segment from either wire format.
pub fn decode_doc_segment_auto(bytes: &[u8]) -> std::result::Result<Vec<(NodeId, u32)>, String> {
    match payload_format(bytes) {
        PayloadFormat::Binary => decode_doc_segment(bytes).map_err(|e| e.to_string()),
        PayloadFormat::Json => serde_json::from_slice(bytes).map_err(|e| e.to_string()),
    }
}

/// Decode a posting shard from either wire format.
pub fn decode_posting_shard_auto(bytes: &[u8]) -> std::result::Result<ShardTerms, String> {
    match payload_format(bytes) {
        PayloadFormat::Binary => decode_posting_shard(bytes).map_err(|e| e.to_string()),
        PayloadFormat::Json => serde_json::from_slice(bytes).map_err(|e| e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: u64, label: &str, props: &[(&str, Value)]) -> Node {
        Node {
            id: NodeId(id),
            label: label.to_owned(),
            props: props
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    fn edge(id: u64, from: u64, to: u64, rel: &str) -> Edge {
        Edge {
            id: EdgeId(id),
            from: NodeId(from),
            to: NodeId(to),
            rel_type: rel.to_owned(),
            props: BTreeMap::new(),
        }
    }

    fn sample_nodes() -> Vec<Option<Node>> {
        vec![
            Some(node(
                0,
                "Malware",
                &[
                    ("name", Value::from("wannacry")),
                    ("score", Value::Float(0.75)),
                    ("seen", Value::Int(-3)),
                    ("tags", Value::List(vec![Value::from("worm"), Value::Null])),
                ],
            )),
            None,
            Some(node(2, "ThreatActor", &[("active", Value::Bool(true))])),
            None,
            Some(node(4, "Tool", &[("ref", Value::Node(NodeId(2)))])),
        ]
    }

    #[test]
    fn node_segment_round_trips() {
        let slots = sample_nodes();
        let bytes = encode_node_segment(&slots);
        assert_eq!(payload_format(&bytes), PayloadFormat::Binary);
        assert_eq!(validate_payload(&bytes).unwrap(), PayloadKind::NodeSegment);
        assert_eq!(decode_node_segment(&bytes).unwrap(), slots);
        assert_eq!(decode_node_segment_auto(&bytes).unwrap(), slots);
    }

    #[test]
    fn edge_segment_round_trips() {
        let mut e = edge(7, 0, 2, "uses");
        e.props.insert("weight".into(), Value::Float(1.5));
        let slots = vec![None, Some(e), Some(edge(9, 2, 4, "drops"))];
        let bytes = encode_edge_segment(&slots);
        assert_eq!(validate_payload(&bytes).unwrap(), PayloadKind::EdgeSegment);
        assert_eq!(decode_edge_segment(&bytes).unwrap(), slots);
    }

    #[test]
    fn doc_segment_round_trips() {
        let slots: Vec<(NodeId, u32)> = (0..17).map(|i| (NodeId(i * 3), i as u32 + 1)).collect();
        let bytes = encode_doc_segment(&slots);
        assert_eq!(validate_payload(&bytes).unwrap(), PayloadKind::DocSegment);
        assert_eq!(decode_doc_segment(&bytes).unwrap(), slots);
    }

    #[test]
    fn posting_shard_round_trips() {
        let terms: ShardTerms = vec![
            ("apt".into(), vec![(0, 2), (5, 1)]),
            ("wannacry".into(), vec![(1, 1), (2, 4), (9, 1)]),
            ("worm".into(), vec![(3, 1)]),
        ];
        let bytes = encode_posting_shard(&terms);
        assert_eq!(validate_payload(&bytes).unwrap(), PayloadKind::PostingShard);
        assert_eq!(decode_posting_shard(&bytes).unwrap(), terms);
    }

    #[test]
    fn empty_payloads_round_trip() {
        assert_eq!(
            decode_node_segment(&encode_node_segment(&[])).unwrap(),
            vec![]
        );
        assert_eq!(
            decode_doc_segment(&encode_doc_segment(&[])).unwrap(),
            vec![]
        );
        assert_eq!(
            decode_posting_shard(&encode_posting_shard(&ShardTerms::new())).unwrap(),
            ShardTerms::new()
        );
    }

    #[test]
    fn json_fallback_decodes_legacy_payloads() {
        let slots = sample_nodes();
        let json = serde_json::to_vec(&slots).unwrap();
        assert_eq!(payload_format(&json), PayloadFormat::Json);
        assert_eq!(decode_node_segment_auto(&json).unwrap(), slots);
    }

    #[test]
    fn every_truncation_errs_cleanly() {
        let slots = sample_nodes();
        let bytes = encode_node_segment(&slots);
        for cut in 0..bytes.len() {
            assert!(
                decode_node_segment(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
            assert!(validate_payload(&bytes[..cut]).is_err());
        }
        let shard = encode_posting_shard(&vec![("term".into(), vec![(1, 1)])]);
        for cut in 0..shard.len() {
            assert!(decode_posting_shard(&shard[..cut]).is_err());
        }
    }

    #[test]
    fn bit_flips_never_panic_or_over_read() {
        let slots = sample_nodes();
        let base = encode_node_segment(&slots);
        for byte in 0..base.len() {
            for bit in [0, 3, 7] {
                let mut bytes = base.clone();
                bytes[byte] ^= 1 << bit;
                // A flip may still decode (the frame checksum upstream is the
                // integrity layer); the codec's contract is no panic and no
                // over-read, which the bounds-checked cursor guarantees.
                let _ = decode_node_segment(&bytes);
                let _ = validate_payload(&bytes);
            }
        }
    }

    #[test]
    fn arbitrary_bytes_err_cleanly() {
        // splitmix64-driven garbage, including buffers opening with the magic.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for case in 0..500 {
            let len = (next() % 200) as usize;
            let mut bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            if case % 3 == 0 && bytes.len() >= 9 {
                bytes[..8].copy_from_slice(BIN_MAGIC);
                bytes[8] = (next() % 6) as u8;
            }
            let _ = decode_node_segment(&bytes);
            let _ = decode_edge_segment(&bytes);
            let _ = decode_doc_segment(&bytes);
            let _ = decode_posting_shard(&bytes);
            let _ = validate_payload(&bytes);
        }
    }

    #[test]
    fn deep_list_nesting_is_capped() {
        let mut v = Value::Int(1);
        for _ in 0..(MAX_DEPTH + 8) {
            v = Value::List(vec![v]);
        }
        let slots = vec![Some(node(0, "N", &[("deep", v)]))];
        let bytes = encode_node_segment(&slots);
        let err = decode_node_segment(&bytes).unwrap_err();
        assert!(err.reason.contains("nesting"), "{err}");
    }

    #[test]
    fn wrong_kind_and_trailing_bytes_are_rejected() {
        let doc = encode_doc_segment(&[(NodeId(1), 2)]);
        assert!(decode_node_segment(&doc).is_err());
        let mut padded = doc.clone();
        padded.push(0);
        assert!(decode_doc_segment(&padded).is_err());
        assert!(validate_payload(&padded).is_err());
    }

    #[test]
    fn non_canonical_offset_tables_are_rejected() {
        let slots = sample_nodes();
        let mut bytes = encode_node_segment(&slots);
        // Corrupt the second populated slot's offset (table starts at 13).
        let cell = 13 + 2 * 4;
        let off = u32::from_le_bytes(bytes[cell..cell + 4].try_into().unwrap());
        bytes[cell..cell + 4].copy_from_slice(&(off + 1).to_le_bytes());
        let err = decode_node_segment(&bytes).unwrap_err();
        assert!(err.reason.contains("offset"), "{err}");
    }

    #[test]
    fn unordered_props_and_terms_are_rejected() {
        // Hand-build a shard with descending terms.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(BIN_MAGIC);
        bytes.push(PayloadKind::PostingShard as u8);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        for term in ["zz", "aa"] {
            bytes.extend_from_slice(&(term.len() as u32).to_le_bytes());
            bytes.extend_from_slice(term.as_bytes());
            bytes.extend_from_slice(&0u32.to_le_bytes());
        }
        let err = decode_posting_shard(&bytes).unwrap_err();
        assert!(err.reason.contains("ascending"), "{err}");
    }

    #[test]
    fn huge_counts_are_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(BIN_MAGIC);
        bytes.push(PayloadKind::PostingShard as u8);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_posting_shard(&bytes).is_err());
        let mut doc = Vec::new();
        doc.extend_from_slice(BIN_MAGIC);
        doc.push(PayloadKind::DocSegment as u8);
        doc.extend_from_slice(&0xffff_0000u32.to_le_bytes());
        assert!(decode_doc_segment(&doc).is_err());
    }
}
