//! The Barnes–Hut quadtree.
//!
//! Nodes are inserted into a recursively subdivided square; each cell caches
//! its total mass and centre of mass. Force evaluation walks the tree and
//! treats any cell whose size/distance ratio is below `theta` as a single
//! pseudo-particle — the classic O(n log n) approximation.

use crate::Vec2;

/// One quadtree cell (arena-allocated; children are indices).
#[derive(Debug, Clone)]
struct Cell {
    /// Centre of the square region.
    center: Vec2,
    /// Half the side length.
    half: f32,
    /// Total mass of contained points.
    mass: f32,
    /// Mass-weighted centre of contained points.
    com: Vec2,
    /// Index of the single contained point, when a leaf with one point.
    point: Option<usize>,
    /// Child cell indices (NW, NE, SW, SE), when subdivided.
    children: Option<[u32; 4]>,
}

/// A Barnes–Hut quadtree over a fixed point set.
#[derive(Debug, Clone)]
pub struct QuadTree {
    cells: Vec<Cell>,
    points: Vec<Vec2>,
}

const MAX_DEPTH: u32 = 32;

impl QuadTree {
    /// Build a tree over the points (all mass 1).
    pub fn build(points: &[Vec2]) -> Self {
        let mut tree = QuadTree {
            cells: Vec::new(),
            points: points.to_vec(),
        };
        if points.is_empty() {
            return tree;
        }
        // Bounding square.
        let mut min = Vec2::new(f32::MAX, f32::MAX);
        let mut max = Vec2::new(f32::MIN, f32::MIN);
        for p in points {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        let center = Vec2::new((min.x + max.x) * 0.5, (min.y + max.y) * 0.5);
        let half = ((max.x - min.x).max(max.y - min.y) * 0.5).max(1e-3);
        tree.cells.push(Cell {
            center,
            half,
            mass: 0.0,
            com: Vec2::default(),
            point: None,
            children: None,
        });
        for i in 0..points.len() {
            tree.insert(0, i, 0);
        }
        tree.finalize(0);
        tree
    }

    fn insert(&mut self, cell: u32, point: usize, depth: u32) {
        let c = cell as usize;
        self.cells[c].mass += 1.0;
        let p = self.points[point];
        self.cells[c].com += p;

        if self.cells[c].children.is_none() && self.cells[c].point.is_none() {
            self.cells[c].point = Some(point);
            return;
        }
        if depth >= MAX_DEPTH {
            // Coincident points beyond max depth: accumulate mass only.
            return;
        }
        if self.cells[c].children.is_none() {
            let existing = self.cells[c].point.take().unwrap();
            let kids = self.subdivide(c);
            self.cells[c].children = Some(kids);
            // Re-insert the displaced point (without double-counting mass:
            // child insert adds mass to children only).
            let q = self.quadrant(c, self.points[existing]);
            self.insert_into_child(c, q, existing, depth + 1);
        }
        let q = self.quadrant(c, p);
        self.insert_into_child(c, q, point, depth + 1);
    }

    fn insert_into_child(&mut self, parent: usize, quadrant: usize, point: usize, depth: u32) {
        let child = self.cells[parent].children.unwrap()[quadrant];
        self.insert(child, point, depth);
    }

    fn subdivide(&mut self, c: usize) -> [u32; 4] {
        let center = self.cells[c].center;
        let h = self.cells[c].half * 0.5;
        let mut kids = [0u32; 4];
        for (i, (dx, dy)) in [(-1.0, 1.0), (1.0, 1.0), (-1.0, -1.0), (1.0, -1.0)]
            .iter()
            .enumerate()
        {
            kids[i] = self.cells.len() as u32;
            self.cells.push(Cell {
                center: Vec2::new(center.x + dx * h, center.y + dy * h),
                half: h,
                mass: 0.0,
                com: Vec2::default(),
                point: None,
                children: None,
            });
        }
        kids
    }

    fn quadrant(&self, c: usize, p: Vec2) -> usize {
        let center = self.cells[c].center;
        match (p.x >= center.x, p.y >= center.y) {
            (false, true) => 0,  // NW
            (true, true) => 1,   // NE
            (false, false) => 2, // SW
            (true, false) => 3,  // SE
        }
    }

    fn finalize(&mut self, cell: usize) {
        if self.cells[cell].mass > 0.0 {
            let m = self.cells[cell].mass;
            self.cells[cell].com = self.cells[cell].com * (1.0 / m);
        }
        if let Some(kids) = self.cells[cell].children {
            for k in kids {
                self.finalize(k as usize);
            }
        }
    }

    /// Approximate repulsive force on `on` (a point *not necessarily* in the
    /// tree) with strength `k` and opening angle `theta`:
    /// `F = k² * Σ m_j (on − x_j) / |on − x_j|²` with far cells collapsed.
    pub fn repulsion(&self, on: Vec2, self_index: Option<usize>, k: f32, theta: f32) -> Vec2 {
        if self.cells.is_empty() {
            return Vec2::default();
        }
        let mut force = Vec2::default();
        let mut stack = vec![0u32];
        while let Some(ci) = stack.pop() {
            let cell = &self.cells[ci as usize];
            if cell.mass == 0.0 {
                continue;
            }
            let d = on - cell.com;
            let dist2 = d.len2().max(1e-6);
            let dist = dist2.sqrt();
            let is_far = (cell.half * 2.0) / dist < theta;
            match (&cell.children, is_far) {
                // Far enough: treat the whole cell as one particle.
                (_, true) | (None, _) => {
                    // Skip self-interaction for single-point leaves.
                    if cell.children.is_none() && cell.point == self_index && cell.mass <= 1.0 {
                        continue;
                    }
                    let mut mass = cell.mass;
                    if cell.children.is_none() {
                        // Leaf containing self among coincident points.
                        if let (Some(s), Some(p)) = (self_index, cell.point) {
                            if p == s {
                                mass -= 1.0;
                            }
                        }
                    }
                    if mass > 0.0 {
                        force += d * (k * k * mass / dist2);
                    }
                }
                (Some(kids), false) => {
                    for k in kids {
                        stack.push(*k);
                    }
                }
            }
        }
        force
    }

    /// Number of allocated cells (for complexity assertions in tests).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }
}

/// Exact O(n) repulsion on one point from all others (the naive baseline).
pub fn naive_repulsion(points: &[Vec2], on: usize, k: f32) -> Vec2 {
    let mut force = Vec2::default();
    let p = points[on];
    for (j, &q) in points.iter().enumerate() {
        if j == on {
            continue;
        }
        let d = p - q;
        let dist2 = d.len2().max(1e-6);
        force += d * (k * k / dist2);
    }
    force
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<Vec2> {
        let side = (n as f32).sqrt().ceil() as usize;
        (0..n)
            .map(|i| Vec2::new((i % side) as f32 * 10.0, (i / side) as f32 * 10.0))
            .collect()
    }

    #[test]
    fn tree_mass_equals_point_count() {
        let pts = grid(37);
        let tree = QuadTree::build(&pts);
        assert!(tree.cell_count() >= 37);
        // Root mass = total points; verified indirectly via repulsion from
        // far away ≈ treating all points as one mass at the COM.
        let far = Vec2::new(1e6, 1e6);
        let f = tree.repulsion(far, None, 1.0, 0.8);
        let com = pts.iter().fold(Vec2::default(), |a, &b| a + b) * (1.0 / pts.len() as f32);
        let d = far - com;
        let expected = d * (37.0 / d.len2());
        assert!((f.x - expected.x).abs() / expected.x.abs() < 1e-3);
        assert!((f.y - expected.y).abs() / expected.y.abs() < 1e-3);
    }

    #[test]
    fn barnes_hut_approximates_naive() {
        let pts = grid(200);
        let tree = QuadTree::build(&pts);
        let mut max_rel_err = 0f32;
        for i in (0..pts.len()).step_by(17) {
            let exact = naive_repulsion(&pts, i, 1.0);
            let approx = tree.repulsion(pts[i], Some(i), 1.0, 0.5);
            let err = (exact - approx).len() / exact.len().max(1e-9);
            max_rel_err = max_rel_err.max(err);
        }
        assert!(max_rel_err < 0.05, "relative error {max_rel_err}");
    }

    #[test]
    fn theta_zero_is_exact() {
        let pts = grid(50);
        let tree = QuadTree::build(&pts);
        for i in [0, 13, 49] {
            let exact = naive_repulsion(&pts, i, 1.5);
            let approx = tree.repulsion(pts[i], Some(i), 1.5, 0.0);
            assert!((exact - approx).len() < 1e-3, "{i}");
        }
    }

    #[test]
    fn coincident_points_do_not_recurse_forever() {
        let pts = vec![Vec2::new(1.0, 1.0); 20];
        let tree = QuadTree::build(&pts);
        // Force on a coincident point is finite (self excluded via mass).
        let f = tree.repulsion(pts[0], Some(0), 1.0, 0.8);
        assert!(f.x.is_finite() && f.y.is_finite());
    }

    #[test]
    fn empty_and_single() {
        let tree = QuadTree::build(&[]);
        assert_eq!(
            tree.repulsion(Vec2::default(), None, 1.0, 0.8),
            Vec2::default()
        );
        let tree = QuadTree::build(&[Vec2::new(5.0, 5.0)]);
        let f = tree.repulsion(Vec2::new(5.0, 5.0), Some(0), 1.0, 0.8);
        assert_eq!(f, Vec2::default());
    }
}
