//! Force-directed graph layout with Barnes–Hut approximation (paper §2.6).
//!
//! "The UI actively responds to node movements to prevent overlap through an
//! automatic graph layout using the Barnes–Hut algorithm, which calculates
//! the nodes' approximated repulsive force based on their distribution."
//!
//! This crate is that layout engine, headless: a spring-embedder
//! (Fruchterman–Reingold-style) whose O(n²) repulsion term is approximated
//! in O(n log n) by a quadtree with the Barnes–Hut opening criterion. Locked
//! nodes ("the dragged nodes will lock in place") receive forces but do not
//! move. The exact naive repulsion is kept as the accuracy/performance
//! baseline for experiment E7.

pub mod engine;
pub mod quadtree;

pub use engine::{ForceLayout, LayoutConfig, LayoutGraph, RepulsionMethod};
pub use quadtree::QuadTree;

/// A 2-D vector/point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f32,
    pub y: f32,
}

impl Vec2 {
    /// Construct from components.
    pub fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean length.
    pub fn len(self) -> f32 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Squared length (avoids the sqrt in hot paths).
    pub fn len2(self) -> f32 {
        self.x * self.x + self.y * self.y
    }
}

impl std::ops::Add for Vec2 {
    type Output = Vec2;
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl std::ops::Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl std::ops::Mul<f32> for Vec2 {
    type Output = Vec2;
    fn mul(self, s: f32) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

impl std::ops::AddAssign for Vec2 {
    fn add_assign(&mut self, o: Vec2) {
        self.x += o.x;
        self.y += o.y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.len(), 5.0);
        assert_eq!(a.len2(), 25.0);
        let b = a + Vec2::new(1.0, -1.0);
        assert_eq!(b, Vec2::new(4.0, 3.0));
        assert_eq!((b - a), Vec2::new(1.0, -1.0));
        assert_eq!(a * 2.0, Vec2::new(6.0, 8.0));
    }
}
