//! The spring-embedder layout engine.

use crate::quadtree::{naive_repulsion, QuadTree};
use crate::Vec2;

/// How pairwise repulsion is computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepulsionMethod {
    /// Exact O(n²) all-pairs (baseline for E7).
    Naive,
    /// Barnes–Hut quadtree with the given opening angle θ.
    BarnesHut { theta: f32 },
}

/// Layout parameters.
#[derive(Debug, Clone)]
pub struct LayoutConfig {
    /// Ideal edge length / repulsion constant.
    pub k: f32,
    /// Spring (attraction) strength along edges (Fruchterman–Reingold
    /// attraction `spring · d²/k`; `1.0` gives equilibrium edge length ≈ k).
    pub spring: f32,
    /// Pull toward the canvas origin, preventing disconnected drift.
    pub gravity: f32,
    /// Initial temperature (max displacement per step).
    pub temperature: f32,
    /// Multiplicative cooling per step.
    pub cooling: f32,
    pub method: RepulsionMethod,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        LayoutConfig {
            k: 40.0,
            spring: 1.0,
            gravity: 0.01,
            temperature: 50.0,
            cooling: 0.95,
            method: RepulsionMethod::BarnesHut { theta: 0.8 },
        }
    }
}

/// The graph being laid out.
#[derive(Debug, Clone, Default)]
pub struct LayoutGraph {
    pub positions: Vec<Vec2>,
    pub edges: Vec<(usize, usize)>,
    /// Locked nodes (user-dragged) receive forces but do not move.
    pub locked: Vec<bool>,
}

impl LayoutGraph {
    /// Build a graph with `n` nodes placed deterministically on a spiral
    /// (a standard collision-free seed layout) and the given edges.
    pub fn seeded(n: usize, edges: Vec<(usize, usize)>) -> Self {
        let positions = (0..n)
            .map(|i| {
                let angle = i as f32 * 2.399_963; // golden angle
                let radius = 10.0 * (i as f32 + 1.0).sqrt();
                Vec2::new(radius * angle.cos(), radius * angle.sin())
            })
            .collect();
        LayoutGraph {
            positions,
            edges,
            locked: vec![false; n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Add a node near an existing anchor (UI node expansion): offset on a
    /// deterministic angle derived from the new index.
    pub fn spawn_near(&mut self, anchor: usize, edge_to_anchor: bool) -> usize {
        let i = self.positions.len();
        let base = self.positions.get(anchor).copied().unwrap_or_default();
        let angle = i as f32 * 2.399_963;
        let p = base + Vec2::new(25.0 * angle.cos(), 25.0 * angle.sin());
        self.positions.push(p);
        self.locked.push(false);
        if edge_to_anchor {
            self.edges.push((anchor, i));
        }
        i
    }

    /// Lock a node in place (drag-release in the UI).
    pub fn lock(&mut self, node: usize) {
        self.locked[node] = true;
    }

    /// Unlock a node (re-selected for dragging).
    pub fn unlock(&mut self, node: usize) {
        self.locked[node] = false;
    }

    /// Minimum pairwise distance — the "no overlap" quality metric.
    pub fn min_pairwise_distance(&self) -> f32 {
        let mut best = f32::MAX;
        for i in 0..self.positions.len() {
            for j in i + 1..self.positions.len() {
                best = best.min((self.positions[i] - self.positions[j]).len());
            }
        }
        best
    }

    /// Mean edge length (spring satisfaction metric).
    pub fn mean_edge_length(&self) -> f32 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.edges
            .iter()
            .map(|&(a, b)| (self.positions[a] - self.positions[b]).len())
            .sum::<f32>()
            / self.edges.len() as f32
    }
}

/// The layout engine: holds the cooling schedule between steps.
#[derive(Debug, Clone)]
pub struct ForceLayout {
    pub config: LayoutConfig,
    temperature: f32,
}

impl ForceLayout {
    /// New engine at the config's initial temperature.
    pub fn new(config: LayoutConfig) -> Self {
        let temperature = config.temperature;
        ForceLayout {
            config,
            temperature,
        }
    }

    /// One simulation step; returns the total displacement (convergence
    /// indicator).
    pub fn step(&mut self, graph: &mut LayoutGraph) -> f32 {
        let n = graph.len();
        if n == 0 {
            return 0.0;
        }
        let k = self.config.k;
        let mut forces = vec![Vec2::default(); n];

        // Repulsion.
        match self.config.method {
            RepulsionMethod::Naive => {
                for (i, f) in forces.iter_mut().enumerate() {
                    *f += naive_repulsion(&graph.positions, i, k);
                }
            }
            RepulsionMethod::BarnesHut { theta } => {
                let tree = QuadTree::build(&graph.positions);
                for (i, f) in forces.iter_mut().enumerate() {
                    *f += tree.repulsion(graph.positions[i], Some(i), k, theta);
                }
            }
        }

        // Springs (FR attraction: |f| = spring · dist² / k).
        for &(a, b) in &graph.edges {
            let d = graph.positions[b] - graph.positions[a];
            let dist = d.len().max(1e-6);
            let pull = d * (self.config.spring * dist / k);
            forces[a] += pull;
            forces[b] += pull * -1.0;
        }

        // Gravity toward the origin.
        for (i, f) in forces.iter_mut().enumerate() {
            *f += graph.positions[i] * -self.config.gravity;
        }

        // Apply, clamped by temperature; locked nodes stay put. Exactly
        // coincident nodes produce a zero-direction repulsion; a tiny
        // deterministic per-index jitter unsticks them.
        let mut total = 0.0;
        for (i, &force) in forces.iter().enumerate() {
            if graph.locked[i] {
                continue;
            }
            let mut f = force;
            if n > 1 {
                // Symmetry-breaking jitter, decaying with temperature:
                // exactly coincident nodes otherwise receive identical
                // (direction-less) forces and never separate.
                let angle = i as f32 * 2.399_963;
                f += Vec2::new(angle.cos(), angle.sin()) * (1e-3 * self.temperature);
            }
            let f = f;
            let len = f.len();
            let step = if len > self.temperature {
                f * (self.temperature / len)
            } else {
                f
            };
            graph.positions[i] += step;
            total += step.len();
        }
        self.temperature *= self.config.cooling;
        total
    }

    /// Run `steps` iterations.
    pub fn run(&mut self, graph: &mut LayoutGraph, steps: usize) {
        for _ in 0..steps {
            self.step(graph);
        }
    }

    /// Current temperature.
    pub fn temperature(&self) -> f32 {
        self.temperature
    }

    /// Reheat (UI calls this when the graph changes under the user).
    pub fn reheat(&mut self) {
        self.temperature = self.config.temperature;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small star graph: node 0 in the middle.
    fn star(n: usize) -> LayoutGraph {
        LayoutGraph::seeded(n, (1..n).map(|i| (0, i)).collect())
    }

    #[test]
    fn layout_separates_overlapping_nodes() {
        let mut graph = star(20);
        // Collapse everything to one point to force the worst case.
        for p in &mut graph.positions {
            *p = Vec2::new(0.001, 0.001);
        }
        graph.positions[0] = Vec2::default();
        let mut engine = ForceLayout::new(LayoutConfig::default());
        engine.run(&mut graph, 150);
        assert!(
            graph.min_pairwise_distance() > 5.0,
            "{}",
            graph.min_pairwise_distance()
        );
    }

    #[test]
    fn springs_keep_edges_near_ideal_length() {
        let mut graph = star(8);
        let config = LayoutConfig::default();
        let k = config.k;
        let mut engine = ForceLayout::new(config);
        engine.run(&mut graph, 300);
        let mean = graph.mean_edge_length();
        assert!(mean > k * 0.4 && mean < k * 3.0, "mean edge length {mean}");
    }

    #[test]
    fn cooling_converges() {
        let mut graph = star(15);
        let mut engine = ForceLayout::new(LayoutConfig::default());
        engine.run(&mut graph, 50);
        let early = engine.step(&mut graph);
        engine.run(&mut graph, 200);
        let late = engine.step(&mut graph);
        assert!(
            late < early,
            "late {late} should be smaller than early {early}"
        );
    }

    #[test]
    fn locked_nodes_do_not_move() {
        let mut graph = star(10);
        graph.lock(3);
        let before = graph.positions[3];
        let mut engine = ForceLayout::new(LayoutConfig::default());
        engine.run(&mut graph, 100);
        assert_eq!(graph.positions[3], before);
        // Unlock: it moves again.
        graph.unlock(3);
        engine.reheat();
        engine.run(&mut graph, 20);
        assert_ne!(graph.positions[3], before);
    }

    #[test]
    fn barnes_hut_and_naive_agree_on_quality() {
        let edges: Vec<(usize, usize)> = (1..60).map(|i| (i / 3, i)).collect();
        let mut bh_graph = LayoutGraph::seeded(60, edges.clone());
        let mut naive_graph = LayoutGraph::seeded(60, edges);
        ForceLayout::new(LayoutConfig {
            method: RepulsionMethod::BarnesHut { theta: 0.8 },
            ..LayoutConfig::default()
        })
        .run(&mut bh_graph, 200);
        ForceLayout::new(LayoutConfig {
            method: RepulsionMethod::Naive,
            ..LayoutConfig::default()
        })
        .run(&mut naive_graph, 200);
        let q_bh = bh_graph.min_pairwise_distance();
        let q_naive = naive_graph.min_pairwise_distance();
        assert!(q_bh > q_naive * 0.4, "bh {q_bh} vs naive {q_naive}");
    }

    #[test]
    fn spawn_near_places_close_to_anchor() {
        let mut graph = star(5);
        let anchor_pos = graph.positions[2];
        let id = graph.spawn_near(2, true);
        assert_eq!(id, 5);
        assert!((graph.positions[id] - anchor_pos).len() < 50.0);
        assert!(graph.edges.contains(&(2, id)));
        assert_eq!(graph.locked.len(), 6);
    }

    #[test]
    fn empty_graph_is_fine() {
        let mut graph = LayoutGraph::default();
        let mut engine = ForceLayout::new(LayoutConfig::default());
        assert_eq!(engine.step(&mut graph), 0.0);
    }
}
