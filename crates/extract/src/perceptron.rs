//! Averaged structured perceptron (Collins 2002) over the same features and
//! label space as the CRF — the training-objective ablation for E3.
//!
//! Each epoch Viterbi-decodes every sentence and applies `+1/-1` updates on
//! mismatching feature–label and transition pairs; final weights are the
//! average over all updates (implemented with the standard
//! timestamp-compensation trick, O(updates) rather than O(steps × weights)).

use crate::crf::Example;
use crate::features::{FeatureMap, Featurizer};
use crate::label::{LabelId, LabelSet};
use kg_nlp::AnalyzedSentence;
use serde::{Deserialize, Serialize};

/// Perceptron training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerceptronConfig {
    pub epochs: usize,
    pub seed: u64,
}

impl Default for PerceptronConfig {
    fn default() -> Self {
        PerceptronConfig {
            epochs: 8,
            seed: 0x9a7c,
        }
    }
}

/// A trained averaged structured perceptron tagger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StructuredPerceptron {
    labels: LabelSet,
    features: FeatureMap,
    emit: Vec<f64>,
    trans: Vec<f64>,
    n_labels: usize,
}

/// Mutable training state for the averaging trick.
struct Averaged {
    w: Vec<f64>,
    acc: Vec<f64>,
    last: Vec<u64>,
}

impl Averaged {
    fn new(n: usize) -> Self {
        Averaged {
            w: vec![0.0; n],
            acc: vec![0.0; n],
            last: vec![0; n],
        }
    }

    fn update(&mut self, idx: usize, delta: f64, step: u64) {
        self.acc[idx] += self.w[idx] * (step - self.last[idx]) as f64;
        self.last[idx] = step;
        self.w[idx] += delta;
    }

    fn finalize(mut self, total_steps: u64) -> Vec<f64> {
        for i in 0..self.w.len() {
            self.acc[i] += self.w[i] * (total_steps - self.last[i]) as f64;
        }
        if total_steps == 0 {
            return self.w;
        }
        self.acc.iter().map(|a| a / total_steps as f64).collect()
    }
}

impl StructuredPerceptron {
    /// Train on examples.
    pub fn train(
        labels: LabelSet,
        map: FeatureMap,
        examples: &[Example],
        config: &PerceptronConfig,
    ) -> Self {
        let n = labels.len();
        let mut emit = Averaged::new(map.len() * n);
        let mut trans = Averaged::new(n * n);
        let mut step: u64 = 0;

        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut state = config.seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };

        for _ in 0..config.epochs {
            for i in (1..order.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            for &ei in &order {
                let ex = &examples[ei];
                if ex.features.is_empty() {
                    continue;
                }
                step += 1;
                let predicted = viterbi(&labels, n, &emit.w, &trans.w, &ex.features);
                if predicted == ex.labels {
                    continue;
                }
                for t in 0..ex.features.len() {
                    let (gold, pred) = (ex.labels[t] as usize, predicted[t] as usize);
                    if gold != pred {
                        for &f in &ex.features[t] {
                            let row = f as usize * n;
                            emit.update(row + gold, 1.0, step);
                            emit.update(row + pred, -1.0, step);
                        }
                    }
                    if t > 0 {
                        let (gp, pp) = (ex.labels[t - 1] as usize, predicted[t - 1] as usize);
                        if gp != pp || gold != pred {
                            trans.update(gp * n + gold, 1.0, step);
                            trans.update(pp * n + pred, -1.0, step);
                        }
                    }
                }
            }
        }

        StructuredPerceptron {
            labels,
            features: map,
            emit: emit.finalize(step),
            trans: trans.finalize(step),
            n_labels: n,
        }
    }

    /// Decode a sentence into label ids.
    pub fn decode(&self, featurizer: &Featurizer, sentence: &AnalyzedSentence) -> Vec<LabelId> {
        let feats = featurizer.features_lookup(sentence, &self.features);
        viterbi(&self.labels, self.n_labels, &self.emit, &self.trans, &feats)
    }

    /// The label set.
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }
}

/// BIO-constrained Viterbi shared by trainer and decoder.
fn viterbi(
    labels: &LabelSet,
    n: usize,
    emit: &[f64],
    trans: &[f64],
    feats: &[Vec<u32>],
) -> Vec<LabelId> {
    let t_len = feats.len();
    if t_len == 0 {
        return Vec::new();
    }
    let mut scores = vec![0f64; t_len * n];
    for (t, fs) in feats.iter().enumerate() {
        for &f in fs {
            let row = f as usize * n;
            for l in 0..n {
                scores[t * n + l] += emit[row + l];
            }
        }
    }
    let mut delta = vec![f64::NEG_INFINITY; t_len * n];
    let mut back = vec![0usize; t_len * n];
    for l in 0..n {
        if !labels.is_inside(l as LabelId) {
            delta[l] = scores[l];
        }
    }
    for t in 1..t_len {
        for l in 0..n {
            let mut best = f64::NEG_INFINITY;
            let mut arg = 0usize;
            for p in 0..n {
                if !labels.may_follow(p as LabelId, l as LabelId) {
                    continue;
                }
                let v = delta[(t - 1) * n + p] + trans[p * n + l];
                if v > best {
                    best = v;
                    arg = p;
                }
            }
            delta[t * n + l] = best + scores[t * n + l];
            back[t * n + l] = arg;
        }
    }
    let mut last = (0..n)
        .max_by(|&a, &b| {
            delta[(t_len - 1) * n + a]
                .partial_cmp(&delta[(t_len - 1) * n + b])
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(0);
    let mut path = vec![0 as LabelId; t_len];
    for t in (0..t_len).rev() {
        path[t] = last as LabelId;
        if t > 0 {
            last = back[t * n + last];
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureConfig;
    use kg_nlp::{analyze, IocMatcher, PosTagger};
    use kg_ontology::EntityKind;

    fn toy() -> (LabelSet, FeatureMap, Vec<Example>, Featurizer) {
        let labels = LabelSet::standard();
        let featurizer = Featurizer::new(FeatureConfig::default());
        let mut map = FeatureMap::default();
        let matcher = IocMatcher::standard();
        let tagger = PosTagger::standard();
        let mut examples = Vec::new();
        type Row = (&'static str, Vec<(EntityKind, usize, usize)>);
        let data: Vec<Row> = vec![
            (
                "the zarbot family spread fast.",
                vec![(EntityKind::Malware, 1, 2)],
            ),
            (
                "the vexbot family returned today.",
                vec![(EntityKind::Malware, 1, 2)],
            ),
            (
                "analysts watched lazarus group closely.",
                vec![(EntityKind::ThreatActor, 2, 4)],
            ),
            ("nothing suspicious happened yesterday.", vec![]),
        ];
        for (text, spans) in data {
            let sent = analyze(text, &matcher, &tagger).remove(0);
            let feats = featurizer.features_interned(&sent, &mut map);
            let gold = labels.encode_spans(sent.tokens.len(), &spans);
            examples.push(Example {
                features: feats,
                labels: gold,
            });
        }
        (labels, map, examples, featurizer)
    }

    #[test]
    fn fits_and_generalises() {
        let (labels, map, examples, featurizer) = toy();
        let model =
            StructuredPerceptron::train(labels, map, &examples, &PerceptronConfig::default());
        let matcher = IocMatcher::standard();
        let tagger = PosTagger::standard();
        let sent = analyze("the krobot family spread fast.", &matcher, &tagger).remove(0);
        let spans = model
            .labels()
            .decode_spans(&model.decode(&featurizer, &sent));
        assert_eq!(spans, vec![(EntityKind::Malware, 1, 2)]);
    }

    #[test]
    fn averaging_smooths_but_stays_deterministic() {
        let (labels, map, examples, featurizer) = toy();
        let a = StructuredPerceptron::train(
            labels.clone(),
            map.clone(),
            &examples,
            &PerceptronConfig::default(),
        );
        let (l2, m2, e2, _) = toy();
        let b = StructuredPerceptron::train(l2, m2, &e2, &PerceptronConfig::default());
        let matcher = IocMatcher::standard();
        let tagger = PosTagger::standard();
        let sent = analyze("the zarbot family spread fast.", &matcher, &tagger).remove(0);
        assert_eq!(a.decode(&featurizer, &sent), b.decode(&featurizer, &sent));
    }

    #[test]
    fn empty_input() {
        let (labels, map, examples, _) = toy();
        let model =
            StructuredPerceptron::train(labels, map, &examples, &PerceptronConfig::default());
        let labels = LabelSet::standard();
        assert!(viterbi(&labels, labels.len(), &model.emit, &model.trans, &[]).is_empty());
    }
}
