//! Relation extraction between recognised entities (paper §2.4).
//!
//! The paper extends a dependency-parsing-based IOC relation pipeline \[17\] to
//! extract "relation verbs between entities recognized by our CRF model".
//! With no treebank for this domain, we reproduce the same input/output
//! behaviour with a shallow syntactic analysis over the POS-tagged sentence
//! (see DESIGN.md's substitution table):
//!
//! - **active**: `E1 <verb> ... E2` → `(E1, verb, E2)`, with coordinated
//!   objects (`E1 used T1 and T2`) fanning out;
//! - **passive + by-agent**: `E2 was <verb> by E1` → `(E1, verb, E2)`;
//! - **passive + to**: `E1 has been <verb> to E2` → `(E1, verb, E2)`
//!   (attribution/linking);
//! - **subjectless**: `<verb> E1 to E2` → `(E1, verb, E2)` ("analysts have
//!   linked E1 to E2").
//!
//! The verb lemma is resolved against the ontology
//! ([`kg_ontology::Ontology::resolve_extracted`]); inadmissible pairs degrade
//! to `RELATED_TO` or are dropped.

use crate::label::LabelId;
use kg_nlp::{AnalyzedSentence, PosTag};
use kg_ontology::{EntityKind, Ontology, RelationKind};
use serde::{Deserialize, Serialize};

/// An entity span over sentence tokens, as produced by the NER layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntitySpan {
    pub kind: EntityKind,
    /// First token index.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
}

/// One extracted relation between two entity spans of a sentence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtractedRelation {
    /// Index into the sentence's entity-span list.
    pub subject: usize,
    /// Index into the sentence's entity-span list.
    pub object: usize,
    /// The connecting verb lemma.
    pub verb: String,
    /// The resolved ontology relation kind.
    pub kind: RelationKind,
}

/// Extract relations from one analysed sentence given its entity spans.
///
/// `spans` must be sorted by `start` (the NER layer produces them sorted).
pub fn extract_relations(
    sentence: &AnalyzedSentence,
    spans: &[EntitySpan],
    ontology: &Ontology,
) -> Vec<ExtractedRelation> {
    let mut out: Vec<ExtractedRelation> = Vec::new();
    if spans.len() < 2 {
        return out;
    }
    let n = sentence.tokens.len();
    let in_span = |i: usize| spans.iter().any(|s| i >= s.start && i < s.end);

    // Verb positions outside entity spans.
    let verbs: Vec<usize> = (0..n)
        .filter(|&i| sentence.tags[i] == PosTag::Verb && !in_span(i))
        .collect();

    for (vi, &v) in verbs.iter().enumerate() {
        let lemma = sentence.lemmas[v].clone();
        let next_verb = verbs.get(vi + 1).copied().unwrap_or(n);

        // Passive: a "be" auxiliary within the two preceding tokens
        // (skipping adverbs).
        let mut passive = false;
        let mut k = v;
        let mut steps = 0;
        while k > 0 && steps < 3 {
            k -= 1;
            steps += 1;
            match sentence.tags[k] {
                PosTag::Adverb => continue,
                PosTag::Aux => {
                    if sentence.lemmas[k] == "be" {
                        passive = true;
                    } else {
                        // "has/have (been) V-ed": keep scanning for "been".
                        continue;
                    }
                    break;
                }
                _ => break,
            }
        }

        // Nearest entity ending at or before the verb.
        let left = spans.iter().rposition(|s| s.end <= v);
        // Entities starting after the verb, before the next verb.
        let rights: Vec<usize> = spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.start > v && s.start < next_verb)
            .map(|(i, _)| i)
            .collect();

        // Locate function words after the verb (up to first right entity).
        let first_right_start = rights.first().map(|&i| spans[i].start).unwrap_or(n);
        let mut saw_by = false;
        let mut saw_to = false;
        for i in v + 1..first_right_start.min(n) {
            let w = sentence.tokens[i].text.to_lowercase();
            if w == "by" {
                saw_by = true;
            }
            if w == "to" {
                saw_to = true;
            }
        }

        let mut pairs: Vec<(usize, usize)> = Vec::new();
        if passive && saw_by {
            // "O was V by S"
            if let (Some(o), Some(&s)) = (left, rights.first()) {
                pairs.push((s, o));
            }
        } else if passive && saw_to {
            // "S has been V to O"
            if let (Some(s), Some(&o)) = (left, rights.first()) {
                pairs.push((s, o));
            }
        } else if let Some(s) = left {
            // Active with explicit subject; fan out over coordination.
            if let Some(&o) = rights.first() {
                pairs.push((s, o));
                for window in rights.windows(2) {
                    let (a, b) = (window[0], window[1]);
                    if is_coordination(sentence, spans[a].end, spans[b].start) {
                        pairs.push((s, b));
                    } else {
                        break;
                    }
                }
            }
        } else if rights.len() >= 2 {
            // Subjectless "V E1 to E2".
            let (e1, e2) = (rights[0], rights[1]);
            let to_between = (spans[e1].end..spans[e2].start)
                .any(|i| sentence.tokens[i].text.eq_ignore_ascii_case("to"));
            if to_between {
                pairs.push((e1, e2));
            }
        }

        for (s, o) in pairs {
            if s == o {
                continue;
            }
            let Some(kind) = ontology.resolve_extracted(spans[s].kind, &lemma, spans[o].kind)
            else {
                continue;
            };
            let rel = ExtractedRelation {
                subject: s,
                object: o,
                verb: lemma.clone(),
                kind,
            };
            if !out.contains(&rel) {
                out.push(rel);
            }
        }
    }
    out
}

/// Are the tokens strictly between two spans only coordination glue?
fn is_coordination(sentence: &AnalyzedSentence, from: usize, to: usize) -> bool {
    if from > to {
        return false;
    }
    let mut any = false;
    for i in from..to {
        let w = sentence.tokens[i].text.to_lowercase();
        if w == "and" || w == "," || w == "or" {
            any = true;
        } else {
            return false;
        }
    }
    any
}

/// Convenience: convert BIO label ids into [`EntitySpan`]s.
pub fn spans_from_labels(labels: &crate::label::LabelSet, ids: &[LabelId]) -> Vec<EntitySpan> {
    labels
        .decode_spans(ids)
        .into_iter()
        .map(|(kind, start, end)| EntitySpan { kind, start, end })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_nlp::{analyze, IocMatcher, PosTagger};

    fn analysed(text: &str) -> AnalyzedSentence {
        analyze(text, &IocMatcher::standard(), &PosTagger::standard()).remove(0)
    }

    fn span(kind: EntityKind, start: usize, end: usize) -> EntitySpan {
        EntitySpan { kind, start, end }
    }

    fn ont() -> Ontology {
        Ontology::standard()
    }

    #[test]
    fn active_svo() {
        // tokens: wannacry drops tasksche.exe on the infected host .
        let s = analysed("wannacry drops tasksche.exe on the infected host.");
        let spans = vec![
            span(EntityKind::Malware, 0, 1),
            span(EntityKind::FileName, 2, 3),
        ];
        let rels = extract_relations(&s, &spans, &ont());
        assert_eq!(rels.len(), 1, "{rels:?}");
        assert_eq!(
            rels[0],
            ExtractedRelation {
                subject: 0,
                object: 1,
                verb: "drop".into(),
                kind: RelationKind::Drop
            }
        );
    }

    #[test]
    fn passive_by_inverts() {
        // tokens: tasksche.exe was dropped by wannacry today .
        let s = analysed("tasksche.exe was dropped by wannacry today.");
        let spans = vec![
            span(EntityKind::FileName, 0, 1),
            span(EntityKind::Malware, 4, 5),
        ];
        let rels = extract_relations(&s, &spans, &ont());
        assert_eq!(rels.len(), 1, "{rels:?}");
        assert_eq!(rels[0].subject, 1);
        assert_eq!(rels[0].object, 0);
        assert_eq!(rels[0].kind, RelationKind::Drop);
    }

    #[test]
    fn passive_to_stays_forward() {
        // tokens: emotet has been attributed to lazarus group .
        let s = analysed("emotet has been attributed to lazarus group.");
        let spans = vec![
            span(EntityKind::Malware, 0, 1),
            span(EntityKind::ThreatActor, 5, 7),
        ];
        let rels = extract_relations(&s, &spans, &ont());
        assert_eq!(rels.len(), 1, "{rels:?}");
        assert_eq!(rels[0].subject, 0);
        assert_eq!(rels[0].object, 1);
        assert_eq!(rels[0].kind, RelationKind::AttributedTo);
    }

    #[test]
    fn subjectless_link_to() {
        // tokens: analysts have linked emotet to lazarus group .
        let s = analysed("analysts have linked emotet to lazarus group.");
        let spans = vec![
            span(EntityKind::Malware, 3, 4),
            span(EntityKind::ThreatActor, 5, 7),
        ];
        let rels = extract_relations(&s, &spans, &ont());
        assert_eq!(rels.len(), 1, "{rels:?}");
        assert_eq!(rels[0].subject, 0);
        assert_eq!(rels[0].object, 1);
        assert_eq!(rels[0].kind, RelationKind::AttributedTo);
    }

    #[test]
    fn coordination_fans_out() {
        // tokens: cozyduke used mimikatz and credential dumping yesterday .
        let s = analysed("cozyduke used mimikatz and credential dumping yesterday.");
        let spans = vec![
            span(EntityKind::ThreatActor, 0, 1),
            span(EntityKind::Tool, 2, 3),
            span(EntityKind::Technique, 4, 6),
        ];
        let rels = extract_relations(&s, &spans, &ont());
        assert_eq!(rels.len(), 2, "{rels:?}");
        assert!(rels
            .iter()
            .all(|r| r.subject == 0 && r.kind == RelationKind::Uses));
        let objects: Vec<usize> = rels.iter().map(|r| r.object).collect();
        assert_eq!(objects, vec![1, 2]);
    }

    #[test]
    fn prepositional_object() {
        // tokens: wannacry connects to 10.0.0.1 for command and control .
        let s = analysed("wannacry connects to 10.0.0.1 for command and control.");
        let spans = vec![
            span(EntityKind::Malware, 0, 1),
            span(EntityKind::IpAddress, 3, 4),
        ];
        let rels = extract_relations(&s, &spans, &ont());
        assert_eq!(rels.len(), 1, "{rels:?}");
        assert_eq!(rels[0].kind, RelationKind::ConnectsTo);
    }

    #[test]
    fn inadmissible_pairs_degrade_to_related_to() {
        // "drop" from Malware to Domain is not schema-admissible as DROP.
        let s = analysed("wannacry drops evil.example.com here.");
        let spans = vec![
            span(EntityKind::Malware, 0, 1),
            span(EntityKind::Domain, 2, 3),
        ];
        let rels = extract_relations(&s, &spans, &ont());
        assert_eq!(rels.len(), 1);
        assert_eq!(rels[0].kind, RelationKind::RelatedTo);
    }

    #[test]
    fn fewer_than_two_entities_yields_nothing() {
        let s = analysed("wannacry spreads rapidly.");
        let spans = vec![span(EntityKind::Malware, 0, 1)];
        assert!(extract_relations(&s, &spans, &ont()).is_empty());
    }

    #[test]
    fn unknown_verb_degrades_not_crashes() {
        let s = analysed("wannacry mystifies tasksche.exe somehow.");
        let spans = vec![
            span(EntityKind::Malware, 0, 1),
            span(EntityKind::FileName, 2, 3),
        ];
        let rels = extract_relations(&s, &spans, &ont());
        // "mystify" is no known verb → RELATED_TO fallback (if tagged VERB at
        // all; if the tagger missed it, no relation, which is also fine).
        for r in rels {
            assert_eq!(r.kind, RelationKind::RelatedTo);
        }
    }
}
