//! Precision / recall / F1 for spans and relations (experiment E3's
//! measuring stick — the paper reports "> 92% F1" for its extractors).

use kg_ontology::EntityKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A span prediction or gold item for matching: kind + byte offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SpanMatch {
    pub kind: EntityKind,
    pub start: usize,
    pub end: usize,
}

/// Running precision/recall/F1 counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Prf {
    pub tp: usize,
    pub fp: usize,
    pub fn_: usize,
}

impl Prf {
    /// Precision (1.0 when nothing was predicted).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall (1.0 when there was nothing to find).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accumulate another count.
    pub fn add(&mut self, other: Prf) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Score one document: exact matching of predicted vs gold item sets
    /// (duplicates collapse).
    pub fn score_sets<T: Ord + Clone>(predicted: &[T], gold: &[T]) -> Prf {
        let pred: std::collections::BTreeSet<T> = predicted.iter().cloned().collect();
        let gold_set: std::collections::BTreeSet<T> = gold.iter().cloned().collect();
        let tp = pred.intersection(&gold_set).count();
        Prf {
            tp,
            fp: pred.len() - tp,
            fn_: gold_set.len() - tp,
        }
    }
}

/// Micro-averaged scores with a per-kind breakdown.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpanScores {
    pub overall: Prf,
    pub per_kind: BTreeMap<EntityKind, Prf>,
}

impl SpanScores {
    /// Score one document's span predictions and fold into the totals.
    pub fn add_document(&mut self, predicted: &[SpanMatch], gold: &[SpanMatch]) {
        self.overall.add(Prf::score_sets(predicted, gold));
        let kinds: std::collections::BTreeSet<EntityKind> =
            predicted.iter().chain(gold).map(|s| s.kind).collect();
        for kind in kinds {
            let p: Vec<SpanMatch> = predicted
                .iter()
                .copied()
                .filter(|s| s.kind == kind)
                .collect();
            let g: Vec<SpanMatch> = gold.iter().copied().filter(|s| s.kind == kind).collect();
            self.per_kind
                .entry(kind)
                .or_default()
                .add(Prf::score_sets(&p, &g));
        }
    }

    /// Macro-averaged F1 over kinds that appear in the gold data.
    pub fn macro_f1(&self) -> f64 {
        let with_gold: Vec<&Prf> = self
            .per_kind
            .values()
            .filter(|p| p.tp + p.fn_ > 0)
            .collect();
        if with_gold.is_empty() {
            return 0.0;
        }
        with_gold.iter().map(|p| p.f1()).sum::<f64>() / with_gold.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: EntityKind, start: usize, end: usize) -> SpanMatch {
        SpanMatch { kind, start, end }
    }

    #[test]
    fn perfect_prediction() {
        let gold = vec![
            span(EntityKind::Malware, 0, 8),
            span(EntityKind::FileName, 10, 22),
        ];
        let prf = Prf::score_sets(&gold.clone(), &gold);
        assert_eq!(
            prf,
            Prf {
                tp: 2,
                fp: 0,
                fn_: 0
            }
        );
        assert_eq!(prf.f1(), 1.0);
    }

    #[test]
    fn partial_overlap_is_not_a_match() {
        let gold = vec![span(EntityKind::Malware, 0, 8)];
        let pred = vec![span(EntityKind::Malware, 0, 7)];
        let prf = Prf::score_sets(&pred, &gold);
        assert_eq!(
            prf,
            Prf {
                tp: 0,
                fp: 1,
                fn_: 1
            }
        );
        assert_eq!(prf.f1(), 0.0);
    }

    #[test]
    fn kind_mismatch_is_not_a_match() {
        let gold = vec![span(EntityKind::Malware, 0, 8)];
        let pred = vec![span(EntityKind::Tool, 0, 8)];
        assert_eq!(Prf::score_sets(&pred, &gold).tp, 0);
    }

    #[test]
    fn empty_edge_cases() {
        let prf = Prf::score_sets::<SpanMatch>(&[], &[]);
        assert_eq!(prf.precision(), 1.0);
        assert_eq!(prf.recall(), 1.0);
        let gold = vec![span(EntityKind::Malware, 0, 8)];
        let miss = Prf::score_sets(&[], &gold);
        assert_eq!(miss.recall(), 0.0);
        assert_eq!(miss.precision(), 1.0);
    }

    #[test]
    fn micro_accumulation_and_per_kind() {
        let mut scores = SpanScores::default();
        scores.add_document(
            &[
                span(EntityKind::Malware, 0, 8),
                span(EntityKind::Tool, 9, 12),
            ],
            &[span(EntityKind::Malware, 0, 8)],
        );
        scores.add_document(
            &[span(EntityKind::Malware, 5, 9)],
            &[
                span(EntityKind::Malware, 5, 9),
                span(EntityKind::Tool, 20, 25),
            ],
        );
        assert_eq!(
            scores.overall,
            Prf {
                tp: 2,
                fp: 1,
                fn_: 1
            }
        );
        assert_eq!(scores.per_kind[&EntityKind::Malware].f1(), 1.0);
        let tool = scores.per_kind[&EntityKind::Tool];
        assert_eq!(
            tool,
            Prf {
                tp: 0,
                fp: 1,
                fn_: 1
            }
        );
        // Macro-F1 averages only kinds with gold instances.
        assert!((scores.macro_f1() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn duplicates_collapse() {
        let gold = vec![span(EntityKind::Malware, 0, 8)];
        let pred = vec![
            span(EntityKind::Malware, 0, 8),
            span(EntityKind::Malware, 0, 8),
        ];
        let prf = Prf::score_sets(&pred, &gold);
        assert_eq!(
            prf,
            Prf {
                tp: 1,
                fp: 0,
                fn_: 0
            }
        );
    }
}
