//! The full NER pipeline and the regex/gazetteer baseline.
//!
//! [`NerPipeline`] = IOC protection + tokenization + CRF decoding, producing
//! [`kg_ir::EntityMention`]s with byte offsets into the original text. The
//! paper's claim that the CRF "can outperform a naive entity recognition
//! solution that relies on regex rules, and generalize to entities that are
//! not in the training set" is tested by comparing it against
//! [`RegexNerBaseline`] (IOC scanner + exact gazetteer matching, no
//! generalisation) in experiment E3.

use crate::crf::Crf;
use crate::features::{Featurizer, Gazetteer};
use crate::relation::{extract_relations, EntitySpan, ExtractedRelation};
use kg_ir::{EntityMention, MentionOrigin};
use kg_nlp::{analyze, AnalyzedSentence, IocMatcher, PosTagger, TokenKind};
use kg_ontology::{EntityKind, Ontology};

/// Per-sentence extraction output.
#[derive(Debug, Clone)]
pub struct SentenceExtraction {
    pub sentence: AnalyzedSentence,
    pub spans: Vec<EntitySpan>,
    pub relations: Vec<ExtractedRelation>,
}

/// The CRF-based NER + relation pipeline.
pub struct NerPipeline {
    pub matcher: IocMatcher,
    pub tagger: PosTagger,
    pub featurizer: Featurizer,
    pub crf: Crf,
    pub ontology: Ontology,
    /// Spans whose minimum token marginal falls below this are dropped
    /// (0.0 keeps everything; the paper's config file exposes "threshold
    /// values for entity recognition" — this is that knob).
    pub min_confidence: f64,
}

impl NerPipeline {
    /// Assemble a pipeline from a trained CRF and its featurizer.
    pub fn new(crf: Crf, featurizer: Featurizer) -> Self {
        NerPipeline {
            matcher: IocMatcher::standard(),
            tagger: PosTagger::standard(),
            featurizer,
            crf,
            ontology: Ontology::standard(),
            min_confidence: 0.0,
        }
    }

    /// Run NER + relation extraction over a whole text.
    pub fn extract(&self, text: &str) -> Vec<SentenceExtraction> {
        analyze(text, &self.matcher, &self.tagger)
            .into_iter()
            .map(|sentence| {
                let feats = self
                    .featurizer
                    .features_lookup(&sentence, self.crf.feature_map());
                let (ids, marginals) = self.crf.decode_with_marginals(&feats);
                let mut spans: Vec<EntitySpan> = self
                    .crf
                    .labels()
                    .decode_spans(&ids)
                    .into_iter()
                    .filter(|&(_, start, end)| {
                        let confidence =
                            marginals[start..end].iter().copied().fold(1.0f64, f64::min);
                        confidence >= self.min_confidence
                    })
                    .map(|(kind, start, end)| EntitySpan { kind, start, end })
                    .collect();
                // The IOC scanner is authoritative for protected tokens: if
                // the CRF missed one, add it; if the CRF mislabelled one,
                // trust the scanner's class.
                for (i, tok) in sentence.tokens.iter().enumerate() {
                    if let TokenKind::Ioc(kind) = tok.kind {
                        match spans.iter_mut().find(|s| i >= s.start && i < s.end) {
                            Some(s) => {
                                if s.start == i && s.end == i + 1 {
                                    s.kind = kind;
                                }
                            }
                            None => spans.push(EntitySpan {
                                kind,
                                start: i,
                                end: i + 1,
                            }),
                        }
                    }
                }
                spans.sort_by_key(|s| (s.start, s.end));
                let relations = extract_relations(&sentence, &spans, &self.ontology);
                SentenceExtraction {
                    sentence,
                    spans,
                    relations,
                }
            })
            .collect()
    }

    /// Flatten extraction output into [`EntityMention`]s with byte offsets.
    pub fn mentions(&self, text: &str) -> Vec<EntityMention> {
        self.extract(text)
            .into_iter()
            .flat_map(|se| sentence_mentions(&se))
            .collect()
    }
}

/// Convert one sentence's spans into byte-offset mentions.
pub fn sentence_mentions(se: &SentenceExtraction) -> Vec<EntityMention> {
    se.spans
        .iter()
        .map(|s| {
            let start = se.sentence.tokens[s.start].start;
            let end = se.sentence.tokens[s.end - 1].end;
            let text: String = se.sentence.tokens[s.start..s.end]
                .iter()
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            let origin = if s.kind.is_ioc() || s.kind == EntityKind::Vulnerability {
                MentionOrigin::Regex
            } else {
                MentionOrigin::Ner
            };
            EntityMention::new(s.kind, text, start, end).with_origin(origin)
        })
        .collect()
}

/// The naive baseline: IOC scanner + exact gazetteer lookup. No model, no
/// generalisation to unlisted names.
pub struct RegexNerBaseline {
    pub matcher: IocMatcher,
    pub tagger: PosTagger,
    gazetteers: Vec<(EntityKind, Gazetteer)>,
    pub ontology: Ontology,
}

impl RegexNerBaseline {
    /// Build from `(kind, names)` gazetteer lists.
    pub fn new(lists: Vec<(EntityKind, Vec<String>)>) -> Self {
        let gazetteers = lists
            .into_iter()
            .map(|(kind, names)| (kind, Gazetteer::new(kind.label(), names)))
            .collect();
        RegexNerBaseline {
            matcher: IocMatcher::standard(),
            tagger: PosTagger::standard(),
            gazetteers,
            ontology: Ontology::standard(),
        }
    }

    /// Run baseline NER + the same relation extractor.
    pub fn extract(&self, text: &str) -> Vec<SentenceExtraction> {
        analyze(text, &self.matcher, &self.tagger)
            .into_iter()
            .map(|sentence| {
                let lower: Vec<String> = sentence
                    .tokens
                    .iter()
                    .map(|t| t.text.to_lowercase())
                    .collect();
                let mut covered = vec![false; sentence.tokens.len()];
                let mut spans: Vec<EntitySpan> = Vec::new();
                for (kind, gaz) in &self.gazetteers {
                    let flags = gaz.match_tokens(&lower);
                    let mut i = 0;
                    while i < flags.len() {
                        if flags[i].1 && !covered[i] {
                            let start = i;
                            let mut end = i + 1;
                            while end < flags.len() && flags[end].0 && !flags[end].1 {
                                end += 1;
                            }
                            if !covered[start..end].iter().any(|&c| c) {
                                spans.push(EntitySpan {
                                    kind: *kind,
                                    start,
                                    end,
                                });
                                covered[start..end].iter_mut().for_each(|c| *c = true);
                            }
                            i = end;
                        } else {
                            i += 1;
                        }
                    }
                }
                for (i, tok) in sentence.tokens.iter().enumerate() {
                    if let TokenKind::Ioc(kind) = tok.kind {
                        if !covered[i] {
                            spans.push(EntitySpan {
                                kind,
                                start: i,
                                end: i + 1,
                            });
                            covered[i] = true;
                        }
                    }
                }
                spans.sort_by_key(|s| (s.start, s.end));
                let relations = extract_relations(&sentence, &spans, &self.ontology);
                SentenceExtraction {
                    sentence,
                    spans,
                    relations,
                }
            })
            .collect()
    }

    /// Flatten into byte-offset mentions.
    pub fn mentions(&self, text: &str) -> Vec<EntityMention> {
        self.extract(text)
            .into_iter()
            .flat_map(|se| sentence_mentions(&se))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crf::{Crf, CrfConfig, Example};
    use crate::features::{FeatureConfig, FeatureMap};
    use crate::label::LabelSet;

    fn trained_pipeline() -> NerPipeline {
        let labels = LabelSet::standard();
        let featurizer = Featurizer::new(FeatureConfig::default());
        let mut map = FeatureMap::default();
        let matcher = IocMatcher::standard();
        let tagger = PosTagger::standard();
        let mut examples = Vec::new();
        type Row = (&'static str, Vec<(EntityKind, usize, usize)>);
        let data: Vec<Row> = vec![
            (
                "the zarbot ransomware spread fast.",
                vec![(EntityKind::Malware, 1, 2)],
            ),
            (
                "the vexbot ransomware returned today.",
                vec![(EntityKind::Malware, 1, 2)],
            ),
            ("nothing suspicious happened yesterday.", vec![]),
        ];
        for (text, spans) in data {
            let sent = analyze(text, &matcher, &tagger).remove(0);
            let feats = featurizer.features_interned(&sent, &mut map);
            let gold = labels.encode_spans(sent.tokens.len(), &spans);
            examples.push(Example {
                features: feats,
                labels: gold,
            });
        }
        let crf = Crf::train(labels, map, &examples, &CrfConfig::default());
        NerPipeline::new(crf, featurizer)
    }

    #[test]
    fn pipeline_emits_byte_offset_mentions() {
        let p = trained_pipeline();
        let text = "the krobot ransomware dropped stage2.exe yesterday.";
        let mentions = p.mentions(text);
        let mal = mentions
            .iter()
            .find(|m| m.kind == EntityKind::Malware)
            .expect("malware");
        assert_eq!(&text[mal.start..mal.end], "krobot");
        let file = mentions
            .iter()
            .find(|m| m.kind == EntityKind::FileName)
            .expect("file");
        assert_eq!(&text[file.start..file.end], "stage2.exe");
        assert_eq!(file.origin, MentionOrigin::Regex);
    }

    #[test]
    fn ioc_scanner_overrides_missed_tokens() {
        let p = trained_pipeline();
        // The CRF never saw registry keys in training; the scanner supplies
        // the span anyway.
        let text = "persistence used HKLM\\Software\\Run\\Evil throughout.";
        let mentions = p.mentions(text);
        assert!(
            mentions.iter().any(|m| m.kind == EntityKind::RegistryKey),
            "{mentions:?}"
        );
    }

    #[test]
    fn baseline_finds_listed_but_not_unlisted() {
        let baseline =
            RegexNerBaseline::new(vec![(EntityKind::Malware, vec!["zarbot".to_owned()])]);
        let listed = baseline.mentions("the zarbot ransomware spread.");
        assert!(listed
            .iter()
            .any(|m| m.kind == EntityKind::Malware && m.text == "zarbot"));
        // Unlisted name with identical context: baseline misses it.
        let unlisted = baseline.mentions("the krobot ransomware spread.");
        assert!(
            !unlisted.iter().any(|m| m.kind == EntityKind::Malware),
            "{unlisted:?}"
        );
        // But the IOC scanner still fires.
        let ioc = baseline.mentions("it dropped stage2.exe here.");
        assert!(ioc.iter().any(|m| m.kind == EntityKind::FileName));
    }

    #[test]
    fn marginals_are_probabilities_and_gate_spans() {
        let mut p = trained_pipeline();
        let text = "the zarbot ransomware spread fast.";
        let sentence = analyze(text, &p.matcher, &p.tagger).remove(0);
        let feats = p.featurizer.features_lookup(&sentence, p.crf.feature_map());
        let (path, marginals) = p.crf.decode_with_marginals(&feats);
        assert_eq!(path.len(), marginals.len());
        for &m in &marginals {
            assert!((0.0..=1.0).contains(&m), "{m}");
        }
        // A trained model is confident on its training pattern.
        let mal_pos = 1; // "zarbot"
        assert!(marginals[mal_pos] > 0.8, "{}", marginals[mal_pos]);
        // An impossible threshold suppresses every non-IOC span.
        p.min_confidence = 1.1;
        let out = p.extract(text);
        assert!(
            out[0].spans.iter().all(|s| s.kind.is_ioc()),
            "{:?}",
            out[0].spans
        );
    }

    #[test]
    fn pipeline_extracts_relations_end_to_end() {
        let p = trained_pipeline();
        let out = p.extract("the zarbot ransomware dropped stage2.exe quickly.");
        let rels: Vec<_> = out.iter().flat_map(|se| se.relations.clone()).collect();
        assert!(
            rels.iter()
                .any(|r| r.kind == kg_ontology::RelationKind::Drop),
            "{rels:?}"
        );
    }
}
