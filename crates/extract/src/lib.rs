//! Security knowledge extraction (paper §2.4).
//!
//! The source-independent extractors: given report text, produce entity and
//! relation mentions for the unified CTI representation.
//!
//! - [`label`] — the BIO label space over ontology entity kinds.
//! - [`features`] — feature templates for the sequence models (word shape,
//!   lemma, POS, affixes, IOC class, gazetteers, embedding clusters).
//! - [`crf`] — a linear-chain Conditional Random Field trained by SGD on the
//!   log-likelihood, decoded with Viterbi (the paper's model choice).
//! - [`perceptron`] — an averaged structured perceptron trainer over the same
//!   features (ablation baseline).
//! - [`labeling`] — data programming: labeling functions over curated lists
//!   plus a generative label model fit by EM, used to synthesise training
//!   annotations programmatically (Ratner et al., as cited by the paper).
//! - [`ner`] — the full NER pipeline (IOC scanner + sequence model) and the
//!   regex/gazetteer baseline the paper claims to outperform.
//! - [`relation`] — shallow-parse SVO relation extraction between recognised
//!   entities, with passive-voice inversion and coordination handling.
//! - [`metrics`] — precision / recall / F1 for spans and relations.

pub mod crf;
pub mod features;
pub mod label;
pub mod labeling;
pub mod metrics;
pub mod ner;
pub mod perceptron;
pub mod relation;

pub use crf::{Crf, CrfConfig};
pub use features::{FeatureConfig, Featurizer};
pub use label::{LabelId, LabelSet};
pub use labeling::{LabelModel, LabelingFunction, Lf};
pub use metrics::{Prf, SpanMatch};
pub use ner::{NerPipeline, RegexNerBaseline};
pub use relation::{extract_relations, ExtractedRelation};
