//! Feature templates for the sequence models.
//!
//! The paper trains its CRF with "features such as word lemmas, pos tags, and
//! word embeddings". The featurizer emits, per token:
//!
//! - lexical: lowercase word, lemma, prefixes/suffixes, word shape;
//! - syntactic: POS tag, previous/next word and POS (window ±2);
//! - security: the IOC class of protected tokens;
//! - distributional: the k-means cluster id of the word's embedding
//!   (the discrete stand-in for raw embedding vectors);
//! - knowledge: gazetteer membership flags from the curated lists.
//!
//! Features are interned into dense `u32` ids by [`FeatureMap`]; unseen
//! features at decode time are ignored (standard for linear models).

use kg_nlp::{AnalyzedSentence, KMeans, TokenKind};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Which feature families to emit (ablation switches for E3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureConfig {
    pub lexical: bool,
    pub affixes: bool,
    pub shape: bool,
    pub pos: bool,
    pub lemma: bool,
    pub context: bool,
    pub ioc_class: bool,
    pub clusters: bool,
    pub gazetteers: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            lexical: true,
            affixes: true,
            shape: true,
            pos: true,
            lemma: true,
            context: true,
            ioc_class: true,
            clusters: true,
            gazetteers: true,
        }
    }
}

/// A gazetteer: a named set of (possibly multi-word) entries, matched over
/// lowercase token windows.
///
/// Matching is hash-probed: each entry's word sequence is fingerprinted once
/// at build time, and `match_tokens` extends a rolling window fingerprint by
/// one precomputed word hash per step — so the inner window loop does no
/// heap allocation and no per-character string hashing. A fingerprint hit is
/// verified against the real entry set before it counts, so hash collisions
/// cannot produce false matches.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Gazetteer {
    pub name: String,
    /// Entries, each pre-split into lowercase words.
    entries: HashSet<Vec<String>>,
    max_len: usize,
    /// Fingerprints of `entries` (combined per-word FNV hashes). Rebuilt on
    /// demand after deserialisation, which skips this field.
    #[serde(skip)]
    entry_hashes: HashSet<u64>,
}

/// Fingerprint of one word sequence: order-sensitive combination of the
/// per-word FNV-1a hashes.
fn words_fingerprint<'a>(words: impl IntoIterator<Item = &'a String>) -> u64 {
    kg_ir::combine_hashes(words.into_iter().map(|w| kg_ir::fnv1a64(w.as_bytes())))
}

impl Gazetteer {
    /// Build from entry strings.
    pub fn new(name: &str, entries: impl IntoIterator<Item = String>) -> Self {
        let entries: HashSet<Vec<String>> = entries
            .into_iter()
            .map(|e| {
                e.to_lowercase()
                    .split_whitespace()
                    .map(str::to_owned)
                    .collect()
            })
            .filter(|v: &Vec<String>| !v.is_empty())
            .collect();
        let max_len = entries.iter().map(Vec::len).max().unwrap_or(0);
        let entry_hashes = entries.iter().map(words_fingerprint).collect();
        Gazetteer {
            name: name.to_owned(),
            entries,
            max_len,
            entry_hashes,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the gazetteer has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mark tokens covered by any entry: returns per-token `(covered,
    /// begins)` flags. The longest entry starting at each token wins, as
    /// before; only the probing strategy changed.
    pub fn match_tokens(&self, lower_words: &[String]) -> Vec<(bool, bool)> {
        let mut flags = vec![(false, false); lower_words.len()];
        if self.is_empty() {
            return flags;
        }
        if self.entry_hashes.len() != self.entries.len() {
            // Deserialized without fingerprints: direct set probes.
            return self.match_tokens_direct(lower_words, flags);
        }
        let word_hashes: Vec<u64> = lower_words
            .iter()
            .map(|w| kg_ir::fnv1a64(w.as_bytes()))
            .collect();
        for start in 0..lower_words.len() {
            let upper = self.max_len.min(lower_words.len() - start);
            // `fnv1a64(&[])` is the FNV offset basis, so extending it per
            // word hash reproduces `words_fingerprint` incrementally.
            let mut h = kg_ir::fnv1a64(&[]);
            let mut best = None;
            for len in 1..=upper {
                h = kg_ir::fnv1a64_extend(h, &word_hashes[start + len - 1].to_le_bytes());
                if self.entry_hashes.contains(&h)
                    && self.entries.contains(&lower_words[start..start + len])
                {
                    best = Some(len);
                }
            }
            if let Some(len) = best {
                flags[start].1 = true;
                for f in &mut flags[start..start + len] {
                    f.0 = true;
                }
            }
        }
        flags
    }

    /// Fallback matcher probing the entry set with borrowed windows.
    fn match_tokens_direct(
        &self,
        lower_words: &[String],
        mut flags: Vec<(bool, bool)>,
    ) -> Vec<(bool, bool)> {
        for start in 0..lower_words.len() {
            for len in (1..=self.max_len.min(lower_words.len() - start)).rev() {
                let window = &lower_words[start..start + len];
                if self.entries.contains(window) {
                    flags[start].1 = true;
                    for f in &mut flags[start..start + len] {
                        f.0 = true;
                    }
                    break;
                }
            }
        }
        flags
    }

    /// Rebuild the entry fingerprints (after deserialisation, which skips
    /// them). Matching works without this, just slower.
    pub fn rebuild_fingerprints(&mut self) {
        self.entry_hashes = self.entries.iter().map(words_fingerprint).collect();
    }
}

/// Interns feature strings to dense ids. Growable during training, frozen at
/// decode (lookups only).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FeatureMap {
    index: HashMap<String, u32>,
}

impl FeatureMap {
    /// Intern a feature, allocating an id if new.
    pub fn intern(&mut self, feature: &str) -> u32 {
        if let Some(&id) = self.index.get(feature) {
            return id;
        }
        let id = self.index.len() as u32;
        self.index.insert(feature.to_owned(), id);
        id
    }

    /// Look up without allocating.
    pub fn get(&self, feature: &str) -> Option<u32> {
        self.index.get(feature).copied()
    }

    /// Number of interned features.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no features are interned.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

/// The featurizer: config + optional cluster model + gazetteers.
#[derive(Debug, Clone, Default)]
pub struct Featurizer {
    pub config: FeatureConfig,
    pub clusters: Option<KMeans>,
    pub gazetteers: Vec<Gazetteer>,
}

impl Featurizer {
    /// A featurizer with the default config and no external resources.
    pub fn new(config: FeatureConfig) -> Self {
        Featurizer {
            config,
            clusters: None,
            gazetteers: Vec::new(),
        }
    }

    /// Emit feature strings for every position of a sentence.
    pub fn features(&self, sentence: &AnalyzedSentence) -> Vec<Vec<String>> {
        let n = sentence.tokens.len();
        let lower: Vec<String> = sentence
            .tokens
            .iter()
            .map(|t| t.text.to_lowercase())
            .collect();
        let gaz_flags: Vec<(String, Vec<(bool, bool)>)> = if self.config.gazetteers {
            self.gazetteers
                .iter()
                .map(|g| (g.name.clone(), g.match_tokens(&lower)))
                .collect()
        } else {
            Vec::new()
        };

        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut feats = Vec::with_capacity(24);
            let token = &sentence.tokens[i];
            let word = &lower[i];
            feats.push("bias".to_owned());

            if self.config.lexical {
                feats.push(format!("w={word}"));
            }
            if self.config.lemma {
                feats.push(format!("lem={}", sentence.lemmas[i]));
            }
            if self.config.pos {
                feats.push(format!("pos={}", sentence.tags[i].as_str()));
            }
            if self.config.shape {
                feats.push(format!("shape={}", shape(&token.text)));
                if i == 0 {
                    feats.push("bos".to_owned());
                }
                if i + 1 == n {
                    feats.push("eos".to_owned());
                }
            }
            if self.config.affixes && token.kind == TokenKind::Word {
                let chars: Vec<char> = word.chars().collect();
                for l in 2..=3 {
                    if chars.len() > l {
                        let p: String = chars[..l].iter().collect();
                        let s: String = chars[chars.len() - l..].iter().collect();
                        feats.push(format!("pre{l}={p}"));
                        feats.push(format!("suf{l}={s}"));
                    }
                }
            }
            if self.config.ioc_class {
                if let TokenKind::Ioc(kind) = token.kind {
                    feats.push(format!("ioc={}", kind.tag_stem()));
                }
            }
            if self.config.context {
                for (name, j) in [
                    ("p1", i.checked_sub(1)),
                    ("p2", i.checked_sub(2)),
                    ("n1", (i + 1 < n).then_some(i + 1)),
                    ("n2", (i + 2 < n).then_some(i + 2)),
                ] {
                    match j {
                        Some(j) => {
                            feats.push(format!("{name}w={}", lower[j]));
                            feats.push(format!("{name}pos={}", sentence.tags[j].as_str()));
                        }
                        None => feats.push(format!("{name}=∅")),
                    }
                }
            }
            if self.config.clusters {
                if let Some(km) = &self.clusters {
                    if let Some(c) = km.cluster_of(word) {
                        feats.push(format!("clu={c}"));
                    }
                }
            }
            for (name, flags) in &gaz_flags {
                if flags[i].0 {
                    feats.push(format!("gaz={name}"));
                    if flags[i].1 {
                        feats.push(format!("gazB={name}"));
                    }
                }
            }
            // POS tag bigram (cheap syntax signal).
            if self.config.pos && i > 0 {
                feats.push(format!(
                    "posbi={}|{}",
                    sentence.tags[i - 1].as_str(),
                    sentence.tags[i].as_str()
                ));
            }
            out.push(feats);
        }
        out
    }

    /// Emit and intern features; used during training.
    pub fn features_interned(
        &self,
        sentence: &AnalyzedSentence,
        map: &mut FeatureMap,
    ) -> Vec<Vec<u32>> {
        self.features(sentence)
            .into_iter()
            .map(|fs| fs.iter().map(|f| map.intern(f)).collect())
            .collect()
    }

    /// Emit and look up features; used at decode time (unknown → dropped).
    pub fn features_lookup(&self, sentence: &AnalyzedSentence, map: &FeatureMap) -> Vec<Vec<u32>> {
        self.features(sentence)
            .into_iter()
            .map(|fs| fs.iter().filter_map(|f| map.get(f)).collect())
            .collect()
    }
}

/// Word shape: letters → `x`/`X`, digits → `d`, runs collapsed.
/// "WannaCry" → "Xx", "CVE-2017-0144" → "X-d-d", "10.0.0.1" → "d.d.d.d".
pub fn shape(word: &str) -> String {
    let mut out = String::new();
    let mut last = '\0';
    for c in word.chars() {
        let s = if c.is_ascii_digit() {
            'd'
        } else if c.is_uppercase() {
            'X'
        } else if c.is_alphabetic() {
            'x'
        } else {
            c
        };
        if s != last || !(s == 'x' || s == 'X' || s == 'd') {
            out.push(s);
            last = s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_nlp::{analyze, IocMatcher, PosTagger};

    fn sentence(text: &str) -> AnalyzedSentence {
        analyze(text, &IocMatcher::standard(), &PosTagger::standard())
            .into_iter()
            .next()
            .unwrap()
    }

    #[test]
    fn shapes() {
        assert_eq!(shape("WannaCry"), "XxXx");
        assert_eq!(shape("CVE-2017-0144"), "X-d-d");
        assert_eq!(shape("10.0.0.1"), "d.d.d.d");
        assert_eq!(shape("emotet"), "x");
    }

    #[test]
    fn features_cover_families() {
        let f = Featurizer::new(FeatureConfig::default());
        let s = sentence("wannacry dropped tasksche.exe quickly.");
        let feats = f.features(&s);
        assert_eq!(feats.len(), s.tokens.len());
        let first = &feats[0];
        assert!(first.iter().any(|x| x == "w=wannacry"));
        assert!(first.iter().any(|x| x == "bos"));
        assert!(first.iter().any(|x| x.starts_with("suf3=")));
        // The IOC token carries its class feature.
        let ioc_pos = s.tokens.iter().position(|t| t.is_ioc()).unwrap();
        assert!(feats[ioc_pos].iter().any(|x| x == "ioc=FIL"));
    }

    #[test]
    fn ablation_switches_remove_families() {
        let cfg = FeatureConfig {
            context: false,
            affixes: false,
            ..FeatureConfig::default()
        };
        let f = Featurizer::new(cfg);
        let feats = f.features(&sentence("emotet spreads fast."));
        for fs in &feats {
            assert!(!fs.iter().any(|x| x.starts_with("p1w=")));
            assert!(!fs.iter().any(|x| x.starts_with("suf")));
        }
    }

    #[test]
    fn gazetteer_multiword_match() {
        let g = Gazetteer::new("actor", ["Lazarus Group".to_owned(), "turla".to_owned()]);
        let lower = ["the", "lazarus", "group", "struck"].map(str::to_owned);
        let flags = g.match_tokens(&lower);
        assert_eq!(flags[0], (false, false));
        assert_eq!(flags[1], (true, true));
        assert_eq!(flags[2], (true, false));
        assert_eq!(flags[3], (false, false));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn gazetteer_hash_probe_matches_direct_probe() {
        let g = Gazetteer::new(
            "mixed",
            [
                "Lazarus Group".to_owned(),
                "lazarus group bd".to_owned(),
                "turla".to_owned(),
                "cozy bear".to_owned(),
            ],
        );
        // A deserialized gazetteer loses its fingerprints and takes the
        // direct-probe path; both paths must agree flag-for-flag (including
        // preferring the longest match at a start position).
        let json = serde_json::to_string(&g).unwrap();
        let stripped: Gazetteer = serde_json::from_str(&json).unwrap();
        let sentences: &[&[&str]] = &[
            &["the", "lazarus", "group", "bd", "struck"],
            &["lazarus", "group"],
            &["cozy", "bear", "and", "turla"],
            &["nothing", "here"],
            &[],
        ];
        for words in sentences {
            let lower: Vec<String> = words.iter().map(|w| (*w).to_owned()).collect();
            assert_eq!(
                g.match_tokens(&lower),
                stripped.match_tokens(&lower),
                "{words:?}"
            );
        }
        // Rebuilding fingerprints restores the fast path with equal results.
        let mut rebuilt = stripped.clone();
        rebuilt.rebuild_fingerprints();
        let lower: Vec<String> = ["lazarus", "group", "bd"].map(str::to_owned).into();
        assert_eq!(g.match_tokens(&lower), rebuilt.match_tokens(&lower));
    }

    #[test]
    fn feature_map_interns_stably() {
        let mut m = FeatureMap::default();
        let a = m.intern("w=x");
        let b = m.intern("w=y");
        assert_ne!(a, b);
        assert_eq!(m.intern("w=x"), a);
        assert_eq!(m.get("w=x"), Some(a));
        assert_eq!(m.get("w=z"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn gazetteer_features_appear() {
        let mut f = Featurizer::new(FeatureConfig::default());
        f.gazetteers
            .push(Gazetteer::new("mal", ["emotet".to_owned()]));
        let feats = f.features(&sentence("the emotet malware returned."));
        let pos = 1; // "emotet"
        assert!(feats[pos].iter().any(|x| x == "gaz=mal"));
        assert!(feats[pos].iter().any(|x| x == "gazB=mal"));
    }
}
