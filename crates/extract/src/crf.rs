//! Linear-chain Conditional Random Field (Lafferty, McCallum, Pereira —
//! the paper's reference \[10\]).
//!
//! Score of a label sequence `y` for features `x`:
//! `Σ_t  W[x_t]·y_t  +  T[y_{t-1}, y_t]`.
//! Training maximises conditional log-likelihood by stochastic gradient
//! ascent with AdaGrad per-coordinate step sizes; the gradient's expected
//! feature counts come from forward–backward marginals computed in log
//! space. Decoding is Viterbi, hard-constrained to well-formed BIO
//! transitions.

use crate::features::{FeatureMap, Featurizer};
use crate::label::{LabelId, LabelSet};
use kg_nlp::AnalyzedSentence;
use serde::{Deserialize, Serialize};

/// CRF training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrfConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Base learning rate (AdaGrad scales it per coordinate).
    pub lr: f64,
    /// L2 regularisation strength (applied as weight shrinkage per epoch).
    pub l2: f64,
    /// Shuffle seed for sentence order.
    pub seed: u64,
}

impl Default for CrfConfig {
    fn default() -> Self {
        CrfConfig {
            epochs: 8,
            lr: 0.25,
            l2: 1e-5,
            seed: 0x1234,
        }
    }
}

/// A trained linear-chain CRF.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Crf {
    labels: LabelSet,
    features: FeatureMap,
    /// Emission weights, row-major `n_features × n_labels`.
    emit: Vec<f64>,
    /// Transition weights, row-major `n_labels × n_labels`.
    trans: Vec<f64>,
    n_labels: usize,
}

/// One training example: interned features per token + gold labels.
#[derive(Debug, Clone)]
pub struct Example {
    pub features: Vec<Vec<u32>>,
    pub labels: Vec<LabelId>,
}

/// Reusable per-sentence buffers for [`Crf::sgd_step`]. Allocated once per
/// training run and resized (never reallocated, after the longest sentence)
/// for each example, instead of four fresh `Vec`s per sentence per epoch.
#[derive(Default)]
struct SgdScratch {
    /// Emission scores, `t_len × n_labels`.
    scores: Vec<f64>,
    /// Forward log-messages, `t_len × n_labels`.
    alpha: Vec<f64>,
    /// Backward log-messages, `t_len × n_labels`.
    beta: Vec<f64>,
    /// One row of incoming terms for `logsumexp`, `n_labels`.
    buf: Vec<f64>,
}

impl SgdScratch {
    /// Size the buffers for a sentence of `t_len` tokens, refilling the
    /// initial values `sgd_step` assumes (zeros / `-inf`).
    fn reset(&mut self, t_len: usize, n_labels: usize) {
        self.scores.clear();
        self.scores.resize(t_len * n_labels, 0.0);
        self.alpha.clear();
        self.alpha.resize(t_len * n_labels, f64::NEG_INFINITY);
        self.beta.clear();
        self.beta.resize(t_len * n_labels, 0.0);
        self.buf.clear();
        self.buf.resize(n_labels, 0.0);
    }
}

fn logsumexp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

impl Crf {
    /// Train a CRF on examples produced by `featurizer` over `map`.
    ///
    /// `map` must contain every feature id referenced by `examples` (i.e. be
    /// the map used to intern them).
    pub fn train(
        labels: LabelSet,
        map: FeatureMap,
        examples: &[Example],
        config: &CrfConfig,
    ) -> Self {
        let n_labels = labels.len();
        let n_features = map.len();
        let mut emit = vec![0f64; n_features * n_labels];
        let mut trans = vec![0f64; n_labels * n_labels];
        let mut emit_g2 = vec![1e-8f64; n_features * n_labels];
        let mut trans_g2 = vec![1e-8f64; n_labels * n_labels];

        // Deterministic shuffle order via splitmix.
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut state = config.seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };

        let mut scratch = SgdScratch::default();
        for _epoch in 0..config.epochs {
            // Fisher–Yates with the deterministic stream.
            for i in (1..order.len()).rev() {
                let j = (next() % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            for &ei in &order {
                let ex = &examples[ei];
                if ex.features.is_empty() {
                    continue;
                }
                Self::sgd_step(
                    ex,
                    n_labels,
                    &mut emit,
                    &mut trans,
                    &mut emit_g2,
                    &mut trans_g2,
                    config.lr,
                    &mut scratch,
                );
            }
            if config.l2 > 0.0 {
                let shrink = 1.0 - config.l2;
                emit.iter_mut().for_each(|w| *w *= shrink);
                trans.iter_mut().for_each(|w| *w *= shrink);
            }
        }

        Crf {
            labels,
            features: map,
            emit,
            trans,
            n_labels,
        }
    }

    /// One AdaGrad step on one sentence.
    #[allow(clippy::too_many_arguments)]
    fn sgd_step(
        ex: &Example,
        n_labels: usize,
        emit: &mut [f64],
        trans: &mut [f64],
        emit_g2: &mut [f64],
        trans_g2: &mut [f64],
        lr: f64,
        scratch: &mut SgdScratch,
    ) {
        let t_len = ex.features.len();
        scratch.reset(t_len, n_labels);
        let SgdScratch {
            scores,
            alpha,
            beta,
            buf,
        } = scratch;
        // Emission scores per position.
        for (t, feats) in ex.features.iter().enumerate() {
            for &f in feats {
                let row = f as usize * n_labels;
                for l in 0..n_labels {
                    scores[t * n_labels + l] += emit[row + l];
                }
            }
        }

        // Forward (log alpha).
        alpha[..n_labels].copy_from_slice(&scores[..n_labels]);
        for t in 1..t_len {
            for l in 0..n_labels {
                for (p, slot) in buf.iter_mut().enumerate() {
                    *slot = alpha[(t - 1) * n_labels + p] + trans[p * n_labels + l];
                }
                alpha[t * n_labels + l] = logsumexp(buf) + scores[t * n_labels + l];
            }
        }
        // Backward (log beta).
        for t in (0..t_len - 1).rev() {
            for l in 0..n_labels {
                for (q, slot) in buf.iter_mut().enumerate() {
                    *slot = trans[l * n_labels + q]
                        + scores[(t + 1) * n_labels + q]
                        + beta[(t + 1) * n_labels + q];
                }
                beta[t * n_labels + l] = logsumexp(buf);
            }
        }
        let log_z = logsumexp(&alpha[(t_len - 1) * n_labels..]);

        // Gradient = observed − expected; apply AdaGrad immediately.
        let upd_emit = |idx: usize, g: f64, emit: &mut [f64], g2: &mut [f64]| {
            g2[idx] += g * g;
            emit[idx] += lr * g / g2[idx].sqrt();
        };
        for t in 0..t_len {
            let gold = ex.labels[t] as usize;
            for &f in &ex.features[t] {
                let row = f as usize * n_labels;
                // Observed.
                upd_emit(row + gold, 1.0, emit, emit_g2);
                // Expected.
                for l in 0..n_labels {
                    let p = (alpha[t * n_labels + l] + beta[t * n_labels + l] - log_z).exp();
                    if p > 1e-8 {
                        upd_emit(row + l, -p, emit, emit_g2);
                    }
                }
            }
        }
        for t in 1..t_len {
            let gp = ex.labels[t - 1] as usize;
            let gc = ex.labels[t] as usize;
            let idx = gp * n_labels + gc;
            trans_g2[idx] += 1.0;
            trans[idx] += lr / trans_g2[idx].sqrt();
            for p in 0..n_labels {
                for q in 0..n_labels {
                    let lp = alpha[(t - 1) * n_labels + p]
                        + trans[p * n_labels + q]
                        + scores[t * n_labels + q]
                        + beta[t * n_labels + q]
                        - log_z;
                    let prob = lp.exp();
                    if prob > 1e-8 {
                        let idx = p * n_labels + q;
                        trans_g2[idx] += prob * prob;
                        trans[idx] -= lr * prob / trans_g2[idx].sqrt();
                    }
                }
            }
        }
    }

    /// Viterbi-decode a sentence into label ids, enforcing BIO validity.
    pub fn decode(&self, featurizer: &Featurizer, sentence: &AnalyzedSentence) -> Vec<LabelId> {
        let feats = featurizer.features_lookup(sentence, &self.features);
        self.decode_features(&feats)
    }

    /// Viterbi over pre-extracted feature ids.
    pub fn decode_features(&self, feats: &[Vec<u32>]) -> Vec<LabelId> {
        let t_len = feats.len();
        if t_len == 0 {
            return Vec::new();
        }
        let n = self.n_labels;
        let mut scores = vec![0f64; t_len * n];
        for (t, fs) in feats.iter().enumerate() {
            for &f in fs {
                let row = f as usize * n;
                for l in 0..n {
                    scores[t * n + l] += self.emit[row + l];
                }
            }
        }
        let mut delta = vec![f64::NEG_INFINITY; t_len * n];
        let mut back = vec![0usize; t_len * n];
        for l in 0..n {
            // At t=0 only non-inside labels are valid starts.
            if !self.labels.is_inside(l as LabelId) {
                delta[l] = scores[l];
            }
        }
        for t in 1..t_len {
            for l in 0..n {
                let mut best = f64::NEG_INFINITY;
                let mut arg = 0usize;
                for p in 0..n {
                    if !self.labels.may_follow(p as LabelId, l as LabelId) {
                        continue;
                    }
                    let v = delta[(t - 1) * n + p] + self.trans[p * n + l];
                    if v > best {
                        best = v;
                        arg = p;
                    }
                }
                delta[t * n + l] = best + scores[t * n + l];
                back[t * n + l] = arg;
            }
        }
        let mut last = (0..n)
            .max_by(|&a, &b| {
                delta[(t_len - 1) * n + a]
                    .partial_cmp(&delta[(t_len - 1) * n + b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0);
        let mut path = vec![0 as LabelId; t_len];
        for t in (0..t_len).rev() {
            path[t] = last as LabelId;
            if t > 0 {
                last = back[t * n + last];
            }
        }
        path
    }

    /// Viterbi decode plus per-token posterior marginals of the decoded
    /// labels, `P(y_t = ŷ_t | x)`, from forward–backward. The marginal is
    /// the calibrated confidence the NER layer attaches to each mention.
    pub fn decode_with_marginals(&self, feats: &[Vec<u32>]) -> (Vec<LabelId>, Vec<f64>) {
        let path = self.decode_features(feats);
        let t_len = feats.len();
        if t_len == 0 {
            return (path, Vec::new());
        }
        let n = self.n_labels;
        let mut scores = vec![0f64; t_len * n];
        for (t, fs) in feats.iter().enumerate() {
            for &f in fs {
                let row = f as usize * n;
                for l in 0..n {
                    scores[t * n + l] += self.emit[row + l];
                }
            }
        }
        let mut alpha = vec![f64::NEG_INFINITY; t_len * n];
        alpha[..n].copy_from_slice(&scores[..n]);
        let mut buf = vec![0f64; n];
        for t in 1..t_len {
            for l in 0..n {
                for (p, slot) in buf.iter_mut().enumerate() {
                    *slot = alpha[(t - 1) * n + p] + self.trans[p * n + l];
                }
                alpha[t * n + l] = logsumexp(&buf) + scores[t * n + l];
            }
        }
        let mut beta = vec![0f64; t_len * n];
        for t in (0..t_len - 1).rev() {
            for l in 0..n {
                for (q, slot) in buf.iter_mut().enumerate() {
                    *slot = self.trans[l * n + q] + scores[(t + 1) * n + q] + beta[(t + 1) * n + q];
                }
                beta[t * n + l] = logsumexp(&buf);
            }
        }
        let log_z = logsumexp(&alpha[(t_len - 1) * n..]);
        let marginals = path
            .iter()
            .enumerate()
            .map(|(t, &l)| {
                (alpha[t * n + l as usize] + beta[t * n + l as usize] - log_z)
                    .exp()
                    .clamp(0.0, 1.0)
            })
            .collect();
        (path, marginals)
    }

    /// The label set this model predicts over.
    pub fn labels(&self) -> &LabelSet {
        &self.labels
    }

    /// The feature map the model was trained with.
    pub fn feature_map(&self) -> &FeatureMap {
        &self.features
    }

    /// Serialise the model to JSON bytes.
    pub fn to_bytes(&self) -> Result<Vec<u8>, serde_json::Error> {
        serde_json::to_vec(self)
    }

    /// Load a model from JSON bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        serde_json::from_slice(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureConfig;
    use kg_nlp::{analyze, IocMatcher, PosTagger};
    use kg_ontology::EntityKind;

    /// Tiny supervised task: learn that words after "the" ending in "-bot"
    /// are malware, and that "X group" bigrams are actors.
    fn toy_training() -> (LabelSet, FeatureMap, Vec<Example>, Featurizer) {
        let labels = LabelSet::standard();
        let featurizer = Featurizer::new(FeatureConfig::default());
        let mut map = FeatureMap::default();
        let matcher = IocMatcher::standard();
        let tagger = PosTagger::standard();
        let mut examples = Vec::new();
        type Row = (&'static str, Vec<(EntityKind, usize, usize)>);
        let data: Vec<Row> = vec![
            (
                "the zarbot family spread fast.",
                vec![(EntityKind::Malware, 1, 2)],
            ),
            (
                "the vexbot family returned today.",
                vec![(EntityKind::Malware, 1, 2)],
            ),
            (
                "the krobot family evolved again.",
                vec![(EntityKind::Malware, 1, 2)],
            ),
            (
                "analysts watched lazarus group closely.",
                vec![(EntityKind::ThreatActor, 2, 4)],
            ),
            (
                "analysts watched sandworm group closely.",
                vec![(EntityKind::ThreatActor, 2, 4)],
            ),
            ("nothing suspicious happened yesterday.", vec![]),
            ("the campaign continued without pause.", vec![]),
        ];
        for (text, spans) in data {
            let sent = analyze(text, &matcher, &tagger).remove(0);
            let feats = featurizer.features_interned(&sent, &mut map);
            let gold = labels.encode_spans(sent.tokens.len(), &spans);
            examples.push(Example {
                features: feats,
                labels: gold,
            });
        }
        (labels, map, examples, featurizer)
    }

    #[test]
    fn learns_training_data() {
        let (labels, map, examples, featurizer) = toy_training();
        let crf = Crf::train(labels, map, &examples, &CrfConfig::default());
        let matcher = IocMatcher::standard();
        let tagger = PosTagger::standard();
        let sent = analyze("the zarbot family spread fast.", &matcher, &tagger).remove(0);
        let decoded = crf.decode(&featurizer, &sent);
        let spans = crf.labels().decode_spans(&decoded);
        assert_eq!(spans, vec![(EntityKind::Malware, 1, 2)]);
    }

    #[test]
    fn generalises_to_unseen_names_via_context_and_affixes() {
        let (labels, map, examples, featurizer) = toy_training();
        let crf = Crf::train(labels, map, &examples, &CrfConfig::default());
        let matcher = IocMatcher::standard();
        let tagger = PosTagger::standard();
        // "lumbot" never appears in training; suffix + context should carry.
        let sent = analyze("the lumbot family spread fast.", &matcher, &tagger).remove(0);
        let spans = crf.labels().decode_spans(&crf.decode(&featurizer, &sent));
        assert_eq!(spans, vec![(EntityKind::Malware, 1, 2)]);
    }

    #[test]
    fn empty_sentence_decodes_empty() {
        let (labels, map, examples, _featurizer) = toy_training();
        let crf = Crf::train(labels, map, &examples, &CrfConfig::default());
        assert!(crf.decode_features(&[]).is_empty());
    }

    #[test]
    fn decode_never_starts_with_inside_label() {
        let (labels, map, examples, featurizer) = toy_training();
        let crf = Crf::train(labels, map, &examples, &CrfConfig::default());
        let matcher = IocMatcher::standard();
        let tagger = PosTagger::standard();
        for text in ["group group group.", "zarbot.", "the the the."] {
            let sent = analyze(text, &matcher, &tagger).remove(0);
            let path = crf.decode(&featurizer, &sent);
            assert!(!crf.labels().is_inside(path[0]), "{text}: {path:?}");
            for w in path.windows(2) {
                assert!(crf.labels().may_follow(w[0], w[1]), "{text}: {path:?}");
            }
        }
    }

    #[test]
    fn training_is_deterministic() {
        let (labels, map, examples, featurizer) = toy_training();
        let a = Crf::train(labels, map, &examples, &CrfConfig::default());
        let (labels2, map2, examples2, _) = toy_training();
        let b = Crf::train(labels2, map2, &examples2, &CrfConfig::default());
        let matcher = IocMatcher::standard();
        let tagger = PosTagger::standard();
        let sent = analyze("the vexbot family returned today.", &matcher, &tagger).remove(0);
        assert_eq!(a.decode(&featurizer, &sent), b.decode(&featurizer, &sent));
    }

    #[test]
    fn serde_round_trip_preserves_decisions() {
        let (labels, map, examples, featurizer) = toy_training();
        let crf = Crf::train(labels, map, &examples, &CrfConfig::default());
        let bytes = crf.to_bytes().unwrap();
        let back = Crf::from_bytes(&bytes).unwrap();
        let matcher = IocMatcher::standard();
        let tagger = PosTagger::standard();
        let sent = analyze("the krobot family evolved again.", &matcher, &tagger).remove(0);
        assert_eq!(
            crf.decode(&featurizer, &sent),
            back.decode(&featurizer, &sent)
        );
    }
}
