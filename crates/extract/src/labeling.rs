//! Data programming (Ratner et al., the paper's reference \[11\]): synthesise
//! NER training labels from *labeling functions* instead of manual
//! annotation.
//!
//! Labeling functions vote per token (or abstain). The built-in set mirrors
//! the paper: gazetteer LFs over curated entity lists ("constructed from
//! MITRE ATT&CK"), the IOC scanner, and contextual/morphological cues. A
//! generative [`LabelModel`] learns each LF's accuracy with EM (assuming
//! conditionally independent LFs, the classic Snorkel simplification) and
//! emits denoised per-token labels, which then train the CRF.

use crate::features::Gazetteer;
use crate::label::{LabelId, LabelSet};
use kg_nlp::{AnalyzedSentence, TokenKind};
use kg_ontology::EntityKind;

/// A labeling function: votes a label per token, or abstains.
pub trait LabelingFunction: Send + Sync {
    /// Stable name for diagnostics and learned-accuracy reporting.
    fn name(&self) -> &str;
    /// Per-token votes for one sentence (`None` = abstain).
    fn vote(&self, sentence: &AnalyzedSentence, labels: &LabelSet) -> Vec<Option<LabelId>>;
}

/// The built-in labeling functions.
pub enum Lf {
    /// Multi-word gazetteer match → B/I votes for `kind`.
    Gazetteer {
        label: String,
        gazetteer: Gazetteer,
        kind: EntityKind,
    },
    /// Protected IOC tokens vote their scanner kind.
    IocClass,
    /// An unknown word immediately *followed by* one of the cue words votes
    /// `kind` (e.g. "`<X>` ransomware" → malware).
    FollowedByCue {
        label: String,
        cues: Vec<&'static str>,
        kind: EntityKind,
    },
    /// An unknown word immediately *preceded by* one of the cue words votes
    /// `kind` (e.g. "actor `<X>`").
    PrecededByCue {
        label: String,
        cues: Vec<&'static str>,
        kind: EntityKind,
    },
    /// Lowercase words with a tell-tale suffix vote `kind` ("-bot", "-locker").
    Suffix {
        label: String,
        suffixes: Vec<&'static str>,
        kind: EntityKind,
    },
    /// `aptNN` tokens vote threat actor.
    AptPattern,
}

impl LabelingFunction for Lf {
    fn name(&self) -> &str {
        match self {
            Lf::Gazetteer { label, .. }
            | Lf::FollowedByCue { label, .. }
            | Lf::PrecededByCue { label, .. }
            | Lf::Suffix { label, .. } => label,
            Lf::IocClass => "ioc-class",
            Lf::AptPattern => "apt-pattern",
        }
    }

    fn vote(&self, sentence: &AnalyzedSentence, labels: &LabelSet) -> Vec<Option<LabelId>> {
        let n = sentence.tokens.len();
        let mut votes = vec![None; n];
        match self {
            Lf::Gazetteer {
                gazetteer, kind, ..
            } => {
                let lower: Vec<String> = sentence
                    .tokens
                    .iter()
                    .map(|t| t.text.to_lowercase())
                    .collect();
                let flags = gazetteer.match_tokens(&lower);
                for i in 0..n {
                    if flags[i].0 {
                        votes[i] = if flags[i].1 {
                            labels.begin(*kind)
                        } else {
                            labels.inside(*kind)
                        };
                    }
                }
            }
            Lf::IocClass => {
                for (i, t) in sentence.tokens.iter().enumerate() {
                    if let TokenKind::Ioc(kind) = t.kind {
                        votes[i] = labels.begin(kind);
                    }
                }
            }
            Lf::FollowedByCue { cues, kind, .. } => {
                for (i, vote) in votes.iter_mut().enumerate().take(n.saturating_sub(1)) {
                    let next = sentence.tokens[i + 1].text.to_lowercase();
                    if sentence.tokens[i].kind == TokenKind::Word && cues.contains(&next.as_str()) {
                        *vote = labels.begin(*kind);
                    }
                }
            }
            Lf::PrecededByCue { cues, kind, .. } => {
                for (i, vote) in votes.iter_mut().enumerate().skip(1) {
                    let prev = sentence.tokens[i - 1].text.to_lowercase();
                    if sentence.tokens[i].kind == TokenKind::Word && cues.contains(&prev.as_str()) {
                        *vote = labels.begin(*kind);
                    }
                }
            }
            Lf::Suffix { suffixes, kind, .. } => {
                for (i, t) in sentence.tokens.iter().enumerate() {
                    if t.kind != TokenKind::Word {
                        continue;
                    }
                    let w = t.text.to_lowercase();
                    if w.len() >= 6 && suffixes.iter().any(|s| w.ends_with(s)) {
                        votes[i] = labels.begin(*kind);
                    }
                }
            }
            Lf::AptPattern => {
                for (i, t) in sentence.tokens.iter().enumerate() {
                    let w = t.text.to_lowercase();
                    if let Some(digits) = w.strip_prefix("apt") {
                        if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                            votes[i] = labels.begin(EntityKind::ThreatActor);
                        }
                    }
                }
            }
        }
        votes
    }
}

/// Build the standard LF battery from curated entity-name lists.
pub fn standard_lfs(
    malware: Vec<String>,
    actors: Vec<String>,
    techniques: Vec<String>,
    tools: Vec<String>,
    software: Vec<String>,
) -> Vec<Lf> {
    vec![
        Lf::Gazetteer {
            label: "gaz-malware".into(),
            gazetteer: Gazetteer::new("malware", malware),
            kind: EntityKind::Malware,
        },
        Lf::Gazetteer {
            label: "gaz-actor".into(),
            gazetteer: Gazetteer::new("actor", actors),
            kind: EntityKind::ThreatActor,
        },
        Lf::Gazetteer {
            label: "gaz-technique".into(),
            gazetteer: Gazetteer::new("technique", techniques),
            kind: EntityKind::Technique,
        },
        Lf::Gazetteer {
            label: "gaz-tool".into(),
            gazetteer: Gazetteer::new("tool", tools),
            kind: EntityKind::Tool,
        },
        Lf::Gazetteer {
            label: "gaz-software".into(),
            gazetteer: Gazetteer::new("software", software),
            kind: EntityKind::Software,
        },
        Lf::IocClass,
        Lf::FollowedByCue {
            label: "cue-malware-head".into(),
            cues: vec![
                "ransomware",
                "malware",
                "trojan",
                "botnet",
                "worm",
                "family",
            ],
            kind: EntityKind::Malware,
        },
        Lf::PrecededByCue {
            label: "cue-actor-head".into(),
            cues: vec!["actor", "group"],
            kind: EntityKind::ThreatActor,
        },
        Lf::Suffix {
            label: "suffix-malware".into(),
            suffixes: vec![
                "bot", "locker", "crypt", "loader", "stealer", "rat", "worm", "miner",
            ],
            kind: EntityKind::Malware,
        },
        Lf::AptPattern,
    ]
}

/// The generative label model: learned per-LF accuracies + denoised labels.
#[derive(Debug, Clone)]
pub struct LabelModel {
    names: Vec<String>,
    accuracies: Vec<f64>,
}

impl LabelModel {
    /// Fit accuracies by EM over all voted tokens and return the denoised
    /// per-sentence label sequences (BIO-repaired).
    pub fn fit(
        lfs: &[Lf],
        sentences: &[AnalyzedSentence],
        labels: &LabelSet,
        em_iters: usize,
    ) -> (LabelModel, Vec<Vec<LabelId>>) {
        // Collect votes: per sentence, per token, Vec<(lf_idx, label)>.
        let all_votes: Vec<Vec<Vec<(usize, LabelId)>>> = sentences
            .iter()
            .map(|s| {
                let per_lf: Vec<Vec<Option<LabelId>>> =
                    lfs.iter().map(|lf| lf.vote(s, labels)).collect();
                (0..s.tokens.len())
                    .map(|t| {
                        per_lf
                            .iter()
                            .enumerate()
                            .filter_map(|(j, v)| v[t].map(|l| (j, l)))
                            .collect()
                    })
                    .collect()
            })
            .collect();

        let k = labels.len() as f64;
        let mut acc = vec![0.7f64; lfs.len()];
        for _ in 0..em_iters {
            let mut correct = vec![1e-6f64; lfs.len()];
            let mut total = vec![2e-6f64; lfs.len()];
            for sent_votes in &all_votes {
                for votes in sent_votes {
                    if votes.is_empty() {
                        continue;
                    }
                    let posterior = token_posterior(votes, &acc, labels, k);
                    for &(j, v) in votes {
                        let p_correct = posterior
                            .iter()
                            .find(|(y, _)| *y == v)
                            .map(|(_, p)| *p)
                            .unwrap_or(0.0);
                        correct[j] += p_correct;
                        total[j] += 1.0;
                    }
                }
            }
            for j in 0..acc.len() {
                acc[j] = (correct[j] / total[j]).clamp(0.05, 0.99);
            }
        }

        // Decode MAP labels.
        let mut out = Vec::with_capacity(sentences.len());
        for (s, sent_votes) in sentences.iter().zip(&all_votes) {
            let mut seq = vec![LabelSet::O; s.tokens.len()];
            for (t, votes) in sent_votes.iter().enumerate() {
                if votes.is_empty() {
                    continue;
                }
                let posterior = token_posterior(votes, &acc, labels, k);
                if let Some((y, p)) = posterior
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                {
                    if *y != LabelSet::O && *p > 0.5 {
                        seq[t] = *y;
                    }
                }
            }
            // BIO repair: round-trip through spans.
            let spans = labels.decode_spans(&seq);
            out.push(labels.encode_spans(seq.len(), &spans));
        }

        let model = LabelModel {
            names: lfs.iter().map(|l| l.name().to_owned()).collect(),
            accuracies: acc,
        };
        (model, out)
    }

    /// Simple majority vote (the ablation baseline for the label model).
    pub fn majority_vote(
        lfs: &[Lf],
        sentences: &[AnalyzedSentence],
        labels: &LabelSet,
    ) -> Vec<Vec<LabelId>> {
        sentences
            .iter()
            .map(|s| {
                let per_lf: Vec<Vec<Option<LabelId>>> =
                    lfs.iter().map(|lf| lf.vote(s, labels)).collect();
                let mut seq = vec![LabelSet::O; s.tokens.len()];
                for t in 0..s.tokens.len() {
                    let mut counts: std::collections::HashMap<LabelId, usize> =
                        std::collections::HashMap::new();
                    for v in &per_lf {
                        if let Some(l) = v[t] {
                            *counts.entry(l).or_insert(0) += 1;
                        }
                    }
                    if let Some((&l, _)) = counts
                        .iter()
                        .max_by_key(|(l, c)| (**c, std::cmp::Reverse(**l)))
                    {
                        seq[t] = l;
                    }
                }
                let spans = labels.decode_spans(&seq);
                labels.encode_spans(seq.len(), &spans)
            })
            .collect()
    }

    /// Learned accuracy per LF, aligned with [`LabelModel::names`].
    pub fn accuracies(&self) -> &[f64] {
        &self.accuracies
    }

    /// LF names.
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

/// Posterior over candidate labels for one token's votes, assuming
/// independent LFs with accuracy `acc[j]` and uniform error over the other
/// `k-1` labels. Candidates: each voted label plus `O`.
fn token_posterior(
    votes: &[(usize, LabelId)],
    acc: &[f64],
    _labels: &LabelSet,
    k: f64,
) -> Vec<(LabelId, f64)> {
    let mut candidates: Vec<LabelId> = votes.iter().map(|&(_, l)| l).collect();
    candidates.push(LabelSet::O);
    candidates.sort_unstable();
    candidates.dedup();
    let mut scored: Vec<(LabelId, f64)> = candidates
        .into_iter()
        .map(|y| {
            // Mild prior for O: unvoted tokens are overwhelmingly O, and LFs
            // do fire spuriously.
            let mut log_p: f64 = if y == LabelSet::O {
                (0.3f64).ln()
            } else {
                (0.7f64).ln()
            };
            for &(j, v) in votes {
                let a = acc[j];
                log_p += if v == y {
                    a.ln()
                } else {
                    ((1.0 - a) / (k - 1.0)).ln()
                };
            }
            (y, log_p)
        })
        .collect();
    let m = scored
        .iter()
        .map(|(_, p)| *p)
        .fold(f64::NEG_INFINITY, f64::max);
    let z: f64 = scored.iter().map(|(_, p)| (p - m).exp()).sum();
    for (_, p) in &mut scored {
        *p = (*p - m).exp() / z;
    }
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_nlp::{analyze, IocMatcher, PosTagger};

    fn sentences(texts: &[&str]) -> Vec<AnalyzedSentence> {
        let matcher = IocMatcher::standard();
        let tagger = PosTagger::standard();
        texts
            .iter()
            .flat_map(|t| analyze(t, &matcher, &tagger))
            .collect()
    }

    fn lfs() -> Vec<Lf> {
        standard_lfs(
            vec!["emotet".into(), "wannacry".into()],
            vec!["lazarus group".into()],
            vec!["credential dumping".into()],
            vec!["mimikatz".into()],
            vec!["windows".into()],
        )
    }

    #[test]
    fn gazetteer_and_ioc_votes() {
        let labels = LabelSet::standard();
        let lfs = lfs();
        let sents = sentences(&["emotet dropped invoice7.exe on windows."]);
        let (_, denoised) = LabelModel::fit(&lfs, &sents, &labels, 5);
        let spans = labels.decode_spans(&denoised[0]);
        assert!(spans.contains(&(EntityKind::Malware, 0, 1)), "{spans:?}");
        assert!(
            spans.iter().any(|&(k, _, _)| k == EntityKind::FileName),
            "{spans:?}"
        );
        assert!(
            spans.iter().any(|&(k, _, _)| k == EntityKind::Software),
            "{spans:?}"
        );
    }

    #[test]
    fn context_cues_label_unlisted_names() {
        let labels = LabelSet::standard();
        let lfs = lfs();
        // "florbleware" wait: use suffix-free unknown name with cue.
        let sents = sentences(&["the krozen ransomware spread quickly."]);
        let (_, denoised) = LabelModel::fit(&lfs, &sents, &labels, 5);
        let spans = labels.decode_spans(&denoised[0]);
        assert!(spans.contains(&(EntityKind::Malware, 1, 2)), "{spans:?}");
    }

    #[test]
    fn suffix_and_apt_patterns() {
        let labels = LabelSet::standard();
        let lfs = lfs();
        let sents = sentences(&["zarlocker appeared alongside apt77 infrastructure."]);
        let (_, denoised) = LabelModel::fit(&lfs, &sents, &labels, 5);
        let spans = labels.decode_spans(&denoised[0]);
        assert!(spans.contains(&(EntityKind::Malware, 0, 1)), "{spans:?}");
        // tokens: zarlocker(0) appeared(1) alongside(2) apt77(3) ...
        assert!(
            spans.contains(&(EntityKind::ThreatActor, 3, 4)),
            "{spans:?}"
        );
    }

    #[test]
    fn multiword_gazetteer_spans() {
        let labels = LabelSet::standard();
        let lfs = lfs();
        let sents = sentences(&["lazarus group used credential dumping via mimikatz."]);
        let (_, denoised) = LabelModel::fit(&lfs, &sents, &labels, 5);
        let spans = labels.decode_spans(&denoised[0]);
        assert!(
            spans.contains(&(EntityKind::ThreatActor, 0, 2)),
            "{spans:?}"
        );
        assert!(spans.contains(&(EntityKind::Technique, 3, 5)), "{spans:?}");
        assert!(spans.contains(&(EntityKind::Tool, 6, 7)), "{spans:?}");
    }

    #[test]
    fn em_raises_accuracy_of_agreeing_lfs() {
        let labels = LabelSet::standard();
        let lfs = lfs();
        // emotet gets two votes (gazetteer + cue) in these sentences.
        let sents = sentences(&[
            "emotet ransomware returned.",
            "emotet ransomware spread.",
            "emotet ransomware evolved.",
        ]);
        let (model, _) = LabelModel::fit(&lfs, &sents, &labels, 10);
        let gaz_idx = model
            .names()
            .iter()
            .position(|n| n == "gaz-malware")
            .unwrap();
        assert!(
            model.accuracies()[gaz_idx] > 0.5,
            "{:?}",
            model.accuracies()
        );
    }

    #[test]
    fn majority_vote_works_without_em() {
        let labels = LabelSet::standard();
        let lfs = lfs();
        let sents = sentences(&["emotet ransomware returned."]);
        let seqs = LabelModel::majority_vote(&lfs, &sents, &labels);
        let spans = labels.decode_spans(&seqs[0]);
        assert!(spans.contains(&(EntityKind::Malware, 0, 1)), "{spans:?}");
    }

    #[test]
    fn unvoted_tokens_stay_outside() {
        let labels = LabelSet::standard();
        let lfs = lfs();
        let sents = sentences(&["nothing of note happened anywhere."]);
        let (_, denoised) = LabelModel::fit(&lfs, &sents, &labels, 5);
        assert!(denoised[0].iter().all(|&l| l == LabelSet::O));
    }
}
