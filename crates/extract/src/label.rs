//! The BIO label space for security NER.
//!
//! One `B-`/`I-` pair per taggable entity kind (report kinds are never
//! produced by the tagger) plus the outside label `O`. Labels are dense
//! `u16` ids; the `O` label is always id 0.

use kg_ontology::EntityKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense label id. `O` is always 0.
pub type LabelId = u16;

/// The label inventory and its BIO structure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelSet {
    names: Vec<String>,
    index: HashMap<String, LabelId>,
    /// For each label: the kind it tags (None for `O`).
    kinds: Vec<Option<EntityKind>>,
    /// For each label: true if it is a `B-` label.
    begins: Vec<bool>,
}

impl LabelSet {
    /// The standard label set over every non-report entity kind.
    pub fn standard() -> Self {
        let mut names = vec!["O".to_owned()];
        let mut kinds = vec![None];
        let mut begins = vec![false];
        for kind in EntityKind::ALL {
            if kind.is_report() {
                continue;
            }
            for (prefix, is_b) in [("B", true), ("I", false)] {
                names.push(format!("{prefix}-{}", kind.tag_stem()));
                kinds.push(Some(kind));
                begins.push(is_b);
            }
        }
        let index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as LabelId))
            .collect();
        LabelSet {
            names,
            index,
            kinds,
            begins,
        }
    }

    /// Number of labels (including `O`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the set is empty (never, for the standard set).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The `O` label id.
    pub const O: LabelId = 0;

    /// Id of a label string.
    pub fn id(&self, name: &str) -> Option<LabelId> {
        self.index.get(name).copied()
    }

    /// Name of a label id.
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id as usize]
    }

    /// The `B-` label for a kind (None for report kinds, which the tagger
    /// never produces).
    pub fn begin(&self, kind: EntityKind) -> Option<LabelId> {
        if kind.is_report() {
            return None;
        }
        self.id(&format!("B-{}", kind.tag_stem()))
    }

    /// The `I-` label for a kind (None for report kinds).
    pub fn inside(&self, kind: EntityKind) -> Option<LabelId> {
        if kind.is_report() {
            return None;
        }
        self.id(&format!("I-{}", kind.tag_stem()))
    }

    /// The kind a label tags (None for `O`).
    pub fn kind_of(&self, id: LabelId) -> Option<EntityKind> {
        self.kinds[id as usize]
    }

    /// Whether `id` is a `B-` label.
    pub fn is_begin(&self, id: LabelId) -> bool {
        self.begins[id as usize]
    }

    /// Whether `id` is an `I-` label.
    pub fn is_inside(&self, id: LabelId) -> bool {
        id != Self::O && !self.begins[id as usize]
    }

    /// BIO validity: can label `next` follow label `prev`?
    ///
    /// `I-X` may only follow `B-X` or `I-X`; everything else is free. Decoders
    /// hard-enforce this so outputs always form well-formed spans.
    pub fn may_follow(&self, prev: LabelId, next: LabelId) -> bool {
        if !self.is_inside(next) {
            return true;
        }
        self.kind_of(prev) == self.kind_of(next) && prev != Self::O
    }

    /// Convert a BIO label-id sequence into `(kind, start_token, end_token)`
    /// spans (`end` exclusive). Ill-formed `I-` openings are treated as `B-`.
    pub fn decode_spans(&self, labels: &[LabelId]) -> Vec<(EntityKind, usize, usize)> {
        let mut spans = Vec::new();
        let mut current: Option<(EntityKind, usize)> = None;
        for (i, &l) in labels.iter().enumerate() {
            match self.kind_of(l) {
                None => {
                    if let Some((k, s)) = current.take() {
                        spans.push((k, s, i));
                    }
                }
                Some(kind) => {
                    let continues = !self.is_begin(l) && current.is_some_and(|(k, _)| k == kind);
                    if !continues {
                        if let Some((k, s)) = current.take() {
                            spans.push((k, s, i));
                        }
                        current = Some((kind, i));
                    }
                }
            }
        }
        if let Some((k, s)) = current {
            spans.push((k, s, labels.len()));
        }
        spans
    }

    /// Encode `(kind, start, end)` token spans as a BIO label-id sequence of
    /// length `len`. Overlapping spans: the later one wins.
    pub fn encode_spans(&self, len: usize, spans: &[(EntityKind, usize, usize)]) -> Vec<LabelId> {
        let mut labels = vec![Self::O; len];
        for &(kind, start, end) in spans {
            let (Some(b), Some(i_label)) = (self.begin(kind), self.inside(kind)) else {
                continue;
            };
            for (offset, slot) in labels[start..end.min(len)].iter_mut().enumerate() {
                *slot = if offset == 0 { b } else { i_label };
            }
        }
        labels
    }
}

impl Default for LabelSet {
    fn default() -> Self {
        LabelSet::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_set_shape() {
        let ls = LabelSet::standard();
        // 19 non-report kinds × 2 + O = 39.
        assert_eq!(ls.len(), 39);
        assert_eq!(ls.name(LabelSet::O), "O");
        assert_eq!(ls.id("O"), Some(0));
        assert!(!ls.is_empty());
    }

    #[test]
    fn begin_inside_lookup() {
        let ls = LabelSet::standard();
        let b = ls.begin(EntityKind::Malware).unwrap();
        let i = ls.inside(EntityKind::Malware).unwrap();
        assert_eq!(ls.name(b), "B-MAL");
        assert_eq!(ls.name(i), "I-MAL");
        assert!(ls.is_begin(b));
        assert!(ls.is_inside(i));
        assert_eq!(ls.kind_of(b), Some(EntityKind::Malware));
    }

    #[test]
    fn bio_transition_constraints() {
        let ls = LabelSet::standard();
        let b_mal = ls.begin(EntityKind::Malware).unwrap();
        let i_mal = ls.inside(EntityKind::Malware).unwrap();
        let i_act = ls.inside(EntityKind::ThreatActor).unwrap();
        assert!(ls.may_follow(b_mal, i_mal));
        assert!(ls.may_follow(i_mal, i_mal));
        assert!(!ls.may_follow(LabelSet::O, i_mal));
        assert!(!ls.may_follow(b_mal, i_act));
        assert!(ls.may_follow(i_mal, LabelSet::O));
        assert!(ls.may_follow(LabelSet::O, b_mal));
    }

    #[test]
    fn span_round_trip() {
        let ls = LabelSet::standard();
        let spans = vec![
            (EntityKind::ThreatActor, 0, 2),
            (EntityKind::Malware, 3, 4),
            (EntityKind::Technique, 5, 8),
        ];
        let labels = ls.encode_spans(9, &spans);
        assert_eq!(ls.decode_spans(&labels), spans);
    }

    #[test]
    fn adjacent_same_kind_spans_stay_separate() {
        let ls = LabelSet::standard();
        let spans = vec![(EntityKind::Malware, 0, 1), (EntityKind::Malware, 1, 2)];
        let labels = ls.encode_spans(2, &spans);
        // B-MAL B-MAL decodes back to two spans.
        assert_eq!(ls.decode_spans(&labels), spans);
    }

    #[test]
    fn dangling_inside_opens_span() {
        let ls = LabelSet::standard();
        let i_mal = ls.inside(EntityKind::Malware).unwrap();
        let spans = ls.decode_spans(&[LabelSet::O, i_mal, i_mal]);
        assert_eq!(spans, vec![(EntityKind::Malware, 1, 3)]);
    }

    #[test]
    fn report_kinds_have_no_labels() {
        let ls = LabelSet::standard();
        assert!(ls.begin(EntityKind::MalwareReport).is_none());
    }
}
