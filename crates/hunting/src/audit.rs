//! The system-auditing substrate: audit events as a kernel provenance
//! tracker (auditd / ETW) would emit, plus a deterministic generator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// What an event did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventAction {
    /// Process wrote a file.
    FileWrite,
    /// Process read a file.
    FileRead,
    /// Process deleted a file.
    FileDelete,
    /// Process executed an image.
    ProcessExec,
    /// Process connected to a remote endpoint.
    NetConnect,
    /// Process resolved a domain name.
    DnsResolve,
    /// Process wrote a registry value.
    RegistryWrite,
    /// Process sent an email (mail-gateway audit).
    EmailSend,
}

/// The object an event touched.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuditObject {
    File(String),
    /// Remote endpoint as dotted IPv4.
    Ip(String),
    Domain(String),
    Url(String),
    RegistryKey(String),
    Email(String),
}

impl AuditObject {
    /// The object's comparable string (lowercased).
    pub fn key(&self) -> String {
        match self {
            AuditObject::File(s)
            | AuditObject::Ip(s)
            | AuditObject::Domain(s)
            | AuditObject::Url(s)
            | AuditObject::RegistryKey(s)
            | AuditObject::Email(s) => s.to_lowercase(),
        }
    }
}

impl fmt::Display for AuditObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditObject::File(s) => write!(f, "file:{s}"),
            AuditObject::Ip(s) => write!(f, "ip:{s}"),
            AuditObject::Domain(s) => write!(f, "domain:{s}"),
            AuditObject::Url(s) => write!(f, "url:{s}"),
            AuditObject::RegistryKey(s) => write!(f, "reg:{s}"),
            AuditObject::Email(s) => write!(f, "email:{s}"),
        }
    }
}

/// One audit event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEvent {
    /// Monotonic event timestamp (ms).
    pub ts_ms: u64,
    /// Process image name (e.g. "winword.exe").
    pub process: String,
    /// Host the event came from.
    pub host: String,
    pub action: EventAction,
    pub object: AuditObject,
}

/// Deterministic audit-log generator: benign background noise plus
/// optionally implanted attack traces.
#[derive(Debug)]
pub struct AuditGenerator {
    state: u64,
}

const BENIGN_PROCESSES: &[&str] = &[
    "explorer.exe",
    "winword.exe",
    "chrome.exe",
    "svchost.exe",
    "outlook.exe",
    "teams.exe",
    "backupd",
    "sshd",
    "cron",
    "systemd",
];

const BENIGN_FILES: &[&str] = &[
    "C:\\Users\\alice\\report.docx",
    "C:\\Users\\bob\\notes.txt",
    "/var/log/syslog",
    "/home/carol/main.rs",
    "C:\\Windows\\Temp\\cache.dat",
    "/tmp/build.log",
];

const BENIGN_DOMAINS: &[&str] = &[
    "updates.vendor.example",
    "mail.corp.example",
    "www.search.example",
    "cdn.site.example",
];

impl AuditGenerator {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        AuditGenerator { state: seed.max(1) }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick<'a>(&mut self, items: &'a [&'a str]) -> &'a str {
        items[(self.next_u64() % items.len() as u64) as usize]
    }

    /// One benign background event at `ts_ms`.
    pub fn benign_event(&mut self, ts_ms: u64) -> AuditEvent {
        let roll = self.next_u64() % 100;
        let process = self.pick(BENIGN_PROCESSES).to_owned();
        let host = format!("host{}", self.next_u64() % 8);
        let (action, object) = if roll < 40 {
            (
                EventAction::FileWrite,
                AuditObject::File(self.pick(BENIGN_FILES).to_owned()),
            )
        } else if roll < 60 {
            (
                EventAction::FileRead,
                AuditObject::File(self.pick(BENIGN_FILES).to_owned()),
            )
        } else if roll < 75 {
            (
                EventAction::DnsResolve,
                AuditObject::Domain(self.pick(BENIGN_DOMAINS).to_owned()),
            )
        } else if roll < 90 {
            (
                EventAction::NetConnect,
                AuditObject::Ip(format!(
                    "10.0.{}.{}",
                    self.next_u64() % 256,
                    self.next_u64() % 254 + 1
                )),
            )
        } else {
            (
                EventAction::ProcessExec,
                AuditObject::File(self.pick(BENIGN_PROCESSES).to_owned()),
            )
        };
        AuditEvent {
            ts_ms,
            process,
            host,
            action,
            object,
        }
    }

    /// A benign log of `n` events starting at `start_ms`, 1 event/second.
    pub fn benign_log(&mut self, n: usize, start_ms: u64) -> Vec<AuditEvent> {
        (0..n)
            .map(|i| self.benign_event(start_ms + i as u64 * 1000))
            .collect()
    }

    /// Implant an attack trace replaying the given `(action, object)` steps
    /// on one host, interleaved into `log` at roughly uniform offsets
    /// (timestamps keep the log sorted).
    pub fn implant(
        &mut self,
        log: &mut Vec<AuditEvent>,
        steps: &[(EventAction, AuditObject)],
        process: &str,
        host: &str,
    ) {
        if log.is_empty() {
            let mut ts = 0;
            for (action, object) in steps {
                log.push(AuditEvent {
                    ts_ms: ts,
                    process: process.to_owned(),
                    host: host.to_owned(),
                    action: *action,
                    object: object.clone(),
                });
                ts += 500;
            }
            return;
        }
        let stride = (log.len() / (steps.len() + 1)).max(1);
        for (i, (action, object)) in steps.iter().enumerate() {
            let pos = ((i + 1) * stride).min(log.len() - 1);
            let ts_ms = log[pos].ts_ms + 1;
            log.insert(
                pos + 1,
                AuditEvent {
                    ts_ms,
                    process: process.to_owned(),
                    host: host.to_owned(),
                    action: *action,
                    object: object.clone(),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_log_is_deterministic_and_sorted() {
        let a = AuditGenerator::new(7).benign_log(200, 0);
        let b = AuditGenerator::new(7).benign_log(200, 0);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
        // Variety: several actions appear.
        let actions: std::collections::HashSet<_> = a.iter().map(|e| e.action).collect();
        assert!(actions.len() >= 4, "{actions:?}");
    }

    #[test]
    fn implant_preserves_order_and_adds_steps() {
        let mut generator = AuditGenerator::new(3);
        let mut log = generator.benign_log(50, 0);
        let steps = vec![
            (EventAction::FileWrite, AuditObject::File("evil.exe".into())),
            (EventAction::NetConnect, AuditObject::Ip("6.6.6.6".into())),
        ];
        generator.implant(&mut log, &steps, "evil.exe", "host1");
        assert_eq!(log.len(), 52);
        assert!(log.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
        assert!(log.iter().any(|e| e.object.key() == "evil.exe"));
        assert!(log.iter().any(|e| e.object.key() == "6.6.6.6"));
    }

    #[test]
    fn implant_into_empty_log() {
        let mut generator = AuditGenerator::new(3);
        let mut log = Vec::new();
        generator.implant(
            &mut log,
            &[(
                EventAction::DnsResolve,
                AuditObject::Domain("c2.evil.ru".into()),
            )],
            "mal.exe",
            "host0",
        );
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn object_keys_lowercase() {
        assert_eq!(
            AuditObject::File("C:\\EVIL.EXE".into()).key(),
            "c:\\evil.exe"
        );
        assert_eq!(AuditObject::Domain("C2.Evil.RU".into()).key(), "c2.evil.ru");
    }
}
