//! Knowledge-enhanced threat hunting — the applications layer of Figure 1
//! and the paper's stated future work ("we plan to connect SecurityKG to our
//! system-auditing-based threat protection systems \[17, 23, 24\] to achieve
//! knowledge-enhanced threat protection").
//!
//! The idea, following the authors' threat-hunting line of work
//! (ThreatRaptor \[17\], Poirot \[22\]): the knowledge graph holds *threat
//! behaviour graphs* — per-malware indicator sets with their relations
//! (dropped files, C2 endpoints, persistence keys). System audit logs hold
//! *observed* behaviour: process/file/network/registry events. Hunting is
//! alignment: score how much of a threat's KG behaviour the audit stream
//! exhibits, and rank threats for the analyst.
//!
//! - [`audit`] — the system-auditing substrate: typed audit events and a
//!   deterministic log generator (background noise + optional implanted
//!   attack replaying a KG behaviour).
//! - [`behavior`] — extraction of threat behaviour graphs from a
//!   [`kg_graph::GraphStore`] built by SecurityKG.
//! - [`hunt()`] — the alignment scorer and [`Hunter`].

pub mod audit;
pub mod behavior;
pub mod hunt;

pub use audit::{AuditEvent, AuditGenerator, AuditObject, EventAction};
pub use behavior::{BehaviorGraph, Indicator};
pub use hunt::{hunt, HuntMatch, HuntReport, Hunter};
