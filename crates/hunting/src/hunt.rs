//! The alignment scorer: match audit streams against threat behaviour
//! graphs (the Poirot-style "align attack behavior with audit records").

use crate::audit::AuditEvent;
use crate::behavior::BehaviorGraph;
use serde::Serialize;
use std::collections::HashMap;

/// One matched indicator with its supporting events.
#[derive(Debug, Clone, Serialize)]
pub struct HuntMatch {
    /// Index into the behaviour's indicator list.
    pub indicator: usize,
    /// Indices of matching events in the scanned log.
    pub events: Vec<usize>,
    /// Hosts on which the indicator manifested.
    pub hosts: Vec<String>,
}

/// Alignment result for one threat.
#[derive(Debug, Clone, Serialize)]
pub struct HuntReport {
    pub threat_name: String,
    /// Matched evidence weight / total evidence weight, in `[0, 1]`.
    pub score: f64,
    /// Indicators matched / total indicators.
    pub coverage: (usize, usize),
    pub matches: Vec<HuntMatch>,
    /// The single host with the most matched indicators, if any.
    pub focus_host: Option<String>,
}

/// Match one behaviour graph against an audit log.
pub fn hunt(behavior: &BehaviorGraph, log: &[AuditEvent]) -> HuntReport {
    // Index the log: (action, object key) → event indices.
    let mut index: HashMap<(crate::audit::EventAction, String), Vec<usize>> = HashMap::new();
    for (i, event) in log.iter().enumerate() {
        index
            .entry((event.action, event.object.key()))
            .or_default()
            .push(i);
    }

    let mut matches = Vec::new();
    let mut matched_weight = 0.0;
    let mut host_hits: HashMap<String, usize> = HashMap::new();
    for (idx, indicator) in behavior.indicators.iter().enumerate() {
        let mut events: Vec<usize> = Vec::new();
        for action in &indicator.actions {
            if let Some(hits) = index.get(&(*action, indicator.value.clone())) {
                events.extend_from_slice(hits);
            }
        }
        if events.is_empty() {
            continue;
        }
        events.sort_unstable();
        events.dedup();
        let mut hosts: Vec<String> = events.iter().map(|&e| log[e].host.clone()).collect();
        hosts.sort();
        hosts.dedup();
        for host in &hosts {
            *host_hits.entry(host.clone()).or_insert(0) += 1;
        }
        matched_weight += indicator.weight;
        matches.push(HuntMatch {
            indicator: idx,
            events,
            hosts,
        });
    }

    let total_weight = behavior.total_weight();
    let focus_host = host_hits
        .into_iter()
        .max_by_key(|(host, hits)| (*hits, std::cmp::Reverse(host.clone())))
        .map(|(host, _)| host);
    HuntReport {
        threat_name: behavior.name.clone(),
        score: if total_weight > 0.0 {
            matched_weight / total_weight
        } else {
            0.0
        },
        coverage: (matches.len(), behavior.indicators.len()),
        matches,
        focus_host,
    }
}

/// Hunt a whole battery of behaviours over a log and rank by score.
pub struct Hunter {
    pub behaviors: Vec<BehaviorGraph>,
    /// Minimum score to report (noise floor).
    pub min_score: f64,
}

impl Hunter {
    /// A hunter over extracted behaviours with the default noise floor.
    pub fn new(behaviors: Vec<BehaviorGraph>) -> Self {
        Hunter {
            behaviors,
            min_score: 0.05,
        }
    }

    /// Scan the log; reports sorted by score descending, ties by name.
    pub fn scan(&self, log: &[AuditEvent]) -> Vec<HuntReport> {
        let mut reports: Vec<HuntReport> = self
            .behaviors
            .iter()
            .map(|b| hunt(b, log))
            .filter(|r| r.score >= self.min_score)
            .collect();
        reports.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.threat_name.cmp(&b.threat_name))
        });
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{AuditGenerator, AuditObject, EventAction};
    use crate::behavior::{behavior_of, behaviors_with_label};
    use kg_graph::{GraphStore, Value};

    fn kg_with_two_threats() -> GraphStore {
        let mut g = GraphStore::new();
        for (mal, file, domain) in [
            ("zeus", "bot.exe", "c2.evil.ru"),
            ("mirai", "scan.elf", "pool.badnet.cn"),
        ] {
            let m = g.create_node("Malware", [("name", Value::from(mal))]);
            let f = g.create_node("FileName", [("name", Value::from(file))]);
            let d = g.create_node("Domain", [("name", Value::from(domain))]);
            g.create_edge(m, "DROP", f, [] as [(&str, Value); 0])
                .unwrap();
            g.create_edge(m, "CONNECTS_TO", d, [] as [(&str, Value); 0])
                .unwrap();
        }
        g
    }

    #[test]
    fn implanted_attack_is_ranked_first() {
        let g = kg_with_two_threats();
        let behaviors = behaviors_with_label(&g, "Malware", 1);
        assert_eq!(behaviors.len(), 2);
        let zeus = behaviors.iter().find(|b| b.name == "zeus").unwrap();

        let mut generator = AuditGenerator::new(11);
        let mut log = generator.benign_log(500, 0);
        generator.implant(&mut log, &zeus.as_audit_steps(), "bot.exe", "host3");

        let hunter = Hunter::new(behaviors.clone());
        let reports = hunter.scan(&log);
        assert!(!reports.is_empty());
        assert_eq!(reports[0].threat_name, "zeus");
        assert!(reports[0].score > 0.99, "{}", reports[0].score);
        assert_eq!(reports[0].focus_host.as_deref(), Some("host3"));
        // mirai has no evidence in the log.
        assert!(reports.iter().all(|r| r.threat_name != "mirai"));
    }

    #[test]
    fn clean_log_reports_nothing() {
        let g = kg_with_two_threats();
        let hunter = Hunter::new(behaviors_with_label(&g, "Malware", 1));
        let log = AuditGenerator::new(5).benign_log(400, 0);
        assert!(hunter.scan(&log).is_empty());
    }

    #[test]
    fn partial_evidence_scores_partially() {
        let g = kg_with_two_threats();
        let behaviors = behaviors_with_label(&g, "Malware", 1);
        let zeus = behaviors.iter().find(|b| b.name == "zeus").unwrap();
        let mut generator = AuditGenerator::new(9);
        let mut log = generator.benign_log(100, 0);
        // Only the domain indicator manifests.
        generator.implant(
            &mut log,
            &[(
                EventAction::DnsResolve,
                AuditObject::Domain("c2.evil.ru".into()),
            )],
            "chrome.exe",
            "host0",
        );
        let report = hunt(zeus, &log);
        assert!(report.score > 0.0 && report.score < 1.0, "{}", report.score);
        assert_eq!(report.coverage, (1, 2));
        // Domain evidence (0.85) outweighs the missing file name (0.5).
        assert!(report.score > 0.5);
    }

    #[test]
    fn weights_order_threats_with_shared_indicators() {
        // Two threats share a file name, but one also has a matching domain.
        let mut g = GraphStore::new();
        let a = g.create_node("Malware", [("name", Value::from("alpha"))]);
        let b = g.create_node("Malware", [("name", Value::from("beta"))]);
        let shared = g.create_node("FileName", [("name", Value::from("stage.exe"))]);
        let domain = g.create_node("Domain", [("name", Value::from("only-alpha.evil"))]);
        g.create_edge(a, "DROP", shared, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(a, "CONNECTS_TO", domain, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(b, "DROP", shared, [] as [(&str, Value); 0])
            .unwrap();

        let behaviors = vec![behavior_of(&g, a).unwrap(), behavior_of(&g, b).unwrap()];
        let mut generator = AuditGenerator::new(2);
        let mut log = generator.benign_log(100, 0);
        generator.implant(
            &mut log,
            &[
                (
                    EventAction::FileWrite,
                    AuditObject::File("stage.exe".into()),
                ),
                (
                    EventAction::DnsResolve,
                    AuditObject::Domain("only-alpha.evil".into()),
                ),
            ],
            "stage.exe",
            "host1",
        );
        let reports = Hunter::new(behaviors).scan(&log);
        assert_eq!(reports[0].threat_name, "alpha");
        assert_eq!(reports[0].score, 1.0);
        // beta matches too (shared file) but with full-but-weaker profile: its
        // only indicator matched → score 1.0 as well, yet alpha sorts first
        // on name tie-break... distinguish by score: beta's total weight is
        // lower but score normalises. Check both present, alpha first.
        assert!(reports.iter().any(|r| r.threat_name == "beta"));
    }
}
