//! Threat behaviour graphs extracted from the knowledge graph.
//!
//! For a threat node (malware, usually) the behaviour graph is the set of
//! IOC indicators the KG relates to it, each weighted by how discriminating
//! its kind is (a SHA-256 is near-proof; a targeted software name is weak
//! circumstantial evidence).

use crate::audit::{AuditObject, EventAction};
use kg_graph::{GraphStore, NodeId};
use kg_ontology::{EntityKind, RelationKind};
use serde::{Deserialize, Serialize};

/// One expected indicator of a threat.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Indicator {
    /// IOC kind in the ontology.
    pub kind: EntityKind,
    /// Canonical (lowercase) indicator value.
    pub value: String,
    /// The KG relation that tied it to the threat.
    pub relation: RelationKind,
    /// Evidence weight in `(0, 1]`.
    pub weight: f64,
    /// Audit actions that would manifest this indicator.
    pub actions: Vec<EventAction>,
}

/// The expected behaviour of one threat.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorGraph {
    /// The KG node the behaviour belongs to.
    pub threat: NodeId,
    /// Canonical threat name.
    pub name: String,
    pub indicators: Vec<Indicator>,
}

impl BehaviorGraph {
    /// Total evidence weight available.
    pub fn total_weight(&self) -> f64 {
        self.indicators.iter().map(|i| i.weight).sum()
    }

    /// Expected audit steps for implanting this behaviour in a simulated
    /// log (used by detection experiments): one `(action, object)` pair per
    /// indicator, using its first manifesting action.
    pub fn as_audit_steps(&self) -> Vec<(EventAction, AuditObject)> {
        self.indicators
            .iter()
            .filter_map(|ind| {
                let action = *ind.actions.first()?;
                Some((action, indicator_object(ind)))
            })
            .collect()
    }
}

fn indicator_object(ind: &Indicator) -> AuditObject {
    match ind.kind {
        EntityKind::FileName | EntityKind::FilePath => AuditObject::File(ind.value.clone()),
        EntityKind::IpAddress => AuditObject::Ip(ind.value.clone()),
        EntityKind::Domain => AuditObject::Domain(ind.value.clone()),
        EntityKind::Url => AuditObject::Url(ind.value.clone()),
        EntityKind::RegistryKey => AuditObject::RegistryKey(ind.value.clone()),
        EntityKind::Email => AuditObject::Email(ind.value.clone()),
        // Hashes manifest as files identified by the hash; model as file
        // whose "name" is the digest (endpoint agents report hashes).
        _ => AuditObject::File(ind.value.clone()),
    }
}

/// Evidence weight per indicator kind.
fn kind_weight(kind: EntityKind) -> f64 {
    match kind {
        EntityKind::HashMd5 | EntityKind::HashSha1 | EntityKind::HashSha256 => 1.0,
        EntityKind::Url => 0.9,
        EntityKind::Domain => 0.85,
        EntityKind::IpAddress => 0.7,
        EntityKind::FilePath => 0.7,
        EntityKind::RegistryKey => 0.7,
        EntityKind::FileName => 0.5,
        EntityKind::Email => 0.6,
        _ => 0.2,
    }
}

/// Audit actions that can manifest an indicator reached via `relation`.
fn manifesting_actions(kind: EntityKind, relation: RelationKind) -> Vec<EventAction> {
    use EventAction::*;
    match kind {
        EntityKind::FileName | EntityKind::FilePath => match relation {
            RelationKind::Drop | RelationKind::Creates => vec![FileWrite, ProcessExec],
            RelationKind::Executes => vec![ProcessExec, FileWrite],
            RelationKind::Deletes => vec![FileDelete],
            RelationKind::Modifies => vec![FileWrite],
            _ => vec![FileWrite, ProcessExec, FileRead],
        },
        EntityKind::IpAddress => vec![NetConnect],
        EntityKind::Domain => vec![DnsResolve, NetConnect],
        EntityKind::Url => vec![NetConnect],
        EntityKind::RegistryKey => vec![RegistryWrite],
        EntityKind::Email => vec![EmailSend],
        _ => vec![FileWrite],
    }
}

/// Extract the behaviour graph of one threat node from the KG: every
/// outgoing non-provenance edge to an IOC-kind node becomes an indicator.
pub fn behavior_of(graph: &GraphStore, threat: NodeId) -> Option<BehaviorGraph> {
    let node = graph.node(threat)?;
    let name = node.name().unwrap_or("").to_owned();
    let mut indicators = Vec::new();
    for edge in graph.outgoing(threat) {
        let Ok(relation) = edge.rel_type.parse::<RelationKind>() else {
            continue;
        };
        if relation.is_structural() {
            continue;
        }
        let Some(target) = graph.node(edge.to) else {
            continue;
        };
        let Ok(kind) = target.label.parse::<EntityKind>() else {
            continue;
        };
        if !kind.is_ioc() {
            continue;
        }
        let value = target.name().unwrap_or("").to_lowercase();
        if value.is_empty() {
            continue;
        }
        indicators.push(Indicator {
            kind,
            value,
            relation,
            weight: kind_weight(kind),
            actions: manifesting_actions(kind, relation),
        });
    }
    // Deduplicate identical (kind, value) indicators reached via different
    // relations, keeping the first.
    indicators.sort_by(|a, b| (a.kind, &a.value).cmp(&(b.kind, &b.value)));
    indicators.dedup_by(|a, b| a.kind == b.kind && a.value == b.value);
    Some(BehaviorGraph {
        threat,
        name,
        indicators,
    })
}

/// Extract behaviour graphs for every node with the given label that has at
/// least `min_indicators` IOC indicators.
pub fn behaviors_with_label(
    graph: &GraphStore,
    label: &str,
    min_indicators: usize,
) -> Vec<BehaviorGraph> {
    graph
        .nodes_with_label(label)
        .into_iter()
        .filter_map(|id| behavior_of(graph, id))
        .filter(|b| b.indicators.len() >= min_indicators)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_graph::Value;

    fn sample_graph() -> (GraphStore, NodeId) {
        let mut g = GraphStore::new();
        let mal = g.create_node("Malware", [("name", Value::from("zeus"))]);
        let f = g.create_node("FileName", [("name", Value::from("bot.exe"))]);
        let d = g.create_node("Domain", [("name", Value::from("c2.evil.ru"))]);
        let reg = g.create_node(
            "RegistryKey",
            [("name", Value::from("hklm\\software\\run\\bot"))],
        );
        let tech = g.create_node("Technique", [("name", Value::from("keylogging"))]);
        let report = g.create_node("MalwareReport", [("name", Value::from("src/r1"))]);
        g.create_edge(mal, "DROP", f, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(mal, "CONNECTS_TO", d, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(mal, "PERSISTS_VIA", reg, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(mal, "USES", tech, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(report, "MENTIONS", mal, [] as [(&str, Value); 0])
            .unwrap();
        (g, mal)
    }

    #[test]
    fn extracts_ioc_indicators_only() {
        let (g, mal) = sample_graph();
        let behavior = behavior_of(&g, mal).unwrap();
        assert_eq!(behavior.name, "zeus");
        assert_eq!(behavior.indicators.len(), 3, "{:?}", behavior.indicators);
        // The technique (non-IOC) and the MENTIONS edge are excluded.
        assert!(behavior.indicators.iter().all(|i| i.kind.is_ioc()));
        assert!(behavior.total_weight() > 1.5);
    }

    #[test]
    fn indicators_map_to_audit_steps() {
        let (g, mal) = sample_graph();
        let behavior = behavior_of(&g, mal).unwrap();
        let steps = behavior.as_audit_steps();
        assert_eq!(steps.len(), 3);
        assert!(steps.iter().any(|(a, o)| *a == EventAction::FileWrite
            && matches!(o, AuditObject::File(f) if f == "bot.exe")));
        assert!(steps.iter().any(|(a, o)| *a == EventAction::DnsResolve
            && matches!(o, AuditObject::Domain(d) if d == "c2.evil.ru")));
        assert!(steps.iter().any(|(a, _)| *a == EventAction::RegistryWrite));
    }

    #[test]
    fn hashes_weigh_more_than_filenames() {
        assert!(kind_weight(EntityKind::HashSha256) > kind_weight(EntityKind::FileName));
        assert!(kind_weight(EntityKind::Domain) > kind_weight(EntityKind::FileName));
    }

    #[test]
    fn behaviors_with_label_filters_thin_profiles() {
        let (g, _) = sample_graph();
        assert_eq!(behaviors_with_label(&g, "Malware", 1).len(), 1);
        assert_eq!(behaviors_with_label(&g, "Malware", 4).len(), 0);
        assert!(behaviors_with_label(&g, "Tool", 1).is_empty());
    }
}
