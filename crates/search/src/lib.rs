//! Full-text keyword search over the knowledge graph (paper §2.6: "the user
//! can search information using keywords (through Elasticsearch)").
//!
//! A BM25-ranked inverted index, replacing Elasticsearch per DESIGN.md. The
//! tokenizer is the IOC-protected tokenizer from `kg-nlp`, so indicator
//! strings ("tasksche.exe", "10.0.0.1") are single searchable terms exactly
//! as a CTI analyst expects.

use kg_nlp::{tokenize_protected, IocMatcher};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Term shards the index splits into for incremental persistence: a term
/// belongs to shard `fnv1a64(term) % PERSIST_SHARDS`, and a checkpoint
/// rewrites only shards whose postings changed.
pub const PERSIST_SHARDS: usize = 64;

/// Documents per persisted doc-table segment. Docs are append-only, so the
/// dirty doc segments are exactly those covering slots past the last
/// checkpoint's watermark.
pub const DOC_SEG: usize = 256;

/// One persisted term shard, as [`SearchIndex::shard_json`] encodes it:
/// sorted `(term, [(doc, tf), ...])` pairs.
pub type ShardTerms = Vec<(String, Vec<(u32, u32)>)>;

fn fnv1a64_term(term: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in term.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

fn shard_of(term: &str) -> usize {
    (fnv1a64_term(term) % PERSIST_SHARDS as u64) as usize
}

/// BM25 parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Bm25Params {
    pub k1: f64,
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// A scored hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit<D> {
    pub doc: D,
    pub score: f64,
}

/// One posting: document slot + term frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Posting {
    doc: u32,
    tf: u32,
}

/// Global corpus statistics injected into per-partition BM25 scoring
/// (DFS-query-then-fetch): with the same document count, average length and
/// per-term document frequencies on every partition, a document scores
/// bit-identically to the unpartitioned index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusStats {
    /// Total documents across all partitions.
    pub docs: u64,
    /// Total tokens across all partitions.
    pub total_tokens: u64,
    /// Document frequency per *query* term (not the whole vocabulary).
    pub doc_freq: HashMap<String, u64>,
}

impl CorpusStats {
    /// Fold another partition's contribution in (all fields sum).
    pub fn merge(&mut self, other: &CorpusStats) {
        self.docs += other.docs;
        self.total_tokens += other.total_tokens;
        for (term, df) in &other.doc_freq {
            *self.doc_freq.entry(term.clone()).or_insert(0) += df;
        }
    }
}

/// One document recovered from the postings tail by
/// [`SearchIndex::appended_docs`]: everything `add_pretokenized` needs to
/// re-ingest it into a partition.
#[derive(Debug, Clone)]
pub struct AppendedDoc<D> {
    /// The slot the document occupies in the source index.
    pub slot: u32,
    pub key: D,
    pub token_len: u32,
    /// Sorted `(term, frequency)` pairs, as originally ingested.
    pub counts: Vec<(String, u32)>,
}

/// An inverted index over documents identified by an arbitrary key type
/// (the knowledge graph uses node ids; the pipeline uses report ids).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchIndex<D> {
    params: Bm25Params,
    /// term → postings (document slots ascending). Each list is `Arc`'d so
    /// cloning the index for a serving snapshot bumps refcounts instead of
    /// deep-copying every posting; the writer's next append to a shared list
    /// copies just that list (`Arc::make_mut`). `Arc` serialises
    /// transparently, so the JSON shape is unchanged.
    postings: HashMap<String, Arc<Vec<Posting>>>,
    /// slot → (external doc key, token count).
    docs: Vec<(D, u32)>,
    /// Total tokens across all documents (the BM25 average-length term).
    total_tokens: u64,
    /// Term shards touched since the last [`SearchIndex::clear_persist_dirty`].
    /// Not serialised — an index that did not come through
    /// [`SearchIndex::from_persist_parts`] must be persisted in full once
    /// before incremental dirty tracking means anything.
    #[serde(skip)]
    dirty_shards: BTreeSet<usize>,
    /// Docs below this watermark are already persisted (docs are append-only).
    #[serde(skip)]
    clean_docs: usize,
}

impl<D: Clone + PartialEq> Default for SearchIndex<D> {
    fn default() -> Self {
        Self::new(Bm25Params::default())
    }
}

impl<D: Clone + PartialEq> SearchIndex<D> {
    /// An empty index.
    pub fn new(params: Bm25Params) -> Self {
        SearchIndex {
            params,
            postings: HashMap::new(),
            docs: Vec::new(),
            total_tokens: 0,
            dirty_shards: BTreeSet::new(),
            clean_docs: 0,
        }
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Tokenize text into lowercase index terms (IOC-protected).
    pub fn terms(text: &str) -> Vec<String> {
        Self::terms_with(&IocMatcher::standard(), text)
    }

    /// [`SearchIndex::terms`] with a caller-supplied matcher, so hot loops
    /// (the pipeline's resolve workers) build the IOC matcher once instead
    /// of once per document.
    pub fn terms_with(matcher: &IocMatcher, text: &str) -> Vec<String> {
        tokenize_protected(text, matcher)
            .into_iter()
            .filter(|t| t.kind != kg_nlp::TokenKind::Punct)
            .map(|t| t.text.to_lowercase())
            .collect()
    }

    /// Tokenize and aggregate into sorted `(term, frequency)` pairs plus the
    /// total token count — the precomputed shape [`SearchIndex::add_pretokenized`]
    /// ingests. Sorting makes downstream posting insertion order (and thus
    /// index layout) deterministic regardless of hash-map iteration order.
    pub fn term_counts_with(matcher: &IocMatcher, text: &str) -> (Vec<(String, u32)>, u32) {
        let terms = Self::terms_with(matcher, text);
        let token_len = terms.len() as u32;
        let mut counts: HashMap<String, u32> = HashMap::new();
        for term in terms {
            *counts.entry(term).or_insert(0) += 1;
        }
        let mut counts: Vec<(String, u32)> = counts.into_iter().collect();
        counts.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        (counts, token_len)
    }

    /// The slot of the document indexed under `key` — the *newest* slot
    /// when the key was re-added. This is the lookup re-indexing flows use
    /// to find a document's current version.
    pub fn slot_of(&self, key: &D) -> Option<u32> {
        self.docs
            .iter()
            .rposition(|(k, _)| k == key)
            .map(|slot| slot as u32)
    }

    /// The external key indexed at `slot`.
    pub fn key_at(&self, slot: u32) -> Option<&D> {
        self.docs.get(slot as usize).map(|(k, _)| k)
    }

    /// Index one document. Re-adding the same key indexes a new version
    /// alongside the old one; prefer one `add` per key.
    pub fn add(&mut self, key: D, text: &str) {
        let (counts, token_len) = Self::term_counts_with(&IocMatcher::standard(), text);
        self.add_pretokenized(key, counts, token_len);
    }

    /// Bulk-ingest a document whose terms were tokenized and counted
    /// elsewhere (the pipeline's resolve workers): pure hash-map pushes, no
    /// tokenization under the writer. `counts` must hold each distinct term
    /// once; pass them sorted (as [`SearchIndex::term_counts_with`] returns
    /// them) for a deterministic index layout.
    pub fn add_pretokenized(&mut self, key: D, counts: Vec<(String, u32)>, token_len: u32) {
        let slot = self.docs.len() as u32;
        self.docs.push((key, token_len));
        self.total_tokens += token_len as u64;
        for (term, tf) in counts {
            self.dirty_shards.insert(shard_of(&term));
            Arc::make_mut(self.postings.entry(term).or_default()).push(Posting { doc: slot, tf });
        }
    }

    /// BM25 top-k search. Multi-term queries score documents matching any
    /// term (OR semantics, like a default Elasticsearch match query).
    pub fn search(&self, query: &str, k: usize) -> Vec<Hit<D>> {
        if self.docs.is_empty() {
            return Vec::new();
        }
        let n = self.docs.len() as f64;
        let avg_len = self.total_tokens as f64 / n;
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for term in Self::terms(query) {
            let Some(postings) = self.postings.get(&term) else {
                continue;
            };
            let df = postings.len() as f64;
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for p in postings.iter() {
                let doc_len = self.docs[p.doc as usize].1 as f64;
                let tf = p.tf as f64;
                let denom = tf
                    + self.params.k1
                        * (1.0 - self.params.b + self.params.b * doc_len / avg_len.max(1e-9));
                *scores.entry(p.doc).or_insert(0.0) += idf * (tf * (self.params.k1 + 1.0)) / denom;
            }
        }
        let mut hits: Vec<(u32, f64)> = scores.into_iter().collect();
        hits.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        hits.truncate(k);
        hits.into_iter()
            .map(|(slot, score)| Hit {
                doc: self.docs[slot as usize].0.clone(),
                score,
            })
            .collect()
    }

    // ---- sharded scatter-gather support ------------------------------------

    /// Total token count across all documents (numerator of the BM25
    /// average-length term). Partitions sum these to recover the global
    /// value.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Number of postings for `term` — its document frequency. Zero for
    /// unknown terms. Partitions sum these to recover the global frequency.
    pub fn doc_freq(&self, term: &str) -> u64 {
        self.postings.get(term).map_or(0, |p| p.len() as u64)
    }

    /// This index's contribution to [`CorpusStats`] for `terms`: local doc
    /// count, token total and per-term document frequencies. Summing the
    /// contributions of disjoint partitions yields the global statistics.
    pub fn corpus_stats_for(&self, terms: &[String]) -> CorpusStats {
        let mut doc_freq = HashMap::new();
        for term in terms {
            doc_freq
                .entry(term.clone())
                .or_insert_with(|| self.doc_freq(term));
        }
        CorpusStats {
            docs: self.docs.len() as u64,
            total_tokens: self.total_tokens,
            doc_freq,
        }
    }

    /// Documents appended at or past `watermark`, reconstructed from the
    /// postings tails: slot, key, token length, and the sorted per-term
    /// counts [`SearchIndex::add_pretokenized`] originally ingested. Docs
    /// are append-only and postings are slot-ascending, so each term's tail
    /// starts at a binary-searched cut. This is how a shard partition syncs
    /// from the shared writer index without re-tokenizing.
    pub fn appended_docs(&self, watermark: usize) -> Vec<AppendedDoc<D>> {
        if watermark >= self.docs.len() {
            return Vec::new();
        }
        let mut counts: Vec<Vec<(String, u32)>> = vec![Vec::new(); self.docs.len() - watermark];
        for (term, postings) in &self.postings {
            let start = postings.partition_point(|p| (p.doc as usize) < watermark);
            for p in &postings[start..] {
                counts[p.doc as usize - watermark].push((term.clone(), p.tf));
            }
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, mut c)| {
                c.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                let slot = watermark + i;
                let (key, token_len) = self.docs[slot].clone();
                AppendedDoc {
                    slot: slot as u32,
                    key,
                    token_len,
                    counts: c,
                }
            })
            .collect()
    }

    /// BM25 top-k over *pre-tokenized* query terms with externally supplied
    /// global statistics. Per-document accumulation follows `terms` order —
    /// duplicates included — matching [`SearchIndex::search`] operation for
    /// operation, so a partition scoring with the merged stats of all
    /// partitions reproduces the unpartitioned scores bit for bit. Ties
    /// break by ascending slot, which for an append-ordered partition is
    /// ascending global slot.
    pub fn search_terms_with_stats(
        &self,
        terms: &[String],
        k: usize,
        stats: &CorpusStats,
    ) -> Vec<Hit<D>> {
        if self.docs.is_empty() || stats.docs == 0 {
            return Vec::new();
        }
        let n = stats.docs as f64;
        let avg_len = stats.total_tokens as f64 / n;
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for term in terms {
            let Some(postings) = self.postings.get(term) else {
                continue;
            };
            let df = stats.doc_freq.get(term).copied().unwrap_or(0) as f64;
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for p in postings.iter() {
                let doc_len = self.docs[p.doc as usize].1 as f64;
                let tf = p.tf as f64;
                let denom = tf
                    + self.params.k1
                        * (1.0 - self.params.b + self.params.b * doc_len / avg_len.max(1e-9));
                *scores.entry(p.doc).or_insert(0.0) += idf * (tf * (self.params.k1 + 1.0)) / denom;
            }
        }
        let mut hits: Vec<(u32, f64)> = scores.into_iter().collect();
        hits.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        hits.truncate(k);
        hits.into_iter()
            .map(|(slot, score)| Hit {
                doc: self.docs[slot as usize].0.clone(),
                score,
            })
            .collect()
    }

    // ---- shard persistence (kg-persist) -----------------------------------

    /// The BM25 parameters (persisted in checkpoint metadata).
    pub fn persist_params(&self) -> Bm25Params {
        self.params
    }

    /// Number of persisted doc-table segments ([`DOC_SEG`] docs each).
    pub fn doc_segment_count(&self) -> usize {
        self.docs.len().div_ceil(DOC_SEG)
    }

    /// One doc-table segment as JSON: `[(key, token_len), ...]`.
    pub fn doc_segment_json(&self, index: usize) -> Option<String>
    where
        D: Serialize,
    {
        let a = index.checked_mul(DOC_SEG)?;
        if a >= self.docs.len() {
            return None;
        }
        let b = (a + DOC_SEG).min(self.docs.len());
        let seg: Vec<(D, u32)> = self.docs[a..b].to_vec();
        Some(serde_json::to_string(&seg).expect("doc segment serialises"))
    }

    /// One doc-table segment as raw `(key, token_len)` slots — what
    /// `kg-codec` packs into a `KGBIN001` binary payload.
    pub fn doc_segment_slots(&self, index: usize) -> Option<&[(D, u32)]> {
        let a = index.checked_mul(DOC_SEG)?;
        if a >= self.docs.len() {
            return None;
        }
        let b = (a + DOC_SEG).min(self.docs.len());
        Some(&self.docs[a..b])
    }

    /// One term shard as sorted owned `(term, [(doc, tf), ...])` rows.
    /// Empty shards come back as `[]` — a full checkpoint writes all
    /// [`PERSIST_SHARDS`] shards so the carried set is always complete.
    pub fn shard_terms(&self, shard: usize) -> ShardTerms {
        let mut terms: ShardTerms = self
            .postings
            .iter()
            .filter(|(term, _)| shard_of(term) == shard)
            .map(|(term, postings)| {
                (
                    term.clone(),
                    postings.iter().map(|p| (p.doc, p.tf)).collect(),
                )
            })
            .collect();
        terms.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        terms
    }

    /// One term shard as JSON: sorted `[(term, [(doc, tf), ...]), ...]`.
    /// The JSON form survives as the differential oracle for the binary
    /// codec (and for stores written by older builds).
    pub fn shard_json(&self, shard: usize) -> String {
        serde_json::to_string(&self.shard_terms(shard)).expect("shard serialises")
    }

    /// Term shards touched since the last [`SearchIndex::clear_persist_dirty`].
    pub fn dirty_persist_shards(&self) -> Vec<usize> {
        self.dirty_shards.iter().copied().collect()
    }

    /// Doc-table segments holding docs added since the last
    /// [`SearchIndex::clear_persist_dirty`] (docs are append-only, so that
    /// is every segment covering a slot at or past the watermark).
    pub fn dirty_doc_segments(&self) -> Vec<usize> {
        if self.clean_docs >= self.docs.len() {
            return Vec::new();
        }
        (self.clean_docs / DOC_SEG..self.doc_segment_count()).collect()
    }

    /// Forget persist dirtiness. Call only once a checkpoint containing the
    /// dirty shards/segments is durably committed.
    pub fn clear_persist_dirty(&mut self) {
        self.dirty_shards.clear();
        self.clean_docs = self.docs.len();
    }

    /// Reassemble an index from persisted parts (the inverse of reading
    /// every `doc_segment_json` and all [`PERSIST_SHARDS`] `shard_json`s).
    /// Validates shard assignment and posting bounds; the result is clean —
    /// it matches what is on disk.
    pub fn from_persist_parts(
        params: Bm25Params,
        doc_parts: Vec<Vec<(D, u32)>>,
        shard_parts: Vec<ShardTerms>,
    ) -> Result<Self, String> {
        if shard_parts.len() != PERSIST_SHARDS {
            return Err(format!(
                "{} shards on disk, want {PERSIST_SHARDS}",
                shard_parts.len()
            ));
        }
        let mut docs: Vec<(D, u32)> = Vec::new();
        let seg_count = doc_parts.len();
        for (i, part) in doc_parts.into_iter().enumerate() {
            if part.is_empty() || part.len() > DOC_SEG {
                return Err(format!(
                    "doc segment {i}: {} slots out of range 1..={DOC_SEG}",
                    part.len()
                ));
            }
            if i + 1 != seg_count && part.len() != DOC_SEG {
                return Err(format!(
                    "doc segment {i}: {} slots, every segment but the last must hold {DOC_SEG}",
                    part.len()
                ));
            }
            docs.extend(part);
        }
        let total_tokens: u64 = docs.iter().map(|(_, len)| *len as u64).sum();
        let mut postings: HashMap<String, Arc<Vec<Posting>>> = HashMap::new();
        for (shard, part) in shard_parts.into_iter().enumerate() {
            for (term, list) in part {
                if shard_of(&term) != shard {
                    return Err(format!("term {term:?} stored in wrong shard {shard}"));
                }
                let mut converted = Vec::with_capacity(list.len());
                let mut prev: Option<u32> = None;
                for (doc, tf) in list {
                    if doc as usize >= docs.len() {
                        return Err(format!(
                            "term {term:?}: posting references doc {doc} of {}",
                            docs.len()
                        ));
                    }
                    if prev.is_some_and(|p| p >= doc) {
                        return Err(format!("term {term:?}: postings not ascending"));
                    }
                    prev = Some(doc);
                    converted.push(Posting { doc, tf });
                }
                if postings.insert(term.clone(), Arc::new(converted)).is_some() {
                    return Err(format!("term {term:?} appears twice"));
                }
            }
        }
        let clean_docs = docs.len();
        Ok(SearchIndex {
            params,
            postings,
            docs,
            total_tokens,
            dirty_shards: BTreeSet::new(),
            clean_docs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> SearchIndex<u32> {
        let mut idx = SearchIndex::default();
        idx.add(
            1,
            "wannacry ransomware encrypts files and drops tasksche.exe",
        );
        idx.add(
            2,
            "emotet banking trojan spreads via phishing email campaigns",
        );
        idx.add(
            3,
            "analysis of wannacry kill switch domain and smb exploitation",
        );
        idx.add(4, "cozyduke threat actor targets government networks");
        idx
    }

    #[test]
    fn keyword_search_ranks_matching_docs() {
        let idx = index();
        let hits = idx.search("wannacry", 10);
        assert_eq!(hits.len(), 2);
        let docs: Vec<u32> = hits.iter().map(|h| h.doc).collect();
        assert!(docs.contains(&1) && docs.contains(&3));
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn ioc_terms_are_single_tokens() {
        let idx = index();
        let hits = idx.search("tasksche.exe", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, 1);
        // The fragment "tasksche" alone also misses (the IOC is one term).
        assert!(idx.search("exe", 10).is_empty());
    }

    #[test]
    fn multi_term_or_semantics_prefers_doc_matching_both() {
        let idx = index();
        let hits = idx.search("wannacry smb", 10);
        assert_eq!(hits[0].doc, 3, "{hits:?}");
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let mut idx = SearchIndex::default();
        for i in 0..20u32 {
            idx.add(i, "malware report about campaigns");
        }
        idx.add(100, "malware report mentioning quuxbot");
        let hits = idx.search("quuxbot malware", 3);
        assert_eq!(hits[0].doc, 100);
    }

    #[test]
    fn case_insensitive() {
        let idx = index();
        assert_eq!(idx.search("WannaCry", 10).len(), 2);
        assert_eq!(idx.search("COZYDUKE", 10).len(), 1);
    }

    #[test]
    fn empty_and_missing_queries() {
        let idx = index();
        assert!(idx.search("zebra unicorn", 10).is_empty());
        assert!(idx.search("", 10).is_empty());
        let empty: SearchIndex<u32> = SearchIndex::default();
        assert!(empty.search("anything", 10).is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn top_k_truncates() {
        let mut idx = SearchIndex::default();
        for i in 0..50u32 {
            idx.add(i, "repeated malware text");
        }
        assert_eq!(idx.search("malware", 5).len(), 5);
        assert_eq!(idx.len(), 50);
        assert!(idx.term_count() >= 3);
    }

    #[test]
    fn key_to_slot_lookup_resolves_latest_version() {
        let mut idx = index();
        assert_eq!(idx.slot_of(&1), Some(0));
        assert_eq!(idx.slot_of(&4), Some(3));
        assert_eq!(idx.slot_of(&99), None);
        assert_eq!(idx.key_at(0), Some(&1));
        assert_eq!(idx.key_at(100), None);
        // Re-adding a key indexes a new version; the lookup must resolve to
        // the newest slot (what a re-indexing flow needs).
        idx.add(1, "updated wannacry analysis with new kill switch details");
        assert_eq!(idx.slot_of(&1), Some(4));
        assert_eq!(idx.key_at(4), Some(&1));
        // Both versions remain searchable under the same external key.
        let hits = idx.search("wannacry", 10);
        assert!(hits.iter().filter(|h| h.doc == 1).count() >= 2);
    }

    #[test]
    fn pretokenized_add_matches_plain_add() {
        let text = "wannacry ransomware encrypts files and drops tasksche.exe wannacry";
        let mut plain: SearchIndex<u32> = SearchIndex::default();
        plain.add(1, text);
        let matcher = IocMatcher::standard();
        let (counts, token_len) = SearchIndex::<u32>::term_counts_with(&matcher, text);
        assert_eq!(counts.iter().find(|(t, _)| t == "wannacry").unwrap().1, 2);
        let mut bulk: SearchIndex<u32> = SearchIndex::default();
        bulk.add_pretokenized(1, counts, token_len);
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&bulk).unwrap()
        );
        for q in ["wannacry", "tasksche.exe", "files"] {
            let a = plain.search(q, 5);
            let b = bulk.search(q, 5);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.doc, y.doc);
                assert!((x.score - y.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shard_persistence_round_trips_and_tracks_dirt() {
        let mut idx = index();
        // Full dump: every shard (including empty ones) + every doc segment.
        let shards: Vec<ShardTerms> = (0..PERSIST_SHARDS)
            .map(|s| serde_json::from_str(&idx.shard_json(s)).unwrap())
            .collect();
        let docs: Vec<Vec<(u32, u32)>> = (0..idx.doc_segment_count())
            .map(|i| serde_json::from_str(&idx.doc_segment_json(i).unwrap()).unwrap())
            .collect();
        let back =
            SearchIndex::<u32>::from_persist_parts(idx.persist_params(), docs, shards.clone())
                .unwrap();
        for q in ["wannacry", "tasksche.exe", "cozyduke"] {
            let a = idx.search(q, 10);
            let b = back.search(q, 10);
            assert_eq!(a.len(), b.len(), "{q}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.doc, y.doc);
                assert!((x.score - y.score).abs() < 1e-12);
            }
        }
        // A reassembled index is clean; new adds dirty only their shards.
        assert!(back.dirty_persist_shards().is_empty());
        assert!(back.dirty_doc_segments().is_empty());
        idx.clear_persist_dirty();
        idx.add(9, "quuxbot dropper");
        let dirty = idx.dirty_persist_shards();
        assert!(!dirty.is_empty() && dirty.len() <= 2, "{dirty:?}");
        assert_eq!(idx.dirty_doc_segments(), vec![0]);

        // Corrupt parts are clean errors, not panics.
        let mut wrong = shards.clone();
        let donor = wrong.iter().position(|s| !s.is_empty()).unwrap();
        let entry = wrong[donor].remove(0);
        let target = (donor + 1) % PERSIST_SHARDS;
        wrong[target].push(entry);
        assert!(
            SearchIndex::<u32>::from_persist_parts(Bm25Params::default(), vec![], wrong).is_err()
        );
        let mut short = shards;
        short.pop();
        assert!(
            SearchIndex::<u32>::from_persist_parts(Bm25Params::default(), vec![], short).is_err()
        );
    }

    #[test]
    fn stats_injected_search_matches_plain_search() {
        let idx = index();
        // Repeated query terms are double-counted by plain search; the
        // stats-injected path must reproduce that exactly.
        let query = "wannacry smb exploitation wannacry";
        let terms = SearchIndex::<u32>::terms(query);
        let stats = idx.corpus_stats_for(&terms);
        let a = idx.search(query, 10);
        let b = idx.search_terms_with_stats(&terms, 10, &stats);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.score.to_bits(), y.score.to_bits(), "{query}");
        }
    }

    #[test]
    fn partitioned_scoring_with_merged_stats_is_bit_identical() {
        let idx = index();
        let query = "wannacry ransomware government";
        let terms = SearchIndex::<u32>::terms(query);
        // Split docs across two partitions by parity of the original slot.
        let mut parts: Vec<SearchIndex<u32>> = vec![SearchIndex::default(), SearchIndex::default()];
        for d in idx.appended_docs(0) {
            parts[d.slot as usize % 2].add_pretokenized(d.key, d.counts, d.token_len);
        }
        let mut stats = CorpusStats::default();
        for p in &parts {
            stats.merge(&p.corpus_stats_for(&terms));
        }
        let global = idx.search(query, 10);
        let mut merged: Vec<Hit<u32>> = parts
            .iter()
            .flat_map(|p| p.search_terms_with_stats(&terms, 10, &stats))
            .collect();
        merged.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        assert_eq!(global.len(), merged.len());
        for (x, y) in global.iter().zip(&merged) {
            assert_eq!(x.doc, y.doc);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn appended_docs_reconstruct_the_postings_tail() {
        let idx = index();
        let tail = idx.appended_docs(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].slot, 2);
        assert_eq!(tail[0].key, 3);
        assert_eq!(tail[1].slot, 3);
        assert!(idx.appended_docs(4).is_empty());
        assert!(idx.appended_docs(100).is_empty());
        // Re-ingesting the full tail into a fresh index reproduces the
        // original layout exactly.
        let mut rebuilt: SearchIndex<u32> = SearchIndex::default();
        for d in idx.appended_docs(0) {
            rebuilt.add_pretokenized(d.key, d.counts, d.token_len);
        }
        assert_eq!(
            serde_json::to_string(&idx).unwrap(),
            serde_json::to_string(&rebuilt).unwrap()
        );
    }

    #[test]
    fn serde_round_trip() {
        let idx = index();
        let json = serde_json::to_string(&idx).unwrap();
        let back: SearchIndex<u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.search("wannacry", 10).len(), 2);
    }
}
