//! `securitykg` — the command-line interface.
//!
//! ```text
//! securitykg build   --out kg.json [--articles N] [--seed S] [--ner] [--fuse] [--stats]
//! securitykg stats   --kg kg.json
//! securitykg search  --kg kg.json <keywords...>
//! securitykg cypher  --kg kg.json <query>
//! securitykg export-stix --kg kg.json --out bundle.json
//! securitykg hunt    --kg kg.json [--implant <malware>] [--events N]
//! ```
//!
//! `build` constructs the knowledge base end-to-end (simulated web → crawl →
//! pipeline → graph) and writes a self-contained snapshot; every other
//! subcommand operates on that snapshot, needing none of the build
//! machinery — the separation the paper's storage/application split implies.

use securitykg::corpus::WorldConfig;
use securitykg::hunting::AuditGenerator;
use securitykg::{KnowledgeBase, SecurityKg, SystemConfig, TrainingConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "build" => cmd_build(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "search" => cmd_search(&args[1..]),
        "cypher" => cmd_cypher(&args[1..]),
        "export-stix" => cmd_export_stix(&args[1..]),
        "hunt" => cmd_hunt(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
securitykg — automated OSCTI gathering and management

USAGE:
  securitykg build  --out <kg.json> [--articles <n>] [--seed <s>] [--ner] [--fuse] [--stats]
  securitykg stats  --kg <kg.json>
  securitykg search --kg <kg.json> <keywords...>
  securitykg cypher --kg <kg.json> <query>
  securitykg export-stix --kg <kg.json> --out <bundle.json>
  securitykg hunt   --kg <kg.json> [--implant <malware>] [--events <n>]";

/// Pull `--name value` out of an argument list; returns remaining positionals.
fn parse_flags(args: &[String]) -> (std::collections::HashMap<String, String>, Vec<String>) {
    let mut flags = std::collections::HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            // Boolean flags take no value when followed by another flag/end.
            let takes_value = i + 1 < args.len() && !args[i + 1].starts_with("--");
            if takes_value && !matches!(name, "ner" | "fuse" | "stats") {
                flags.insert(name.to_owned(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_owned(), "true".to_owned());
                i += 1;
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (flags, positional)
}

fn load_kb(flags: &std::collections::HashMap<String, String>) -> Result<KnowledgeBase, String> {
    let path = flags.get("kg").ok_or("missing --kg <path>")?;
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    KnowledgeBase::from_bytes(&bytes).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args);
    let out = flags.get("out").ok_or("missing --out <path>")?;
    let articles: usize = flags
        .get("articles")
        .map(|a| a.parse().map_err(|e| format!("--articles: {e}")))
        .transpose()?
        .unwrap_or(20);
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(0xC11);

    let config = SystemConfig {
        world: WorldConfig {
            seed,
            ..WorldConfig::default()
        },
        articles_per_source: articles,
        seed,
        training: TrainingConfig {
            articles: 200,
            ..TrainingConfig::default()
        },
        ..SystemConfig::default()
    };
    eprintln!(
        "bootstrapping ({} articles/source, seed {seed:#x}, ner={})...",
        articles,
        flags.contains_key("ner")
    );
    let mut kg = if flags.contains_key("ner") {
        SecurityKg::bootstrap(&config)
    } else {
        SecurityKg::bootstrap_without_ner(&config)
    };
    let report = kg.crawl_and_ingest();
    eprintln!(
        "ingested {} reports → {} nodes, {} edges",
        report.reports_ingested,
        kg.graph().node_count(),
        kg.graph().edge_count()
    );
    if report.pipeline.quarantined > 0 {
        eprintln!(
            "warning: {} message(s) quarantined — see build --stats",
            report.pipeline.quarantined
        );
    }
    if flags.contains_key("stats") {
        eprint!("{}", report.pipeline.stage_report());
        eprintln!("trace (newest 20 events):");
        eprint!("{}", kg.trace().render_tail(20));
    }
    if flags.contains_key("fuse") {
        let fusion = kg.fuse();
        eprintln!(
            "fused {} alias clusters ({} nodes removed)",
            fusion.clusters_merged, fusion.nodes_removed
        );
    }
    let bytes = kg.snapshot().map_err(|e| e.to_string())?;
    std::fs::write(out, &bytes).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("wrote {} ({} bytes)", out, bytes.len());
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args);
    let kb = load_kb(&flags)?;
    println!("nodes: {}", kb.graph.node_count());
    println!("edges: {}", kb.graph.edge_count());
    println!("indexed documents: {}", kb.search.len());
    println!("\nnodes by label:");
    for (label, count) in kb.graph.label_histogram() {
        println!("  {label:<22} {count}");
    }
    Ok(())
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args);
    let kb = load_kb(&flags)?;
    if positional.is_empty() {
        return Err("missing search keywords".into());
    }
    let query = positional.join(" ");
    let hits = kb.keyword_search(&query, 10);
    if hits.is_empty() {
        println!("no results for {query:?}");
        return Ok(());
    }
    for id in hits {
        let node = kb.graph.node(id).unwrap();
        println!(
            "[{}] {} (degree {})",
            node.label,
            node.name().unwrap_or("?"),
            kb.graph.degree(id)
        );
    }
    Ok(())
}

fn cmd_cypher(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args);
    let kb = load_kb(&flags)?;
    if positional.is_empty() {
        return Err("missing cypher query".into());
    }
    let query = positional.join(" ");
    let result = kb.graph.query_readonly(&query).map_err(|e| e.to_string())?;
    println!("{}", result.columns.join(" | "));
    for row in &result.rows {
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                securitykg::graph::Value::Node(id) => {
                    let node = kb.graph.node(*id);
                    format!(
                        "({}:{})",
                        node.and_then(|n| n.name()).unwrap_or("?"),
                        node.map(|n| n.label.as_str()).unwrap_or("?")
                    )
                }
                other => other.to_string(),
            })
            .collect();
        println!("{}", cells.join(" | "));
    }
    eprintln!("-- {} row(s)", result.rows.len());
    Ok(())
}

fn cmd_export_stix(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args);
    let kb = load_kb(&flags)?;
    let out = flags.get("out").ok_or("missing --out <path>")?;
    let bundle = securitykg::export_bundle(&kb.graph);
    let text = serde_json::to_string_pretty(&bundle).map_err(|e| e.to_string())?;
    std::fs::write(out, text).map_err(|e| format!("write {out}: {e}"))?;
    let count = bundle["objects"].as_array().map(Vec::len).unwrap_or(0);
    eprintln!("wrote {count} STIX objects to {out}");
    Ok(())
}

fn cmd_hunt(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args);
    let kb = load_kb(&flags)?;
    let events: usize = flags
        .get("events")
        .map(|e| e.parse().map_err(|x| format!("--events: {x}")))
        .transpose()?
        .unwrap_or(5000);

    let behaviors = securitykg::hunting::behavior::behaviors_with_label(&kb.graph, "Malware", 3);
    eprintln!("{} threat behaviour graphs extracted", behaviors.len());

    let mut generator = AuditGenerator::new(0xCA11);
    let mut log = generator.benign_log(events, 0);
    if let Some(name) = flags.get("implant") {
        let behavior = behaviors
            .iter()
            .find(|b| b.name == name.to_lowercase())
            .ok_or_else(|| format!("no behaviour graph for {name:?}"))?;
        generator.implant(
            &mut log,
            &behavior.as_audit_steps(),
            "implant.exe",
            "host-victim",
        );
        eprintln!(
            "implanted a {} trace into {} benign events",
            behavior.name, events
        );
    }

    let hunter = securitykg::hunting::Hunter::new(behaviors);
    let reports = hunter.scan(&log);
    if reports.is_empty() {
        println!("no threats above the noise floor");
        return Ok(());
    }
    println!(
        "{:<22} {:>6} {:>10} {:>14}",
        "threat", "score", "coverage", "focus host"
    );
    for r in reports.iter().take(10) {
        println!(
            "{:<22} {:>5.2} {:>7}/{:<3} {:>14}",
            r.threat_name,
            r.score,
            r.coverage.0,
            r.coverage.1,
            r.focus_host.as_deref().unwrap_or("-")
        );
    }
    Ok(())
}
