//! `securitykg` — the command-line interface.
//!
//! ```text
//! securitykg build   --out kg.json [--articles N] [--seed S] [--ner] [--fuse] [--stats]
//! securitykg stats   --kg kg.json
//! securitykg search  --kg kg.json <keywords...>
//! securitykg cypher  --kg kg.json <query>
//! securitykg export-stix --kg kg.json --out bundle.json
//! securitykg hunt    --kg kg.json [--implant <malware>] [--events N]
//! ```
//!
//! `build` constructs the knowledge base end-to-end (simulated web → crawl →
//! pipeline → graph) and writes a self-contained snapshot; every other
//! subcommand operates on that snapshot, needing none of the build
//! machinery — the separation the paper's storage/application split implies.

use securitykg::corpus::{FaultProfile, WorldConfig};
use securitykg::crawler::SchedulerConfig;
use securitykg::hunting::AuditGenerator;
use securitykg::{
    run_durable, DurableOptions, JournalError, KnowledgeBase, SecurityKg, SystemConfig,
    TrainingConfig, DEFAULT_START_MS,
};
use std::path::Path;
use std::process::ExitCode;

/// Exit code of a `--crash-after-records` run that hit its injected crash —
/// distinct from ordinary failure so `scripts/chaos.sh` can tell "killed as
/// planned" from "actually broken".
const EXIT_INJECTED_CRASH: u8 = 9;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "build" => cmd_build(&args[1..]),
        "recover" => cmd_recover(&args[1..]),
        "stats" => cmd_stats(&args[1..]).map(|()| ExitCode::SUCCESS),
        "search" => cmd_search(&args[1..]).map(|()| ExitCode::SUCCESS),
        "cypher" => cmd_cypher(&args[1..]).map(|()| ExitCode::SUCCESS),
        "export-stix" => cmd_export_stix(&args[1..]).map(|()| ExitCode::SUCCESS),
        "hunt" => cmd_hunt(&args[1..]).map(|()| ExitCode::SUCCESS),
        "serve" => cmd_serve(&args[1..]).map(|()| ExitCode::SUCCESS),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
securitykg — automated OSCTI gathering and management

USAGE:
  securitykg build  --out <kg.json> [--articles <n>] [--seed <s>] [--ner] [--fuse] [--stats]
                    [--shards <n>]
  securitykg build  --journal <dir> [--days <n>] [--snapshot-every <n>] [--retention <n>]
                    [--chaos] [--crash-after-records <n>] [--kill-at-io <n>]
                    [--out <kg.json>] [--articles <n>] [--seed <s>] [--shards <n>]
                    [--json-payloads]
  securitykg build  --resume <dir>  [--days <n>] ... (like --journal, but the dir must exist)
  securitykg recover --dir <dir> [--verify]
  securitykg stats  --kg <kg.json>
  securitykg search --kg <kg.json> <keywords...>
  securitykg cypher --kg <kg.json> <query>
  securitykg export-stix --kg <kg.json> --out <bundle.json>
  securitykg hunt   --kg <kg.json> [--implant <malware>] [--events <n>]
  securitykg serve  --kg <kg.json> --queries <file> [--readers <n>] [--rounds <n>]
                    [--cache <entries>] [--publishes <n>] [--watch <file>] [--stats]
                    [--shards <n>]

Durable builds journal every crawl cycle into <dir> and periodically commit
incremental binary checkpoints to a checksummed segment store (--persist-dir
is an alias for --journal); re-running over the same dir resumes from the
newest checkpoint that verifies, quarantining corrupt ones. A run killed by
--crash-after-records or --kill-at-io (a kill before global durable I/O op
<n>) exits with code 9 and leaves a resumable dir. Checkpoint segment blobs
are fixed-layout KGBIN001 binary; --json-payloads writes the legacy JSON
encoding instead (recovery auto-sniffs each blob, so mixed dirs resume
cleanly). Recover inspects a dir without resuming: it lists checkpoints with
their payload format (json/bin/mixed), verifies blob checksums (plus a full
digest recomputation under --verify), and exits 0 iff one is restorable.

Serve publishes the knowledge base as an immutable snapshot and replays the
query file from <n> concurrent reader threads through the digest-keyed query
cache. With --publishes, a concurrent writer also freezes and republishes
<n> incremental epochs while the readers run, reporting freeze latency.
Query file lines (one per query; '#' comments):
  search <keywords...>
  cypher <read-only query>
  expand <entity name> [hops] [cap]

--watch registers standing queries evaluated incrementally against each
published epoch's delta (requires --publishes). Watch file lines:
  node <label|*> [where-expr over n]     e.g.  node Technique n.name CONTAINS 'T1486'
  edge <entity name>                     fires on edges touching that entity

serve --shards <n> partitions the knowledge base across <n> scatter-gather
cells by hashed entity canon key and answers every query by fan-out + merge;
with --publishes the writer republishes one shard per epoch, so readers see
mixed per-shard versions (each response carries its shard stamp vector).
build --shards <n> partitions the finished graph the same way and fails the
run unless the per-shard partial digests reassemble the printed kg-digest.";

/// Pull `--name value` out of an argument list; returns remaining positionals.
fn parse_flags(args: &[String]) -> (std::collections::HashMap<String, String>, Vec<String>) {
    let mut flags = std::collections::HashMap::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            // Boolean flags take no value when followed by another flag/end.
            let takes_value = i + 1 < args.len() && !args[i + 1].starts_with("--");
            if takes_value
                && !matches!(
                    name,
                    "ner" | "fuse" | "stats" | "chaos" | "verify" | "explain" | "json-payloads"
                )
            {
                flags.insert(name.to_owned(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(name.to_owned(), "true".to_owned());
                i += 1;
            }
        } else {
            positional.push(args[i].clone());
            i += 1;
        }
    }
    (flags, positional)
}

/// Parse an optional `--shards <n>` flag (0/absent → None).
fn parse_shards(
    flags: &std::collections::HashMap<String, String>,
) -> Result<Option<usize>, String> {
    match flags.get("shards") {
        None => Ok(None),
        Some(raw) => {
            let n: usize = raw.parse().map_err(|e| format!("--shards: {e}"))?;
            Ok((n > 0).then_some(n))
        }
    }
}

/// Partition the finished graph + index across `shards` scatter-gather cells
/// and check the cross-shard invariant: the per-shard partial digests (plus
/// the digest seed) must reassemble the canonical graph digest — the same
/// fingerprint `build` prints as `kg-digest:`. Errors (→ nonzero exit) on
/// mismatch, so chaos runs can prove post-crash resumes still partition
/// cleanly.
fn verify_shard_partition(
    graph: &securitykg::graph::GraphStore,
    search: &securitykg::search::SearchIndex<securitykg::graph::NodeId>,
    shards: usize,
) -> Result<(), String> {
    use securitykg::serve::{combined_digest, ShardSet};
    let expect = securitykg::graph_digest(graph);
    // The partitioner registers a delta cursor, so it works on a (cheap,
    // Arc-segment) clone rather than the caller's graph.
    let mut writer = graph.clone();
    let mut set = ShardSet::new(&mut writer, search, shards);
    let pins: Vec<_> = set
        .freeze_all(&mut writer, search)
        .into_iter()
        .map(std::sync::Arc::new)
        .collect();
    for pin in &pins {
        eprintln!(
            "shard {}/{}: {} node(s), partial digest {:016x}",
            pin.shard(),
            shards,
            pin.owned_count(),
            pin.partial_digest(),
        );
    }
    let combined = combined_digest(&pins);
    if combined != expect {
        return Err(format!(
            "shard partition digest {combined:016x} != kg-digest {expect:016x}"
        ));
    }
    eprintln!("shard partition verified: {shards} partial(s) reassemble kg-digest {combined:016x}");
    Ok(())
}

fn load_kb(flags: &std::collections::HashMap<String, String>) -> Result<KnowledgeBase, String> {
    let path = flags.get("kg").ok_or("missing --kg <path>")?;
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    KnowledgeBase::from_bytes(&bytes).map_err(|e| format!("parse {path}: {e}"))
}

fn build_config(flags: &std::collections::HashMap<String, String>) -> Result<SystemConfig, String> {
    let articles: usize = flags
        .get("articles")
        .map(|a| a.parse().map_err(|e| format!("--articles: {e}")))
        .transpose()?
        .unwrap_or(20);
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(0xC11);
    let faults = if flags.contains_key("chaos") {
        FaultProfile::chaos()
    } else {
        FaultProfile::default()
    };
    Ok(SystemConfig {
        world: WorldConfig {
            seed,
            ..WorldConfig::default()
        },
        articles_per_source: articles,
        seed,
        faults,
        training: TrainingConfig {
            articles: 200,
            ..TrainingConfig::default()
        },
        ..SystemConfig::default()
    })
}

/// A crash-safe `build`: journal every cycle into `dir`, snapshot
/// periodically, resume from the last intact snapshot when `dir` already
/// holds a journal. Prints the graph digest so callers can compare runs.
fn cmd_build_durable(
    flags: &std::collections::HashMap<String, String>,
    dir: &str,
) -> Result<ExitCode, String> {
    let journal = Path::new(dir).join("journal.log");
    if flags.contains_key("resume") && !journal.exists() {
        return Err(format!(
            "--resume {dir}: no journal at {}",
            journal.display()
        ));
    }
    let config = build_config(flags)?;
    let days: u64 = flags
        .get("days")
        .map(|d| d.parse().map_err(|e| format!("--days: {e}")))
        .transpose()?
        .unwrap_or(1);
    let snapshot_every: u64 = flags
        .get("snapshot-every")
        .map(|s| s.parse().map_err(|e| format!("--snapshot-every: {e}")))
        .transpose()?
        .unwrap_or(8);
    let crash_after: Option<u64> = flags
        .get("crash-after-records")
        .map(|c| c.parse().map_err(|e| format!("--crash-after-records: {e}")))
        .transpose()?;
    let kill_at_io: Option<u64> = flags
        .get("kill-at-io")
        .map(|c| c.parse().map_err(|e| format!("--kill-at-io: {e}")))
        .transpose()?;
    let retention: usize = flags
        .get("retention")
        .map(|r| r.parse().map_err(|e| format!("--retention: {e}")))
        .transpose()?
        .unwrap_or(2);
    let opts = DurableOptions {
        snapshot_every_cycles: snapshot_every,
        retention,
        crash_after_records: crash_after,
        crash_torn_tail: false,
        io_kill_after: kill_at_io,
        io_kill_torn: kill_at_io.is_some_and(|n| n % 2 == 1),
        fault_hook: None,
        json_payloads: flags.contains_key("json-payloads"),
    };
    let until_ms = DEFAULT_START_MS + days * 24 * 3_600_000;
    let report = match run_durable(
        &config,
        &SchedulerConfig::default(),
        Path::new(dir),
        until_ms,
        &opts,
    ) {
        Ok(report) => report,
        Err(JournalError::InjectedCrash) => {
            if let Some(at) = kill_at_io {
                eprintln!("injected crash at I/O op {at}; {dir} is resumable");
            } else {
                eprintln!(
                    "injected crash after {} record(s); {dir} is resumable",
                    crash_after.unwrap_or(0)
                );
            }
            return Ok(ExitCode::from(EXIT_INJECTED_CRASH));
        }
        Err(e) => return Err(format!("durable build in {dir}: {e}")),
    };
    for event in &report.recovery_events {
        eprintln!("quarantined: {event}");
    }
    if let Some(seq) = report.resumed_from_snapshot {
        eprintln!(
            "resumed from checkpoint {seq} ({} journal record(s) replayed{})",
            report.replayed_records,
            if report.torn_tail {
                ", torn tail discarded"
            } else {
                ""
            },
        );
    }
    eprintln!(
        "{} cycle(s), {} report(s) ingested, {} duplicate(s) skipped, {} record(s) appended",
        report.cycles_run,
        report.reports_ingested,
        report.skipped_duplicates,
        report.records_appended
    );
    if report.stats.breaker_opens > 0 || report.stats.reboots > 0 {
        eprintln!(
            "scheduler weathered {} reboot(s), {} breaker open(s), {} close(s)",
            report.stats.reboots, report.stats.breaker_opens, report.stats.breaker_closes
        );
    }
    if flags.contains_key("stats") {
        eprintln!("trace (newest 20 events):");
        eprint!("{}", report.trace.render_tail(20));
    }
    println!("kg-digest: {:016x}", report.kg_digest);
    if let Some(shards) = parse_shards(flags)? {
        verify_shard_partition(&report.graph, &report.search, shards)?;
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_build(args: &[String]) -> Result<ExitCode, String> {
    let (flags, _) = parse_flags(args);
    if let Some(dir) = flags
        .get("journal")
        .or_else(|| flags.get("persist-dir"))
        .or_else(|| flags.get("resume"))
    {
        return cmd_build_durable(&flags, &dir.clone());
    }
    let out = flags.get("out").ok_or("missing --out <path>")?;
    let config = build_config(&flags)?;
    let articles = config.articles_per_source;
    let seed = config.seed;
    eprintln!(
        "bootstrapping ({} articles/source, seed {seed:#x}, ner={})...",
        articles,
        flags.contains_key("ner")
    );
    let mut kg = if flags.contains_key("ner") {
        SecurityKg::bootstrap(&config)
    } else {
        SecurityKg::bootstrap_without_ner(&config)
    };
    let report = kg.crawl_and_ingest();
    eprintln!(
        "ingested {} reports → {} nodes, {} edges",
        report.reports_ingested,
        kg.graph().node_count(),
        kg.graph().edge_count()
    );
    if report.pipeline.quarantined > 0 {
        eprintln!(
            "warning: {} message(s) quarantined — see build --stats",
            report.pipeline.quarantined
        );
    }
    if flags.contains_key("stats") {
        eprint!("{}", report.pipeline.stage_report());
        eprintln!("trace (newest 20 events):");
        eprint!("{}", kg.trace().render_tail(20));
    }
    if flags.contains_key("fuse") {
        let fusion = kg.fuse();
        eprintln!(
            "fused {} alias clusters ({} nodes removed)",
            fusion.clusters_merged, fusion.nodes_removed
        );
    }
    if let Some(shards) = parse_shards(&flags)? {
        verify_shard_partition(kg.graph(), kg.search_index(), shards)?;
    }
    let bytes = kg.snapshot().map_err(|e| e.to_string())?;
    std::fs::write(out, &bytes).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("wrote {} ({} bytes)", out, bytes.len());
    Ok(ExitCode::SUCCESS)
}

/// Inspect a durable directory's segment store: list its checkpoints, walk
/// them newest-first until one verifies (blob checksums always; a full
/// graph reassembly + digest recomputation under `--verify`), and report
/// anything quarantined along the way. Exits 0 when a usable checkpoint
/// exists — even if recovery had to fall back past corrupt ones.
fn cmd_recover(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args);
    let dir = flags
        .get("dir")
        .cloned()
        .or_else(|| positional.first().cloned())
        .ok_or("missing --dir <dir>")?;
    let deep = flags.contains_key("verify");
    let summary =
        securitykg::verify_dir(Path::new(&dir), deep).map_err(|e| format!("recover {dir}: {e}"))?;
    eprintln!(
        "manifest: {} checkpoint record(s){}, {} bytes",
        summary.checkpoints.len(),
        if summary.manifest_torn {
            " (torn tail truncated)"
        } else {
            ""
        },
        summary.stats.manifest_bytes,
    );
    for (i, (seq, cycles, digest)) in summary.checkpoints.iter().enumerate() {
        let format = summary
            .payload_formats
            .get(i)
            .map(String::as_str)
            .unwrap_or("?");
        println!("checkpoint {seq}: {cycles} cycle(s), digest {digest:016x}, payload {format}");
    }
    eprintln!(
        "data: {} file(s), {} bytes on disk, {} bytes live",
        summary.stats.data_files, summary.stats.data_bytes, summary.stats.live_bytes
    );
    for event in &summary.events {
        eprintln!("quarantined: {event}");
    }
    match summary.restored {
        Some((seq, cycles, digest)) => {
            eprintln!(
                "restorable: checkpoint {seq} at {cycles} cycle(s){}",
                if deep {
                    " (digest recomputed and verified)"
                } else {
                    " (checksums verified)"
                }
            );
            println!("kg-digest: {digest:016x}");
            Ok(ExitCode::SUCCESS)
        }
        None => {
            eprintln!("no checkpoint verifies; a resume would redo from the epoch start");
            Ok(ExitCode::FAILURE)
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args);
    let kb = load_kb(&flags)?;
    println!("nodes: {}", kb.graph.node_count());
    println!("edges: {}", kb.graph.edge_count());
    println!("indexed documents: {}", kb.search.len());
    println!("\nnodes by label:");
    for (label, count) in kb.graph.label_histogram() {
        println!("  {label:<22} {count}");
    }
    Ok(())
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args);
    let kb = load_kb(&flags)?;
    if positional.is_empty() {
        return Err("missing search keywords".into());
    }
    let query = positional.join(" ");
    let hits = kb.keyword_search(&query, 10);
    if hits.is_empty() {
        println!("no results for {query:?}");
        return Ok(());
    }
    for id in hits {
        let node = kb.graph.node(id).unwrap();
        println!(
            "[{}] {} (degree {})",
            node.label,
            node.name().unwrap_or("?"),
            kb.graph.degree(id)
        );
    }
    Ok(())
}

fn cmd_cypher(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args);
    let kb = load_kb(&flags)?;
    if positional.is_empty() {
        return Err("missing cypher query".into());
    }
    let query = positional.join(" ");
    let result = kb.graph.query_readonly(&query).map_err(|e| e.to_string())?;
    println!("{}", result.columns.join(" | "));
    for row in &result.rows {
        let cells: Vec<String> = row
            .iter()
            .map(|v| match v {
                securitykg::graph::Value::Node(id) => {
                    let node = kb.graph.node(*id);
                    format!(
                        "({}:{})",
                        node.and_then(|n| n.name()).unwrap_or("?"),
                        node.map(|n| n.label.as_str()).unwrap_or("?")
                    )
                }
                other => other.to_string(),
            })
            .collect();
        println!("{}", cells.join(" | "));
    }
    eprintln!("-- {} row(s)", result.rows.len());
    Ok(())
}

fn cmd_export_stix(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args);
    let kb = load_kb(&flags)?;
    let out = flags.get("out").ok_or("missing --out <path>")?;
    let bundle = securitykg::export_bundle(&kb.graph);
    let text = serde_json::to_string_pretty(&bundle).map_err(|e| e.to_string())?;
    std::fs::write(out, text).map_err(|e| format!("write {out}: {e}"))?;
    let count = bundle["objects"].as_array().map(Vec::len).unwrap_or(0);
    eprintln!("wrote {count} STIX objects to {out}");
    Ok(())
}

/// Parse one line of a serve query file; `None` for blanks and comments.
fn parse_query_line(line: &str) -> Result<Option<securitykg::serve::Query>, String> {
    use securitykg::serve::Query;
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let (verb, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let rest = rest.trim();
    match verb {
        "search" if !rest.is_empty() => Ok(Some(Query::Search {
            q: rest.to_owned(),
            k: 10,
        })),
        "cypher" if !rest.is_empty() => Ok(Some(Query::Cypher { q: rest.to_owned() })),
        "expand" if !rest.is_empty() => {
            let mut words: Vec<&str> = rest.split_whitespace().collect();
            let mut hops = 1usize;
            let mut cap = 50usize;
            // Trailing numeric words are [hops] then [cap].
            if words.len() > 2 && words[words.len() - 1].parse::<usize>().is_ok() {
                if words[words.len() - 2].parse::<usize>().is_ok() {
                    cap = words.pop().unwrap().parse().unwrap();
                    hops = words.pop().unwrap().parse().unwrap();
                } else {
                    hops = words.pop().unwrap().parse().unwrap();
                }
            } else if words.len() == 2 && words[1].parse::<usize>().is_ok() {
                hops = words.pop().unwrap().parse().unwrap();
            }
            if words.is_empty() {
                return Err(format!("expand needs an entity name: {line:?}"));
            }
            Ok(Some(Query::Expand {
                name: words.join(" "),
                hops,
                cap,
            }))
        }
        _ => Err(format!(
            "bad query line {line:?} (want: search/cypher/expand ...)"
        )),
    }
}

/// Parse one line of a `--watch` file into a standing-query spec; `None`
/// for blanks and comments. `edge` targets are resolved against the writer
/// graph by entity name (case-insensitive).
fn parse_watch_line(
    line: &str,
    graph: &securitykg::graph::GraphStore,
) -> Result<Option<(String, securitykg::serve::WatchSpec)>, String> {
    use securitykg::serve::{CompiledPredicate, WatchSpec};
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(None);
    }
    let (verb, rest) = trimmed
        .split_once(char::is_whitespace)
        .unwrap_or((trimmed, ""));
    let rest = rest.trim();
    match verb {
        "node" if !rest.is_empty() => {
            let (label, expr) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
            let label = (label != "*").then(|| label.to_owned());
            let expr = expr.trim();
            let predicate = if expr.is_empty() {
                None
            } else {
                Some(
                    CompiledPredicate::compile(expr)
                        .map_err(|e| format!("watch line {trimmed:?}: {e}"))?,
                )
            };
            Ok(Some((
                trimmed.to_owned(),
                WatchSpec::Node { label, predicate },
            )))
        }
        "edge" if !rest.is_empty() => {
            let want = rest.to_lowercase();
            let id = graph
                .all_nodes()
                .find(|n| {
                    n.name()
                        .is_some_and(|name| name.eq_ignore_ascii_case(&want))
                })
                .map(|n| n.id)
                .ok_or_else(|| format!("watch line {trimmed:?}: no entity named {rest:?}"))?;
            Ok(Some((trimmed.to_owned(), WatchSpec::EdgeTouching(id))))
        }
        _ => Err(format!(
            "bad watch line {trimmed:?} (want: node <label|*> [expr] | edge <entity>)"
        )),
    }
}

/// Serve the knowledge base to N concurrent readers replaying a query file.
/// With `--publishes N`, a concurrent writer also republishes the snapshot
/// N times through the incremental epoch path while the readers run.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use securitykg::serve::{percentile, EpochBuilder, KgServe, Query, SubscriptionHub};
    use std::time::Instant;

    let (flags, _) = parse_flags(args);
    let kb = load_kb(&flags)?;
    let queries_path = flags.get("queries").ok_or("missing --queries <file>")?;
    let text =
        std::fs::read_to_string(queries_path).map_err(|e| format!("read {queries_path}: {e}"))?;
    let queries: Vec<Query> = text
        .lines()
        .map(parse_query_line)
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .flatten()
        .collect();
    if queries.is_empty() {
        return Err(format!("{queries_path}: no queries"));
    }

    // `--explain`: print the compiled plan for every Cypher query in the
    // file (chosen scan, index use, hop bounds) and exit without serving.
    // Plans depend only on query text, never on graph content.
    if flags.contains_key("explain") {
        for query in &queries {
            let Query::Cypher { q } = query else { continue };
            println!("{q}");
            match securitykg::graph::parse(q)
                .and_then(|ast| securitykg::graph::CompiledPlan::compile(&ast))
            {
                Ok(plan) => {
                    for line in plan.explain().lines() {
                        println!("  {line}");
                    }
                }
                Err(e) => println!("  error: {e}"),
            }
            println!();
        }
        return Ok(());
    }
    let readers: usize = flags
        .get("readers")
        .map(|n| n.parse().map_err(|e| format!("--readers: {e}")))
        .transpose()?
        .unwrap_or(4)
        .max(1);
    let rounds: usize = flags
        .get("rounds")
        .map(|n| n.parse().map_err(|e| format!("--rounds: {e}")))
        .transpose()?
        .unwrap_or(3)
        .max(1);
    let cache_entries: usize = flags
        .get("cache")
        .map(|n| n.parse().map_err(|e| format!("--cache: {e}")))
        .transpose()?
        .unwrap_or(1024);

    let publishes: usize = flags
        .get("publishes")
        .map(|n| n.parse().map_err(|e| format!("--publishes: {e}")))
        .transpose()?
        .unwrap_or(0);

    if let Some(shards) = parse_shards(&flags)? {
        if flags.contains_key("watch") {
            return Err(
                "--watch is not supported with --shards (standing queries ride the \
                 single-snapshot epoch path)"
                    .into(),
            );
        }
        return serve_sharded(kb, &queries, readers, rounds, publishes, shards);
    }

    // Keep a writer-side copy of the KB when a concurrent writer is asked
    // for (`into_serving` consumes the original).
    let mut writer_state = (publishes > 0).then(|| (kb.graph.clone(), kb.search.clone()));

    // Standing queries ride the writer's delta log, so they only make sense
    // when epochs are actually being published.
    let mut hub = None;
    let mut watches: Vec<(String, securitykg::serve::Subscription)> = Vec::new();
    if let Some(path) = flags.get("watch") {
        let Some((graph, _)) = writer_state.as_mut() else {
            return Err(
                "--watch requires --publishes > 0 (standing queries fire at epoch publishes)"
                    .into(),
            );
        };
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        let registry = SubscriptionHub::new(graph);
        for line in text.lines() {
            if let Some((label, spec)) = parse_watch_line(line, graph)? {
                let sub = registry.subscribe(spec, 1024);
                watches.push((label, sub));
            }
        }
        if watches.is_empty() {
            return Err(format!("{path}: no watch lines"));
        }
        eprintln!(
            "{} standing quer(ies) registered from {path}",
            watches.len()
        );
        hub = Some(registry);
    }
    let snapshot = kb.into_serving();
    eprintln!(
        "serving snapshot {:016x}: {} nodes, {} edges, {} indexed docs ({} build, {} µs) — {} reader(s) × {} round(s) × {} queries",
        snapshot.digest(),
        snapshot.node_count(),
        snapshot.edge_count(),
        snapshot.search_index().len(),
        snapshot.mode().label(),
        snapshot.build_us(),
        readers,
        rounds,
        queries.len()
    );
    let serve = KgServe::new(snapshot, cache_entries);

    let wall = Instant::now();
    let mut latencies: Vec<Vec<u64>> = Vec::new();
    let mut publish_us: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for reader in 0..readers {
            let serve = &serve;
            let queries = &queries;
            handles.push(scope.spawn(move || {
                let mut lat = Vec::with_capacity(rounds * queries.len());
                for round in 0..rounds {
                    // Stagger start offsets so readers don't walk in lockstep.
                    let offset = (reader + round) % queries.len();
                    for i in 0..queries.len() {
                        let query = &queries[(offset + i) % queries.len()];
                        let t = Instant::now();
                        let response = serve.execute(query);
                        lat.push(t.elapsed().as_micros() as u64);
                        std::hint::black_box(&response);
                    }
                }
                lat
            }));
        }
        let writer = writer_state.take().map(|(mut graph, search)| {
            let serve = &serve;
            let hub = hub.as_ref();
            scope.spawn(move || {
                let mut epoch = EpochBuilder::new(&mut graph);
                let target = graph.all_nodes().next().map(|n| n.id);
                let mut us = Vec::with_capacity(publishes);
                for i in 0..publishes {
                    if let Some(id) = target {
                        let _ = graph.set_node_prop(
                            id,
                            "serve_epoch",
                            securitykg::graph::Value::from(i as i64),
                        );
                    }
                    let snap = epoch.freeze(&mut graph, &search);
                    us.push(snap.build_us());
                    match hub {
                        Some(hub) => {
                            serve.publish_watched(hub, &mut graph, snap);
                        }
                        None => {
                            serve.publish(snap);
                        }
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                us
            })
        });
        for handle in handles {
            latencies.push(handle.join().expect("reader thread"));
        }
        if let Some(writer) = writer {
            publish_us = writer.join().expect("writer thread");
        }
    });
    let wall_us = wall.elapsed().as_micros().max(1) as u64;

    let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
    let total = all.len() as u64;
    let stats = serve.stats();
    serve.record_cache_report();
    serve.record_plan_cache_report();
    println!(
        "{} queries in {:.1} ms — {:.0} queries/s across {readers} reader(s)",
        total,
        wall_us as f64 / 1000.0,
        total as f64 / (wall_us as f64 / 1e6),
    );
    println!(
        "latency p50 {} µs, p99 {} µs, max {} µs",
        percentile(&mut all, 0.50),
        percentile(&mut all, 0.99),
        percentile(&mut all, 1.0)
    );
    println!(
        "cache: {} hits, {} misses, {} evictions, {} entries ({:.0}% hit rate)",
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.evictions,
        stats.cache.entries,
        100.0 * stats.cache.hits as f64 / (stats.cache.hits + stats.cache.misses).max(1) as f64
    );
    println!(
        "plan cache: {} hits, {} compiles, {} entries (plans survive epoch publishes)",
        stats.plans.hits, stats.plans.compiles, stats.plans.entries
    );
    if !publish_us.is_empty() {
        println!(
            "incremental publishes: {} × (freeze p50 {} µs, p99 {} µs) concurrent with readers",
            publish_us.len(),
            percentile(&mut publish_us, 0.50),
            percentile(&mut publish_us, 0.99),
        );
    }
    if !watches.is_empty() {
        println!("standing queries ({} subscriptions):", watches.len());
        for (label, sub) in &watches {
            let s = sub.stats();
            println!(
                "  {label:<48} matched {:>5}, delivered {:>5}, dropped {:>3}, queued {:>4}",
                s.matched, s.delivered, s.dropped, s.queued
            );
        }
    }
    if flags.contains_key("stats") {
        eprintln!("serving trace:");
        eprint!("{}", serve.trace().render_tail(20));
    }
    Ok(())
}

/// The scale-out read path behind `serve --shards <n>`: partition the KB
/// across `shards` scatter-gather cells, answer every query by fan-out +
/// merge, and (with `--publishes`) republish one shard per epoch while the
/// readers run — so readers observe mixed per-shard versions, stamped on
/// every response.
fn serve_sharded(
    kb: KnowledgeBase,
    queries: &[securitykg::serve::Query],
    readers: usize,
    rounds: usize,
    publishes: usize,
    shards: usize,
) -> Result<(), String> {
    use securitykg::serve::{combined_digest, percentile, ShardSet, ShardedServe};
    use std::time::Instant;

    let mut graph = kb.graph;
    let search = kb.search;
    let expect = securitykg::graph_digest(&graph);
    let partition = Instant::now();
    let mut set = ShardSet::new(&mut graph, &search, shards);
    let initial = set.freeze_all(&mut graph, &search);
    eprintln!(
        "sharded serving: {} cell(s) over {} node(s) ({} µs to partition), owned per shard: [{}]",
        shards,
        graph.node_count(),
        partition.elapsed().as_micros(),
        initial
            .iter()
            .map(|s| s.owned_count().to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    let serve = ShardedServe::new(initial);
    let combined = combined_digest(&serve.pin_all());
    if combined != expect {
        return Err(format!(
            "shard partition digest {combined:016x} != kg-digest {expect:016x}"
        ));
    }

    let wall = Instant::now();
    let mut latencies: Vec<Vec<u64>> = Vec::new();
    let mut publish_us: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for reader in 0..readers {
            let serve = &serve;
            handles.push(scope.spawn(move || {
                let mut lat = Vec::with_capacity(rounds * queries.len());
                for round in 0..rounds {
                    let offset = (reader + round) % queries.len();
                    for i in 0..queries.len() {
                        let query = &queries[(offset + i) % queries.len()];
                        let t = Instant::now();
                        let response = serve.execute(query);
                        lat.push(t.elapsed().as_micros() as u64);
                        debug_assert_eq!(response.vector.len(), shards);
                        std::hint::black_box(&response);
                    }
                }
                lat
            }));
        }
        let writer = (publishes > 0).then(|| {
            let serve = &serve;
            scope.spawn(move || {
                let mut graph = graph;
                let mut set = set;
                let target = graph.all_nodes().next().map(|n| n.id);
                let mut us = Vec::with_capacity(publishes);
                for i in 0..publishes {
                    if let Some(id) = target {
                        let _ = graph.set_node_prop(
                            id,
                            "serve_epoch",
                            securitykg::graph::Value::from(i as i64),
                        );
                    }
                    let snap = set.freeze_shard(i % shards, &mut graph, &search);
                    us.push(snap.build_us());
                    serve.publish_shard(snap);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                us
            })
        });
        for handle in handles {
            latencies.push(handle.join().expect("reader thread"));
        }
        if let Some(writer) = writer {
            publish_us = writer.join().expect("writer thread");
        }
    });
    let wall_us = wall.elapsed().as_micros().max(1) as u64;

    let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
    let total = all.len() as u64;
    let stats = serve.stats();
    println!(
        "{} scatter-gather queries in {:.1} ms — {:.0} queries/s across {readers} reader(s) × {shards} shard(s)",
        total,
        wall_us as f64 / 1000.0,
        total as f64 / (wall_us as f64 / 1e6),
    );
    println!(
        "latency p50 {} µs, p99 {} µs, p999 {} µs, max {} µs",
        percentile(&mut all, 0.50),
        percentile(&mut all, 0.99),
        percentile(&mut all, 0.999),
        percentile(&mut all, 1.0)
    );
    println!(
        "shard publishes {} (incl. {} initial), scatter-gather queries {}",
        stats.publishes, shards, stats.queries
    );
    if !publish_us.is_empty() {
        println!(
            "per-shard publishes: {} × (freeze p50 {} µs, p99 {} µs) concurrent with readers",
            publish_us.len(),
            percentile(&mut publish_us, 0.50),
            percentile(&mut publish_us, 0.99),
        );
        let stamps: Vec<String> = serve
            .pin_all()
            .iter()
            .map(|p| format!("{}@v{}", p.shard(), p.version()))
            .collect();
        println!("final shard stamps: [{}]", stamps.join(", "));
    }
    Ok(())
}

fn cmd_hunt(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args);
    let kb = load_kb(&flags)?;
    let events: usize = flags
        .get("events")
        .map(|e| e.parse().map_err(|x| format!("--events: {x}")))
        .transpose()?
        .unwrap_or(5000);

    let behaviors = securitykg::hunting::behavior::behaviors_with_label(&kb.graph, "Malware", 3);
    eprintln!("{} threat behaviour graphs extracted", behaviors.len());

    let mut generator = AuditGenerator::new(0xCA11);
    let mut log = generator.benign_log(events, 0);
    if let Some(name) = flags.get("implant") {
        let behavior = behaviors
            .iter()
            .find(|b| b.name == name.to_lowercase())
            .ok_or_else(|| format!("no behaviour graph for {name:?}"))?;
        generator.implant(
            &mut log,
            &behavior.as_audit_steps(),
            "implant.exe",
            "host-victim",
        );
        eprintln!(
            "implanted a {} trace into {} benign events",
            behavior.name, events
        );
    }

    let hunter = securitykg::hunting::Hunter::new(behaviors);
    let reports = hunter.scan(&log);
    if reports.is_empty() {
        println!("no threats above the noise floor");
        return Ok(());
    }
    println!(
        "{:<22} {:>6} {:>10} {:>14}",
        "threat", "score", "coverage", "focus host"
    );
    for r in reports.iter().take(10) {
        println!(
            "{:<22} {:>5.2} {:>7}/{:<3} {:>14}",
            r.threat_name,
            r.score,
            r.coverage.0,
            r.coverage.1,
            r.focus_host.as_deref().unwrap_or("-")
        );
    }
    Ok(())
}
