//! One source's crawl cycle.

use crate::state::SourceState;
use crate::CrawlerConfig;
use kg_corpus::{SimulatedWeb, SourceSpec, BODY_TERMINATOR};
use kg_ir::{combine_hashes, fnv1a64, fnv1a64_extend, FetchStatus, RawReport};
use std::fmt;

/// Why a source crawl aborted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrawlError {
    /// The failure budget was exhausted; the scheduler should reboot this
    /// crawler later.
    FailureBudgetExhausted { hard_failures: u32 },
}

impl fmt::Display for CrawlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrawlError::FailureBudgetExhausted { hard_failures } => {
                write!(f, "aborted after {hard_failures} hard fetch failures")
            }
        }
    }
}

/// Outcome of one source crawl cycle.
#[derive(Debug, Default)]
pub struct SourceOutcome {
    /// New raw report pages, in fetch order.
    pub reports: Vec<RawReport>,
    /// Distinct new report keys completed.
    pub new_reports: usize,
    /// Pages fetched (index + article), including retries.
    pub pages_fetched: usize,
    /// Transient failures retried.
    pub retries: usize,
    /// 429 responses whose Retry-After was honored.
    pub rate_limited: usize,
    /// Bodies that arrived cut off (no closing terminator) and were refetched.
    pub truncated: usize,
    /// Fetches that stayed failed after all retries.
    pub hard_failures: usize,
    /// Total simulated latency accumulated (virtual milliseconds).
    pub virtual_ms: u64,
    /// Error, if the cycle aborted early.
    pub error: Option<CrawlError>,
}

/// Whether a 200-class body actually arrived whole: every rendered page ends
/// with the document terminator, so its absence means the transfer was cut.
fn body_is_complete(body: &str) -> bool {
    body.trim_end().ends_with(BODY_TERMINATOR)
}

/// Exponential backoff wait for retry `attempt`: saturating doubling of
/// `backoff_base_ms` capped at `backoff_cap_ms`, plus a deterministic jitter
/// (up to a quarter of the wait) derived from the URL and attempt number so
/// synchronized crawlers fan out without sharing an RNG.
fn backoff_delay(url: &str, attempt: u32, config: &CrawlerConfig) -> u64 {
    let cap = config.backoff_cap_ms.max(config.backoff_base_ms).max(1);
    let mut delay = config.backoff_base_ms.max(1);
    for _ in 0..attempt {
        delay = delay.saturating_mul(2);
        if delay >= cap {
            delay = cap;
            break;
        }
    }
    let span = (delay / 4).max(1);
    let draw = fnv1a64_extend(fnv1a64(url.as_bytes()), &attempt.to_le_bytes());
    delay.saturating_add(draw % span)
}

/// Fetch a URL with retry + capped, jittered exponential backoff. A 429's
/// Retry-After overrides the exponential schedule; a body missing its
/// terminator counts as a truncated transfer and is refetched. Returns the
/// body if OK and complete.
fn fetch_with_retry(
    web: &SimulatedWeb,
    url: &str,
    now_ms: &mut u64,
    config: &CrawlerConfig,
    outcome: &mut SourceOutcome,
) -> Option<String> {
    for attempt in 0..=config.max_retries {
        let resp = web.fetch(url, *now_ms);
        outcome.pages_fetched += 1;
        outcome.virtual_ms += resp.latency_ms;
        *now_ms += resp.latency_ms;
        dilate(resp.latency_ms, config);
        let retries_left = attempt < config.max_retries;
        let wait = match resp.status {
            FetchStatus::Ok if body_is_complete(&resp.body) => return Some(resp.body),
            FetchStatus::NotFound => return None,
            FetchStatus::Ok => {
                // Truncated transfer: retry like a transient failure.
                if !retries_left {
                    outcome.hard_failures += 1;
                    return None;
                }
                outcome.truncated += 1;
                backoff_delay(url, attempt, config)
            }
            FetchStatus::RateLimited { retry_after_ms } if retries_left => {
                // Honor the server's Retry-After instead of our own schedule
                // (still jittered so a throttled fleet doesn't re-stampede).
                outcome.rate_limited += 1;
                let jitter = fnv1a64_extend(fnv1a64(url.as_bytes()), &attempt.to_le_bytes()) % 128;
                retry_after_ms.saturating_add(jitter)
            }
            s if s.is_retryable() && retries_left => backoff_delay(url, attempt, config),
            _ => {
                outcome.hard_failures += 1;
                return None;
            }
        };
        outcome.retries += 1;
        outcome.virtual_ms += wait;
        *now_ms += wait;
        dilate(wait, config);
    }
    None
}

fn dilate(virtual_ms: u64, config: &CrawlerConfig) {
    if config.time_dilation > 0.0 {
        let secs = virtual_ms as f64 * config.time_dilation / 1000.0;
        std::thread::sleep(std::time::Duration::from_secs_f64(secs));
    }
}

/// Extract `/reports/<key>` hrefs from an index page.
pub fn parse_index_links(body: &str) -> Vec<String> {
    let mut keys = Vec::new();
    let mut rest = body;
    while let Some(pos) = rest.find("href=\"/reports/") {
        let after = &rest[pos + "href=\"/reports/".len()..];
        if let Some(end) = after.find('"') {
            keys.push(after[..end].to_owned());
            rest = &after[end..];
        } else {
            break;
        }
    }
    keys
}

/// Whether an index page has an "older" pagination link.
pub fn index_has_next(body: &str) -> bool {
    body.contains("class=\"next\"")
}

/// Extract the total page count from a multi-page article's pager div.
/// Clamped to ≥ 1: a malformed pager (`data-total="0"`, unparsable or
/// missing) must never yield a report claiming zero pages.
pub fn parse_total_pages(body: &str) -> u32 {
    body.find("data-total=\"")
        .and_then(|pos| {
            let after = &body[pos + "data-total=\"".len()..];
            after.find('"').and_then(|end| after[..end].parse().ok())
        })
        .unwrap_or(1)
        .max(1)
}

/// Crawl one source incrementally: walk index pages newest-first, fetch every
/// unseen article (all of its pages), and stop at the first index page whose
/// links are all already seen.
pub fn crawl_source(
    web: &SimulatedWeb,
    spec: &SourceSpec,
    state: &mut SourceState,
    config: &CrawlerConfig,
    start_ms: u64,
) -> SourceOutcome {
    let mut outcome = SourceOutcome::default();
    let mut now_ms = start_ms;
    let mut index_page = 0usize;

    'pages: loop {
        let url = spec.index_url(index_page);
        let Some(body) = fetch_with_retry(web, &url, &mut now_ms, config, &mut outcome) else {
            if outcome.hard_failures >= config.failure_budget as usize {
                outcome.error = Some(CrawlError::FailureBudgetExhausted {
                    hard_failures: outcome.hard_failures as u32,
                });
            }
            break;
        };
        let keys = parse_index_links(&body);
        if keys.is_empty() {
            break;
        }
        let mut any_new = false;
        for key in &keys {
            if state.seen.contains(key) {
                continue;
            }
            if let Some(cap) = config.max_new_per_source {
                if outcome.new_reports >= cap {
                    break 'pages;
                }
            }
            any_new = true;
            let article_url = spec.article_url(key, 1);
            let Some(first) =
                fetch_with_retry(web, &article_url, &mut now_ms, config, &mut outcome)
            else {
                if outcome.hard_failures >= config.failure_budget as usize {
                    outcome.error = Some(CrawlError::FailureBudgetExhausted {
                        hard_failures: outcome.hard_failures as u32,
                    });
                    break 'pages;
                }
                continue;
            };
            let total_pages = parse_total_pages(&first);
            let mut pages = vec![(1u32, first)];
            let mut complete = true;
            for page in 2..=total_pages {
                let url = spec.article_url(key, page);
                match fetch_with_retry(web, &url, &mut now_ms, config, &mut outcome) {
                    Some(body) => pages.push((page, body)),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                // Leave unseen: the next cycle retries the whole article.
                continue;
            }
            // Fingerprint the whole report, not just its last page: combine
            // the per-page body hashes order-sensitively so a change to any
            // page (or a page-order anomaly) is detected on re-crawl.
            let report_hash = combine_hashes(pages.iter().map(|(_, b)| fnv1a64(b.as_bytes())));
            state.content_hashes.insert(key.clone(), report_hash);
            for (page, body) in pages {
                let raw = RawReport {
                    source: spec.id,
                    source_name: spec.name.clone(),
                    url: spec.article_url(key, page),
                    report_key: key.clone(),
                    page,
                    total_pages: Some(total_pages),
                    status: FetchStatus::Ok,
                    body,
                    fetched_at_ms: now_ms,
                };
                outcome.reports.push(raw);
            }
            state.seen.insert(key.clone());
            outcome.new_reports += 1;
        }
        if !any_new {
            // Newest-first listing: a fully-seen page means everything older
            // is seen too.
            break;
        }
        if !index_has_next(&body) {
            break;
        }
        index_page += 1;
    }

    state.last_crawl_ms = now_ms;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_corpus::{standard_sources, SimulatedWeb, World, WorldConfig};

    const FOREVER: u64 = u64::MAX / 4;

    fn web() -> SimulatedWeb {
        SimulatedWeb::new(
            World::generate(WorldConfig::tiny(3)),
            standard_sources(25),
            11,
        )
    }

    #[test]
    fn parses_index_links_and_pager() {
        let body = "<a href=\"/reports/r9\">r9</a> <a href=\"/reports/r8\">r8</a>";
        assert_eq!(parse_index_links(body), vec!["r9", "r8"]);
        assert!(!index_has_next(body));
        assert!(index_has_next(
            "<a class=\"next\" href=\"?page=next\">older</a>"
        ));
        assert_eq!(
            parse_total_pages("<div data-page=\"1\" data-total=\"2\"></div>"),
            2
        );
        assert_eq!(parse_total_pages("<p>no pager</p>"), 1);
    }

    #[test]
    fn full_crawl_fetches_every_published_article() {
        let web = web();
        let spec = web.sources()[0].clone(); // failure_rate 0
        let mut state = SourceState::default();
        let out = crawl_source(&web, &spec, &mut state, &CrawlerConfig::default(), FOREVER);
        assert!(out.error.is_none());
        assert_eq!(out.new_reports, spec.article_count);
        assert_eq!(state.seen.len(), spec.article_count);
        assert!(out.pages_fetched > spec.article_count); // indexes too
        assert!(out.virtual_ms > 0);
    }

    #[test]
    fn incremental_crawl_fetches_nothing_new() {
        let web = web();
        let spec = web.sources()[0].clone();
        let mut state = SourceState::default();
        let config = CrawlerConfig::default();
        let first = crawl_source(&web, &spec, &mut state, &config, FOREVER);
        let second = crawl_source(&web, &spec, &mut state, &config, FOREVER);
        assert!(first.new_reports > 0);
        assert_eq!(second.new_reports, 0);
        // Incremental stop: only the first index page is refetched.
        assert_eq!(second.pages_fetched, 1);
    }

    #[test]
    fn time_gated_crawl_sees_only_published() {
        let web = web();
        let spec = web.sources()[0].clone();
        // At the publish time of article 4, articles 0..=4 exist.
        let t = spec.publish_time_ms(4);
        let mut state = SourceState::default();
        let out = crawl_source(&web, &spec, &mut state, &CrawlerConfig::default(), t);
        // The crawl clock advances past t while fetching, which may publish
        // one or two more articles mid-crawl; it can never see all of them.
        assert!(out.new_reports >= 5, "{}", out.new_reports);
        assert!(out.new_reports < spec.article_count);
        // Later, the rest appear.
        let out2 = crawl_source(&web, &spec, &mut state, &CrawlerConfig::default(), FOREVER);
        assert_eq!(state.seen.len(), spec.article_count);
        assert!(out2.new_reports > 0);
    }

    #[test]
    fn retries_recover_from_transient_failures() {
        let web = web();
        // Source 3 has failure_rate 0.08.
        let spec = web.sources()[3].clone();
        assert!(spec.failure_rate > 0.0);
        let mut state = SourceState::default();
        let config = CrawlerConfig {
            backoff_base_ms: 6000,
            ..CrawlerConfig::default()
        };
        let out = crawl_source(&web, &spec, &mut state, &config, FOREVER);
        assert!(out.retries > 0, "expected transient failures to be retried");
        // With generous backoff the crawl should mostly complete.
        assert!(out.new_reports as f64 >= spec.article_count as f64 * 0.8);
    }

    #[test]
    fn multipage_reports_arrive_whole() {
        let web = web();
        // Pick a failure-free source that provably contains a 2-page,
        // non-ad article (page-count draws are per-source-seeded, so a
        // low multipage_prob source can have none).
        let spec = web
            .sources()
            .iter()
            .find(|s| {
                s.multipage_prob > 0.0
                    && s.failure_rate == 0.0
                    && (0..s.article_count).any(|i| web.page_count(s, i) == 2 && !web.is_ad(s, i))
            })
            .expect("some source with a multipage article")
            .clone();
        let mut state = SourceState::default();
        let out = crawl_source(&web, &spec, &mut state, &CrawlerConfig::default(), FOREVER);
        let multi: Vec<&RawReport> = out
            .reports
            .iter()
            .filter(|r| r.total_pages == Some(2))
            .collect();
        assert!(!multi.is_empty(), "no multi-page article crawled");
        // Every 2-page report key appears exactly twice (page 1 and 2).
        let mut counts = std::collections::HashMap::new();
        for r in &multi {
            *counts.entry(&r.report_key).or_insert(0) += 1;
        }
        assert!(counts.values().all(|&c| c == 2), "{counts:?}");
    }

    #[test]
    fn pager_clamps_to_at_least_one_page() {
        // `data-total="0"` (a malformed pager the chaos profile injects) must
        // not produce a report claiming zero pages.
        assert_eq!(
            parse_total_pages("<div data-page=\"1\" data-total=\"0\"></div>"),
            1
        );
        assert_eq!(parse_total_pages("<div data-total=\"\"></div>"), 1);
        assert_eq!(parse_total_pages("<div data-total=\"-3\"></div>"), 1);
        assert_eq!(parse_total_pages("<div data-total=\"seven\"></div>"), 1);
        assert_eq!(parse_total_pages("<div data-total=\"4"), 1); // unterminated
        assert_eq!(parse_total_pages("<div data-total=\"3\"></div>"), 3);
    }

    #[test]
    fn backoff_saturates_at_cap_and_never_overflows() {
        let config = CrawlerConfig {
            backoff_base_ms: 200,
            backoff_cap_ms: 5_000,
            ..CrawlerConfig::default()
        };
        let url = "https://securelist.example/reports/r0";
        for attempt in 0..256 {
            let d = backoff_delay(url, attempt, &config);
            assert!(d >= 200, "attempt {attempt}: {d}");
            assert!(d <= 5_000 + 5_000 / 4, "attempt {attempt}: {d}");
        }
        // The old `base << attempt` panicked (debug) or wrapped here.
        assert!(backoff_delay(url, 200, &config) >= 5_000);
        // Deterministic, and jitter varies by URL.
        assert_eq!(
            backoff_delay(url, 7, &config),
            backoff_delay(url, 7, &config)
        );
        assert_ne!(
            backoff_delay(url, 7, &config),
            backoff_delay("https://other.example/reports/r0", 7, &config)
        );
    }

    #[test]
    fn rate_limits_are_honored_and_counted() {
        use kg_corpus::FaultProfile;
        let web = SimulatedWeb::with_faults(
            World::generate(WorldConfig::tiny(3)),
            standard_sources(25),
            11,
            FaultProfile {
                rate_limit_rate: 0.4,
                retry_after_ms: 5_000, // past the fault window, so retries clear
                ..FaultProfile::default()
            },
        );
        let spec = web.sources()[0].clone(); // no intrinsic failures
        let mut state = SourceState::default();
        let out = crawl_source(&web, &spec, &mut state, &CrawlerConfig::default(), FOREVER);
        assert!(out.rate_limited > 0, "no 429s observed: {out:?}");
        // Waiting out Retry-After recovers most of the catalog.
        assert!(
            out.new_reports as f64 >= spec.article_count as f64 * 0.8,
            "{} of {}",
            out.new_reports,
            spec.article_count
        );
    }

    #[test]
    fn truncated_bodies_are_refetched_never_delivered() {
        use kg_corpus::FaultProfile;
        let web = SimulatedWeb::with_faults(
            World::generate(WorldConfig::tiny(3)),
            standard_sources(25),
            11,
            FaultProfile {
                truncate_rate: 0.5,
                ..FaultProfile::default()
            },
        );
        let spec = web.sources()[0].clone();
        let mut state = SourceState::default();
        let config = CrawlerConfig {
            backoff_base_ms: 6_000, // push retries into the next fault window
            ..CrawlerConfig::default()
        };
        let out = crawl_source(&web, &spec, &mut state, &config, FOREVER);
        assert!(out.truncated > 0, "no truncations observed: {out:?}");
        for report in &out.reports {
            assert!(
                report.body.trim_end().ends_with("</html>"),
                "truncated body delivered: {}",
                report.url
            );
        }
    }

    #[test]
    fn multipage_content_hash_covers_every_page() {
        let web = web();
        let spec = web
            .sources()
            .iter()
            .find(|s| {
                s.multipage_prob > 0.0
                    && s.failure_rate == 0.0
                    && (0..s.article_count).any(|i| web.page_count(s, i) == 2 && !web.is_ad(s, i))
            })
            .expect("some source with a multipage article")
            .clone();
        let mut state = SourceState::default();
        let out = crawl_source(&web, &spec, &mut state, &CrawlerConfig::default(), FOREVER);
        let key = out
            .reports
            .iter()
            .find(|r| r.total_pages == Some(2))
            .map(|r| r.report_key.clone())
            .expect("a multipage report");
        let mut pages: Vec<&RawReport> =
            out.reports.iter().filter(|r| r.report_key == key).collect();
        pages.sort_by_key(|r| r.page);
        let expected = combine_hashes(pages.iter().map(|r| r.content_hash()));
        let stored = state.content_hashes[&key];
        assert_eq!(stored, expected);
        // The old bug: the stored hash was just the last page's.
        assert_ne!(stored, pages.last().unwrap().content_hash());
        assert_ne!(stored, pages[0].content_hash());
    }

    #[test]
    fn max_new_per_source_caps_work() {
        let web = web();
        let spec = web.sources()[0].clone();
        let mut state = SourceState::default();
        let config = CrawlerConfig {
            max_new_per_source: Some(3),
            ..CrawlerConfig::default()
        };
        let out = crawl_source(&web, &spec, &mut state, &config, FOREVER);
        assert_eq!(out.new_reports, 3);
    }
}
