//! Incremental crawl state.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Per-source crawl state.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SourceState {
    /// Report keys already fetched successfully.
    pub seen: HashSet<String>,
    /// Simulated time of the last completed crawl cycle.
    pub last_crawl_ms: u64,
    /// Content hashes by key, for change detection on re-crawl.
    pub content_hashes: HashMap<String, u64>,
}

/// Crawl state across all sources, keyed by source name. Serialisable so an
/// interrupted deployment resumes instead of re-fetching 120K reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CrawlState {
    sources: HashMap<String, SourceState>,
}

impl CrawlState {
    /// Empty state (a fresh deployment).
    pub fn new() -> Self {
        Self::default()
    }

    /// State for one source, created on first access.
    pub fn source_mut(&mut self, name: &str) -> &mut SourceState {
        self.sources.entry(name.to_owned()).or_default()
    }

    /// Read-only view of one source's state.
    pub fn source(&self, name: &str) -> Option<&SourceState> {
        self.sources.get(name)
    }

    /// Total seen reports across sources.
    pub fn total_seen(&self) -> usize {
        self.sources.values().map(|s| s.seen.len()).sum()
    }

    /// Serialise to JSON bytes.
    pub fn to_bytes(&self) -> Result<Vec<u8>, serde_json::Error> {
        serde_json::to_vec(self)
    }

    /// Load from JSON bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        serde_json::from_slice(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trips() {
        let mut s = CrawlState::new();
        s.source_mut("securelist").seen.insert("r0".into());
        s.source_mut("securelist").last_crawl_ms = 42;
        s.source_mut("talos-intel").seen.insert("r5".into());
        let back = CrawlState::from_bytes(&s.to_bytes().unwrap()).unwrap();
        assert_eq!(back.total_seen(), 2);
        assert!(back.source("securelist").unwrap().seen.contains("r0"));
        assert_eq!(back.source("securelist").unwrap().last_crawl_ms, 42);
        assert!(back.source("missing").is_none());
    }
}
