//! The OSCTI crawler framework (paper §2.2).
//!
//! "We built a crawler framework that has 40+ crawlers ... The crawler
//! framework schedules the periodic execution and reboot after failure for
//! different crawlers in an efficient and robust manner. It also has a
//! multi-threaded design ..., achieving a throughput of approximately 350+
//! reports per minute at a single deployed host."
//!
//! - [`state`] — per-source incremental state (seen report keys, last crawl
//!   time), serialisable so crawls resume across process restarts.
//! - [`fetch`] — one source's crawl logic: walk index pages newest-first,
//!   stop at the first fully-seen page, fetch new articles (all pages of
//!   multi-page reports), retry transient failures with exponential backoff.
//! - [`pool`] — the multi-threaded crawl: a worker pool draining a queue of
//!   per-source jobs, with a virtual-time dilation knob so benchmarks can
//!   run the simulated latencies faster than wall-clock.
//! - [`scheduler`] — periodic execution and reboot-after-failure: a
//!   time-ordered job heap re-running each source at its cadence and
//!   rescheduling aborted crawls after a reboot delay.

pub mod fetch;
pub mod pool;
pub mod scheduler;
pub mod state;

pub use fetch::{crawl_source, CrawlError, SourceOutcome};
pub use pool::{crawl_all, CrawlMetrics};
pub use scheduler::{
    Breaker, BreakerEvent, BreakerState, FiredCycle, QueueEntry, RebootEvent, Scheduler,
    SchedulerCheckpoint, SchedulerConfig, SchedulerStats, MAX_BREAKER_EVENTS, MAX_REBOOT_EVENTS,
};
pub use state::{CrawlState, SourceState};

use serde::{Deserialize, Serialize};

/// Crawler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrawlerConfig {
    /// Worker threads in the pool.
    pub threads: usize,
    /// Retries per fetch before counting a hard failure.
    pub max_retries: u32,
    /// Base backoff; retry `i` waits roughly `backoff_base_ms * 2^i`
    /// (virtual), saturating at [`CrawlerConfig::backoff_cap_ms`] plus a
    /// deterministic jitter.
    pub backoff_base_ms: u64,
    /// Ceiling on a single backoff wait. Doubling saturates here instead of
    /// overflowing for large retry counts.
    #[serde(default)]
    pub backoff_cap_ms: u64,
    /// Consecutive hard failures before a source crawl aborts (and the
    /// scheduler reboots it later).
    pub failure_budget: u32,
    /// Wall-clock seconds slept per simulated millisecond of latency.
    /// `0.0` runs at full speed (pure virtual time) — the default for tests;
    /// benches use small positive values to exercise real thread timing.
    pub time_dilation: f64,
    /// Cap on new articles per source per crawl cycle (None = no cap).
    pub max_new_per_source: Option<usize>,
}

impl Default for CrawlerConfig {
    fn default() -> Self {
        CrawlerConfig {
            threads: 8,
            max_retries: 3,
            backoff_base_ms: 200,
            backoff_cap_ms: 30_000,
            failure_budget: 10,
            time_dilation: 0.0,
            max_new_per_source: None,
        }
    }
}
