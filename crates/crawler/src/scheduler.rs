//! Periodic execution and reboot-after-failure (paper §2.2: "The crawler
//! framework schedules the periodic execution and reboot after failure for
//! different crawlers in an efficient and robust manner").
//!
//! The scheduler runs in *simulated* time: a min-heap of `(due_ms, source)`
//! jobs. Each firing runs one incremental crawl cycle for that source; a
//! successful cycle reschedules at `interval_ms`, an aborted cycle (failure
//! budget exhausted) reschedules after the shorter `reboot_delay_ms` — the
//! "reboot". This makes long-horizon runs (E2's 120K-report growth curve)
//! computable in seconds.

use crate::fetch::crawl_source;
use crate::state::CrawlState;
use crate::CrawlerConfig;
use kg_corpus::SimulatedWeb;
use kg_ir::RawReport;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Scheduler parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Re-crawl cadence per source (simulated ms).
    pub interval_ms: u64,
    /// Delay before rebooting an aborted crawler (simulated ms).
    pub reboot_delay_ms: u64,
    /// Consecutive aborted cycles before a source's circuit breaker opens.
    /// `0` disables the breaker (the pre-breaker reboot-only behaviour, and
    /// what configs serialized before this field existed deserialize to).
    #[serde(default)]
    pub breaker_threshold: u32,
    /// How long an open breaker parks a source before the half-open probe.
    #[serde(default)]
    pub breaker_cooldown_ms: u64,
    /// Crawler behaviour during each cycle.
    pub crawler: CrawlerConfig,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            interval_ms: 6 * 3_600_000,
            reboot_delay_ms: 600_000,
            breaker_threshold: 3,
            breaker_cooldown_ms: 4 * 3_600_000,
            crawler: CrawlerConfig::default(),
        }
    }
}

/// Aggregate statistics of a scheduler run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    pub cycles_run: usize,
    pub reboots: usize,
    pub new_reports: usize,
    pub pages_fetched: usize,
    /// The first [`MAX_REBOOT_EVENTS`] reboots, with source and cause;
    /// `reboots` keeps counting past the cap.
    #[serde(default)]
    pub reboot_events: Vec<RebootEvent>,
    /// Circuit-breaker transitions into `Open` (trips and failed probes).
    #[serde(default)]
    pub breaker_opens: usize,
    /// Circuit-breaker recoveries (`HalfOpen` probe succeeded).
    #[serde(default)]
    pub breaker_closes: usize,
    /// The first [`MAX_BREAKER_EVENTS`] breaker transitions, in firing order;
    /// `breaker_opens`/`breaker_closes` keep counting past the cap.
    #[serde(default)]
    pub breaker_events: Vec<BreakerEvent>,
}

/// At most this many reboot events keep their details.
pub const MAX_REBOOT_EVENTS: usize = 256;

/// At most this many breaker transitions keep their details.
pub const MAX_BREAKER_EVENTS: usize = 256;

/// One scheduler reboot: which source crawler aborted, when, and why.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebootEvent {
    pub source: String,
    /// Simulated time the aborted cycle fired.
    pub due_ms: u64,
    pub error: String,
}

/// Circuit-breaker position for one source crawler.
///
/// `Closed` (healthy) → `Open` after [`SchedulerConfig::breaker_threshold`]
/// consecutive aborted cycles (the source is parked for
/// [`SchedulerConfig::breaker_cooldown_ms`] instead of being rebooted hot) →
/// `HalfOpen` when the cooldown expires (the next cycle is a probe) → back to
/// `Closed` on a successful probe or `Open` on a failed one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

// Manual impl: the vendored serde_derive doesn't parse variant attributes,
// so `#[derive(Default)]` + `#[default]` is off the table.
#[allow(clippy::derivable_impls)]
impl Default for BreakerState {
    fn default() -> Self {
        BreakerState::Closed
    }
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open => write!(f, "open"),
            BreakerState::HalfOpen => write!(f, "half-open"),
        }
    }
}

/// Per-source circuit breaker: position plus the abort streak driving it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breaker {
    pub state: BreakerState,
    /// Aborted cycles since the last success.
    pub consecutive_failures: u32,
}

/// One circuit-breaker transition, for `SchedulerStats` and the trace log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerEvent {
    pub source: String,
    /// Simulated time of the cycle that caused the transition.
    pub at_ms: u64,
    pub from: BreakerState,
    pub to: BreakerState,
    /// Human-readable cause ("3 consecutive aborts", "probe succeeded", …).
    pub reason: String,
}

/// One queued job, in serialisable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueEntry {
    pub due_ms: u64,
    /// Index into the web's source registry.
    pub source: usize,
}

/// The scheduler's complete control state, serialisable so a process can be
/// killed and a successor can resume the exact pre-crash frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerCheckpoint {
    pub config: SchedulerConfig,
    /// The due-heap, flattened in ascending (due, source) order.
    pub queue: Vec<QueueEntry>,
    pub state: CrawlState,
    pub stats: SchedulerStats,
    /// Per-source breakers, indexed like the source registry.
    #[serde(default)]
    pub breakers: Vec<Breaker>,
}

impl SchedulerCheckpoint {
    /// Serialise to JSON bytes.
    pub fn to_bytes(&self) -> Result<Vec<u8>, serde_json::Error> {
        serde_json::to_vec(self)
    }

    /// Load from JSON bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, serde_json::Error> {
        serde_json::from_slice(bytes)
    }
}

/// What one scheduler firing did. The reports are for the pipeline; the rest
/// is what the durable journal records about the cycle.
#[derive(Debug)]
pub struct FiredCycle {
    pub source: String,
    pub source_idx: usize,
    /// When the job fired (simulated ms).
    pub due_ms: u64,
    /// New raw report pages, in fetch order.
    pub reports: Vec<RawReport>,
    pub new_reports: usize,
    pub pages_fetched: usize,
    /// Cause of the abort, if the cycle aborted.
    pub error: Option<String>,
}

/// The periodic crawl scheduler.
pub struct Scheduler<'w> {
    web: &'w SimulatedWeb,
    config: SchedulerConfig,
    /// Min-heap of (due time, source index).
    queue: BinaryHeap<Reverse<(u64, usize)>>,
    /// Per-source circuit breakers, indexed like the source registry.
    breakers: Vec<Breaker>,
    pub state: CrawlState,
    pub stats: SchedulerStats,
}

impl<'w> Scheduler<'w> {
    /// Create a scheduler with every source due at `start_ms`.
    pub fn new(web: &'w SimulatedWeb, config: SchedulerConfig, start_ms: u64) -> Self {
        let queue = (0..web.sources().len())
            .map(|i| Reverse((start_ms, i)))
            .collect();
        Scheduler {
            web,
            config,
            queue,
            breakers: vec![Breaker::default(); web.sources().len()],
            state: CrawlState::new(),
            stats: SchedulerStats::default(),
        }
    }

    /// Rebuild a scheduler from a [`SchedulerCheckpoint`] over the same web.
    /// The pop order of the rebuilt heap matches the original exactly:
    /// `(due, source)` pairs are unique, so their ordering is total.
    pub fn restore(web: &'w SimulatedWeb, checkpoint: SchedulerCheckpoint) -> Self {
        let mut breakers = checkpoint.breakers;
        breakers.resize(web.sources().len(), Breaker::default());
        Scheduler {
            web,
            config: checkpoint.config,
            queue: checkpoint
                .queue
                .into_iter()
                .map(|e| Reverse((e.due_ms, e.source)))
                .collect(),
            breakers,
            state: checkpoint.state,
            stats: checkpoint.stats,
        }
    }

    /// Snapshot the complete control state for durable storage.
    pub fn checkpoint(&self) -> SchedulerCheckpoint {
        let mut queue: Vec<QueueEntry> = self
            .queue
            .iter()
            .map(|&Reverse((due_ms, source))| QueueEntry { due_ms, source })
            .collect();
        queue.sort_by_key(|e| (e.due_ms, e.source));
        SchedulerCheckpoint {
            config: self.config.clone(),
            queue,
            state: self.state.clone(),
            stats: self.stats.clone(),
            breakers: self.breakers.clone(),
        }
    }

    /// Next due time, if any job is queued.
    pub fn next_due(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse((t, _))| *t)
    }

    /// The breaker for source `idx` (panics on an out-of-range index).
    pub fn breaker(&self, idx: usize) -> Breaker {
        self.breakers[idx]
    }

    fn record_transition(&mut self, source_idx: usize, at_ms: u64, to: BreakerState, reason: &str) {
        let from = self.breakers[source_idx].state;
        self.breakers[source_idx].state = to;
        match to {
            BreakerState::Open => self.stats.breaker_opens += 1,
            BreakerState::Closed if from == BreakerState::HalfOpen => {
                self.stats.breaker_closes += 1
            }
            _ => {}
        }
        if self.stats.breaker_events.len() < MAX_BREAKER_EVENTS {
            self.stats.breaker_events.push(BreakerEvent {
                source: self.web.sources()[source_idx].name.clone(),
                at_ms,
                from,
                to,
                reason: reason.to_owned(),
            });
        }
    }

    /// Fire the next job if it is due by `until_ms`: run one crawl cycle,
    /// update stats and the source's circuit breaker, and reschedule. This is
    /// the granularity at which the durable journal records progress.
    pub fn step_due(&mut self, until_ms: u64) -> Option<FiredCycle> {
        let &Reverse((due, source_idx)) = self.queue.peek()?;
        if due > until_ms {
            return None;
        }
        self.queue.pop();

        // An open breaker firing means its cooldown expired: this cycle is
        // the half-open probe.
        if self.breakers[source_idx].state == BreakerState::Open {
            self.record_transition(source_idx, due, BreakerState::HalfOpen, "cooldown expired");
        }

        let spec = &self.web.sources()[source_idx];
        let name = spec.name.clone();
        let source_state = self.state.source_mut(&name);
        let outcome = crawl_source(self.web, spec, source_state, &self.config.crawler, due);
        self.stats.cycles_run += 1;
        self.stats.new_reports += outcome.new_reports;
        self.stats.pages_fetched += outcome.pages_fetched;

        let elapsed = outcome.virtual_ms.max(1);
        let breaker_enabled = self.config.breaker_threshold > 0;
        let next_due = if let Some(error) = &outcome.error {
            self.stats.reboots += 1;
            if self.stats.reboot_events.len() < MAX_REBOOT_EVENTS {
                self.stats.reboot_events.push(RebootEvent {
                    source: name.clone(),
                    due_ms: due,
                    error: error.to_string(),
                });
            }
            self.breakers[source_idx].consecutive_failures += 1;
            let streak = self.breakers[source_idx].consecutive_failures;
            match self.breakers[source_idx].state {
                BreakerState::HalfOpen => {
                    self.record_transition(source_idx, due, BreakerState::Open, "probe failed");
                    due + elapsed + self.config.breaker_cooldown_ms
                }
                BreakerState::Closed
                    if breaker_enabled && streak >= self.config.breaker_threshold =>
                {
                    let reason = format!("{streak} consecutive aborts");
                    self.record_transition(source_idx, due, BreakerState::Open, &reason);
                    due + elapsed + self.config.breaker_cooldown_ms
                }
                _ => due + elapsed + self.config.reboot_delay_ms,
            }
        } else {
            self.breakers[source_idx].consecutive_failures = 0;
            if self.breakers[source_idx].state == BreakerState::HalfOpen {
                self.record_transition(source_idx, due, BreakerState::Closed, "probe succeeded");
            }
            due + elapsed + self.config.interval_ms
        };
        self.queue.push(Reverse((next_due, source_idx)));

        Some(FiredCycle {
            source: name,
            source_idx,
            due_ms: due,
            reports: outcome.reports,
            new_reports: outcome.new_reports,
            pages_fetched: outcome.pages_fetched,
            error: outcome.error.map(|e| e.to_string()),
        })
    }

    /// Run all jobs due up to and including `until_ms`, collecting new raw
    /// reports. Jobs rescheduled beyond `until_ms` stay queued.
    pub fn run_until(&mut self, until_ms: u64) -> Vec<RawReport> {
        let mut collected = Vec::new();
        while let Some(fired) = self.step_due(until_ms) {
            collected.extend(fired.reports);
        }
        collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_corpus::{standard_sources, SimulatedWeb, World, WorldConfig};

    fn web(articles: usize) -> SimulatedWeb {
        SimulatedWeb::new(
            World::generate(WorldConfig::tiny(3)),
            standard_sources(articles),
            11,
        )
    }

    #[test]
    fn periodic_cycles_pick_up_new_publications() {
        let web = web(20);
        let start = web.sources()[0].publish_time_ms(0);
        let mut sched = Scheduler::new(
            &web,
            SchedulerConfig {
                interval_ms: 3_600_000,
                ..SchedulerConfig::default()
            },
            start,
        );
        // After the first horizon some articles exist.
        let one_day = start + 24 * 3_600_000;
        let first = sched.run_until(one_day);
        let after_day = sched.state.total_seen();
        assert!(!first.is_empty());
        // A week later, strictly more.
        let one_week = start + 7 * 24 * 3_600_000;
        sched.run_until(one_week);
        assert!(sched.state.total_seen() > after_day);
        assert!(sched.stats.cycles_run > 42, "{:?}", sched.stats);
    }

    #[test]
    fn growth_is_monotone_and_converges_to_catalog() {
        let web = web(6);
        let start = 1_500_000_000_000;
        let mut sched = Scheduler::new(&web, SchedulerConfig::default(), start);
        let mut last = 0;
        for day in 1..40 {
            sched.run_until(start + day * 24 * 3_600_000);
            let seen = sched.state.total_seen();
            assert!(seen >= last);
            last = seen;
        }
        let total_catalog: usize = web.sources().iter().map(|s| s.article_count).sum();
        // Everything published by the horizon is eventually crawled. Ads are
        // "seen" too (fetched then discarded downstream), so full coverage.
        let published: usize = web
            .sources()
            .iter()
            .map(|s| {
                (0..s.article_count)
                    .take_while(|&i| s.publish_time_ms(i) <= start + 39 * 24 * 3_600_000)
                    .count()
            })
            .sum();
        assert!(sched.state.total_seen() >= published.min(total_catalog) * 9 / 10);
    }

    #[test]
    fn reboots_happen_for_flaky_sources_under_tight_budget() {
        let web = web(30);
        let config = SchedulerConfig {
            crawler: CrawlerConfig {
                max_retries: 0,
                failure_budget: 1,
                ..CrawlerConfig::default()
            },
            ..SchedulerConfig::default()
        };
        let start = 1_600_000_000_000;
        let mut sched = Scheduler::new(&web, config, start);
        sched.run_until(start + 14 * 24 * 3_600_000);
        assert!(sched.stats.reboots > 0, "{:?}", sched.stats);
        // Despite reboots, crawling makes progress.
        assert!(sched.state.total_seen() > 0);
        // Every reboot up to the capture cap is recorded with its cause.
        assert_eq!(
            sched.stats.reboot_events.len(),
            sched.stats.reboots.min(MAX_REBOOT_EVENTS),
            "{:?}",
            sched.stats
        );
        let event = &sched.stats.reboot_events[0];
        assert!(!event.source.is_empty());
        assert!(event.due_ms >= start);
        assert!(event.error.contains("fetch failures"), "{event:?}");
        // The event log round-trips with the stats.
        let json = serde_json::to_string(&sched.stats).unwrap();
        let back: SchedulerStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sched.stats);
    }

    fn chaos_web(articles: usize) -> SimulatedWeb {
        use kg_corpus::FaultProfile;
        SimulatedWeb::with_faults(
            World::generate(WorldConfig::tiny(3)),
            standard_sources(articles),
            11,
            FaultProfile::chaos(),
        )
    }

    #[test]
    fn breaker_trips_probes_and_recovers() {
        let web = chaos_web(30);
        let config = SchedulerConfig {
            crawler: CrawlerConfig {
                max_retries: 0,
                failure_budget: 1,
                ..CrawlerConfig::default()
            },
            breaker_threshold: 2,
            breaker_cooldown_ms: 2 * 3_600_000,
            ..SchedulerConfig::default()
        };
        let start = 1_600_000_000_000;
        let mut sched = Scheduler::new(&web, config, start);
        sched.run_until(start + 30 * 24 * 3_600_000);
        assert!(sched.stats.breaker_opens > 0, "{:?}", sched.stats);
        assert!(sched.stats.breaker_closes > 0, "{:?}", sched.stats);
        // Transition log is consistent: every event chains from the previous
        // state of its source, and opens/closes tally with the counters.
        let mut last: std::collections::HashMap<&str, BreakerState> = Default::default();
        for event in &sched.stats.breaker_events {
            let prev = last
                .get(event.source.as_str())
                .copied()
                .unwrap_or(BreakerState::Closed);
            assert_eq!(event.from, prev, "{event:?}");
            assert_ne!(event.from, event.to, "{event:?}");
            last.insert(event.source.as_str(), event.to);
        }
        if sched.stats.breaker_events.len() < MAX_BREAKER_EVENTS {
            let opens = sched
                .stats
                .breaker_events
                .iter()
                .filter(|e| e.to == BreakerState::Open)
                .count();
            assert_eq!(opens, sched.stats.breaker_opens);
        }
        // Breakers don't starve the catalog: progress continues.
        assert!(sched.state.total_seen() > 0);
        // Stats (including breaker fields) survive serialisation.
        let json = serde_json::to_string(&sched.stats).unwrap();
        let back: SchedulerStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sched.stats);
    }

    #[test]
    fn breaker_disabled_when_threshold_zero() {
        let web = chaos_web(20);
        let config = SchedulerConfig {
            crawler: CrawlerConfig {
                max_retries: 0,
                failure_budget: 1,
                ..CrawlerConfig::default()
            },
            breaker_threshold: 0,
            ..SchedulerConfig::default()
        };
        let start = 1_600_000_000_000;
        let mut sched = Scheduler::new(&web, config, start);
        sched.run_until(start + 14 * 24 * 3_600_000);
        assert!(sched.stats.reboots > 0, "{:?}", sched.stats);
        assert_eq!(sched.stats.breaker_opens, 0);
        assert!(sched.stats.breaker_events.is_empty());
    }

    #[test]
    fn flaky_sources_with_reboots_still_converge_to_catalog() {
        // Elevated chaos faults + a tight failure budget: cycles abort,
        // breakers trip — and coverage still converges to what's published.
        let web = chaos_web(6);
        let config = SchedulerConfig {
            crawler: CrawlerConfig {
                failure_budget: 2,
                ..CrawlerConfig::default()
            },
            breaker_threshold: 2,
            breaker_cooldown_ms: 2 * 3_600_000,
            ..SchedulerConfig::default()
        };
        let start = 1_500_000_000_000;
        let mut sched = Scheduler::new(&web, config, start);
        let horizon = start + 60 * 24 * 3_600_000;
        sched.run_until(horizon);
        assert!(sched.stats.reboots > 0, "{:?}", sched.stats);
        let catalog: usize = web.sources().iter().map(|s| s.article_count).sum();
        let published: usize = web
            .sources()
            .iter()
            .map(|s| {
                (0..s.article_count)
                    .take_while(|&i| s.publish_time_ms(i) <= horizon)
                    .count()
            })
            .sum();
        assert!(
            sched.state.total_seen() >= published.min(catalog) * 9 / 10,
            "seen {} of {} published",
            sched.state.total_seen(),
            published
        );
    }

    #[test]
    fn resumed_scheduler_replays_the_same_report_stream() {
        let web = chaos_web(12);
        let config = SchedulerConfig {
            interval_ms: 3_600_000,
            breaker_threshold: 2,
            crawler: CrawlerConfig {
                max_retries: 1,
                failure_budget: 2,
                ..CrawlerConfig::default()
            },
            ..SchedulerConfig::default()
        };
        let start = 1_500_000_000_000;
        let mid = start + 5 * 24 * 3_600_000;
        let end = start + 12 * 24 * 3_600_000;

        // Uninterrupted run, split only by the collection call.
        let mut direct = Scheduler::new(&web, config.clone(), start);
        direct.run_until(mid);
        let checkpoint_bytes = direct.checkpoint().to_bytes().unwrap();
        let direct_rest = direct.run_until(end);

        // Resume from the serialized checkpoint: identical stream, stats and
        // final control state.
        let checkpoint = SchedulerCheckpoint::from_bytes(&checkpoint_bytes).unwrap();
        let mut resumed = Scheduler::restore(&web, checkpoint);
        let resumed_rest = resumed.run_until(end);

        assert_eq!(direct_rest, resumed_rest);
        assert_eq!(direct.stats, resumed.stats);
        assert_eq!(direct.checkpoint(), resumed.checkpoint());
    }

    #[test]
    fn step_due_matches_run_until() {
        let web = web(10);
        let start = 1_500_000_000_000;
        let end = start + 3 * 24 * 3_600_000;
        let mut whole = Scheduler::new(&web, SchedulerConfig::default(), start);
        let bulk = whole.run_until(end);
        let mut stepped = Scheduler::new(&web, SchedulerConfig::default(), start);
        let mut collected = Vec::new();
        while let Some(fired) = stepped.step_due(end) {
            assert!(fired.reports.len() >= fired.new_reports);
            collected.extend(fired.reports);
        }
        assert_eq!(bulk, collected);
        assert_eq!(whole.stats, stepped.stats);
    }

    #[test]
    fn next_due_tracks_queue() {
        let web = web(2);
        let mut sched = Scheduler::new(&web, SchedulerConfig::default(), 100);
        assert_eq!(sched.next_due(), Some(100));
        sched.run_until(100);
        assert!(sched.next_due().unwrap() > 100);
    }
}
