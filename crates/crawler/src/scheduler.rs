//! Periodic execution and reboot-after-failure (paper §2.2: "The crawler
//! framework schedules the periodic execution and reboot after failure for
//! different crawlers in an efficient and robust manner").
//!
//! The scheduler runs in *simulated* time: a min-heap of `(due_ms, source)`
//! jobs. Each firing runs one incremental crawl cycle for that source; a
//! successful cycle reschedules at `interval_ms`, an aborted cycle (failure
//! budget exhausted) reschedules after the shorter `reboot_delay_ms` — the
//! "reboot". This makes long-horizon runs (E2's 120K-report growth curve)
//! computable in seconds.

use crate::fetch::crawl_source;
use crate::state::CrawlState;
use crate::CrawlerConfig;
use kg_corpus::SimulatedWeb;
use kg_ir::RawReport;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Scheduler parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedulerConfig {
    /// Re-crawl cadence per source (simulated ms).
    pub interval_ms: u64,
    /// Delay before rebooting an aborted crawler (simulated ms).
    pub reboot_delay_ms: u64,
    /// Crawler behaviour during each cycle.
    pub crawler: CrawlerConfig,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            interval_ms: 6 * 3_600_000,
            reboot_delay_ms: 600_000,
            crawler: CrawlerConfig::default(),
        }
    }
}

/// Aggregate statistics of a scheduler run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    pub cycles_run: usize,
    pub reboots: usize,
    pub new_reports: usize,
    pub pages_fetched: usize,
    /// The first [`MAX_REBOOT_EVENTS`] reboots, with source and cause;
    /// `reboots` keeps counting past the cap.
    #[serde(default)]
    pub reboot_events: Vec<RebootEvent>,
}

/// At most this many reboot events keep their details.
pub const MAX_REBOOT_EVENTS: usize = 256;

/// One scheduler reboot: which source crawler aborted, when, and why.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebootEvent {
    pub source: String,
    /// Simulated time the aborted cycle fired.
    pub due_ms: u64,
    pub error: String,
}

/// The periodic crawl scheduler.
pub struct Scheduler<'w> {
    web: &'w SimulatedWeb,
    config: SchedulerConfig,
    /// Min-heap of (due time, source index).
    queue: BinaryHeap<Reverse<(u64, usize)>>,
    pub state: CrawlState,
    pub stats: SchedulerStats,
}

impl<'w> Scheduler<'w> {
    /// Create a scheduler with every source due at `start_ms`.
    pub fn new(web: &'w SimulatedWeb, config: SchedulerConfig, start_ms: u64) -> Self {
        let queue = (0..web.sources().len())
            .map(|i| Reverse((start_ms, i)))
            .collect();
        Scheduler {
            web,
            config,
            queue,
            state: CrawlState::new(),
            stats: SchedulerStats::default(),
        }
    }

    /// Next due time, if any job is queued.
    pub fn next_due(&self) -> Option<u64> {
        self.queue.peek().map(|Reverse((t, _))| *t)
    }

    /// Run all jobs due up to and including `until_ms`, collecting new raw
    /// reports. Jobs rescheduled beyond `until_ms` stay queued.
    pub fn run_until(&mut self, until_ms: u64) -> Vec<RawReport> {
        let mut collected = Vec::new();
        while let Some(&Reverse((due, source_idx))) = self.queue.peek() {
            if due > until_ms {
                break;
            }
            self.queue.pop();
            let spec = &self.web.sources()[source_idx];
            let source_state = self.state.source_mut(&spec.name);
            let outcome = crawl_source(self.web, spec, source_state, &self.config.crawler, due);
            self.stats.cycles_run += 1;
            self.stats.new_reports += outcome.new_reports;
            self.stats.pages_fetched += outcome.pages_fetched;
            let next_due = if let Some(error) = &outcome.error {
                self.stats.reboots += 1;
                if self.stats.reboot_events.len() < MAX_REBOOT_EVENTS {
                    self.stats.reboot_events.push(RebootEvent {
                        source: spec.name.clone(),
                        due_ms: due,
                        error: error.to_string(),
                    });
                }
                due + outcome.virtual_ms.max(1) + self.config.reboot_delay_ms
            } else {
                due + outcome.virtual_ms.max(1) + self.config.interval_ms
            };
            collected.extend(outcome.reports);
            self.queue.push(Reverse((next_due, source_idx)));
        }
        collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_corpus::{standard_sources, SimulatedWeb, World, WorldConfig};

    fn web(articles: usize) -> SimulatedWeb {
        SimulatedWeb::new(
            World::generate(WorldConfig::tiny(3)),
            standard_sources(articles),
            11,
        )
    }

    #[test]
    fn periodic_cycles_pick_up_new_publications() {
        let web = web(20);
        let start = web.sources()[0].publish_time_ms(0);
        let mut sched = Scheduler::new(
            &web,
            SchedulerConfig {
                interval_ms: 3_600_000,
                ..SchedulerConfig::default()
            },
            start,
        );
        // After the first horizon some articles exist.
        let one_day = start + 24 * 3_600_000;
        let first = sched.run_until(one_day);
        let after_day = sched.state.total_seen();
        assert!(!first.is_empty());
        // A week later, strictly more.
        let one_week = start + 7 * 24 * 3_600_000;
        sched.run_until(one_week);
        assert!(sched.state.total_seen() > after_day);
        assert!(sched.stats.cycles_run > 42, "{:?}", sched.stats);
    }

    #[test]
    fn growth_is_monotone_and_converges_to_catalog() {
        let web = web(6);
        let start = 1_500_000_000_000;
        let mut sched = Scheduler::new(&web, SchedulerConfig::default(), start);
        let mut last = 0;
        for day in 1..40 {
            sched.run_until(start + day * 24 * 3_600_000);
            let seen = sched.state.total_seen();
            assert!(seen >= last);
            last = seen;
        }
        let total_catalog: usize = web.sources().iter().map(|s| s.article_count).sum();
        // Everything published by the horizon is eventually crawled. Ads are
        // "seen" too (fetched then discarded downstream), so full coverage.
        let published: usize = web
            .sources()
            .iter()
            .map(|s| {
                (0..s.article_count)
                    .take_while(|&i| s.publish_time_ms(i) <= start + 39 * 24 * 3_600_000)
                    .count()
            })
            .sum();
        assert!(sched.state.total_seen() >= published.min(total_catalog) * 9 / 10);
    }

    #[test]
    fn reboots_happen_for_flaky_sources_under_tight_budget() {
        let web = web(30);
        let config = SchedulerConfig {
            crawler: CrawlerConfig {
                max_retries: 0,
                failure_budget: 1,
                ..CrawlerConfig::default()
            },
            ..SchedulerConfig::default()
        };
        let start = 1_600_000_000_000;
        let mut sched = Scheduler::new(&web, config, start);
        sched.run_until(start + 14 * 24 * 3_600_000);
        assert!(sched.stats.reboots > 0, "{:?}", sched.stats);
        // Despite reboots, crawling makes progress.
        assert!(sched.state.total_seen() > 0);
        // Every reboot up to the capture cap is recorded with its cause.
        assert_eq!(
            sched.stats.reboot_events.len(),
            sched.stats.reboots.min(MAX_REBOOT_EVENTS),
            "{:?}",
            sched.stats
        );
        let event = &sched.stats.reboot_events[0];
        assert!(!event.source.is_empty());
        assert!(event.due_ms >= start);
        assert!(event.error.contains("fetch failures"), "{event:?}");
        // The event log round-trips with the stats.
        let json = serde_json::to_string(&sched.stats).unwrap();
        let back: SchedulerStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sched.stats);
    }

    #[test]
    fn next_due_tracks_queue() {
        let web = web(2);
        let mut sched = Scheduler::new(&web, SchedulerConfig::default(), 100);
        assert_eq!(sched.next_due(), Some(100));
        sched.run_until(100);
        assert!(sched.next_due().unwrap() > 100);
    }
}
