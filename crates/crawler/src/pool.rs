//! Multi-threaded crawling: a worker pool draining per-source jobs.
//!
//! Sources are independent, so the natural parallel unit is one source's
//! crawl cycle. Workers pull source indexes from a shared atomic counter and
//! push `RawReport`s into a crossbeam channel; the caller drains it. With
//! `time_dilation = 0` everything is virtual-time and the pool measures pure
//! software overhead; with a positive dilation the simulated latencies
//! stretch into real sleeps and the measured reports/minute reproduce the
//! paper's single-host throughput claim (E1).

use crate::fetch::{crawl_source, SourceOutcome};
use crate::state::CrawlState;
use crate::CrawlerConfig;
use crossbeam::channel;
use kg_corpus::SimulatedWeb;
use kg_ir::RawReport;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Aggregate metrics of one multi-source crawl.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrawlMetrics {
    pub sources_crawled: usize,
    pub sources_aborted: usize,
    pub new_reports: usize,
    pub pages_fetched: usize,
    pub retries: usize,
    pub hard_failures: usize,
    /// Sum of simulated latency over all fetches (virtual ms).
    pub virtual_ms_total: u64,
    /// Largest per-source virtual time — the virtual wall-clock of the crawl
    /// when there are at least as many workers as sources.
    pub virtual_ms_critical_path: u64,
    /// Real wall-clock of the crawl.
    pub wall_ms: u64,
}

impl CrawlMetrics {
    fn absorb(&mut self, outcome: &SourceOutcome) {
        self.sources_crawled += 1;
        if outcome.error.is_some() {
            self.sources_aborted += 1;
        }
        self.new_reports += outcome.new_reports;
        self.pages_fetched += outcome.pages_fetched;
        self.retries += outcome.retries;
        self.hard_failures += outcome.hard_failures;
        self.virtual_ms_total += outcome.virtual_ms;
        self.virtual_ms_critical_path = self.virtual_ms_critical_path.max(outcome.virtual_ms);
    }

    /// Reports per virtual minute for an `n_workers` pool: virtual elapsed
    /// time is total fetch latency divided across workers, floored by the
    /// slowest single source (the critical path).
    pub fn reports_per_virtual_minute(&self, n_workers: usize) -> f64 {
        let elapsed = (self.virtual_ms_total as f64 / n_workers.max(1) as f64)
            .max(self.virtual_ms_critical_path as f64);
        if elapsed <= 0.0 {
            return 0.0;
        }
        self.new_reports as f64 * 60_000.0 / elapsed
    }

    /// Reports per real (wall-clock) minute.
    pub fn reports_per_wall_minute(&self) -> f64 {
        if self.wall_ms == 0 {
            return 0.0;
        }
        self.new_reports as f64 * 60_000.0 / self.wall_ms as f64
    }
}

/// Crawl every source once with `config.threads` workers, starting at
/// simulated time `now_ms`. Returns all new raw reports plus metrics;
/// `state` is updated in place.
pub fn crawl_all(
    web: &SimulatedWeb,
    state: &mut CrawlState,
    config: &CrawlerConfig,
    now_ms: u64,
) -> (Vec<RawReport>, CrawlMetrics) {
    let start = Instant::now();
    let sources = web.sources().to_vec();
    let next_job = AtomicUsize::new(0);
    let (tx, rx) = channel::unbounded::<RawReport>();
    let metrics = Mutex::new(CrawlMetrics::default());

    // Hand each worker its own view into the shared state: extract the
    // per-source states up-front, hand them out by index, and put them back
    // afterwards (sources are disjoint, so there is no contention).
    let mut source_states: Vec<crate::state::SourceState> = sources
        .iter()
        .map(|s| std::mem::take(state.source_mut(&s.name)))
        .collect();
    {
        let state_slots: Vec<Mutex<&mut crate::state::SourceState>> =
            source_states.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..config.threads.max(1) {
                let tx = tx.clone();
                let next_job = &next_job;
                let sources = &sources;
                let state_slots = &state_slots;
                let metrics = &metrics;
                scope.spawn(move || loop {
                    let i = next_job.fetch_add(1, Ordering::Relaxed);
                    if i >= sources.len() {
                        break;
                    }
                    let spec = &sources[i];
                    let mut slot = state_slots[i].lock();
                    let outcome = crawl_source(web, spec, &mut slot, config, now_ms);
                    // absorb only reads the counters, so the reports can be
                    // drained by value and moved into the channel un-cloned.
                    metrics.lock().absorb(&outcome);
                    for report in outcome.reports {
                        let _ = tx.send(report);
                    }
                });
            }
            drop(tx);
        });
    }
    for (spec, s) in sources.iter().zip(source_states) {
        *state.source_mut(&spec.name) = s;
    }

    let reports: Vec<RawReport> = rx.try_iter().collect();
    let mut metrics = metrics.into_inner();
    metrics.wall_ms = start.elapsed().as_millis() as u64;
    (reports, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_corpus::{standard_sources, SimulatedWeb, World, WorldConfig};

    const FOREVER: u64 = u64::MAX / 4;

    fn web(articles: usize) -> SimulatedWeb {
        SimulatedWeb::new(
            World::generate(WorldConfig::tiny(3)),
            standard_sources(articles),
            11,
        )
    }

    #[test]
    fn parallel_crawl_covers_all_sources() {
        let web = web(8);
        let mut state = CrawlState::new();
        let (reports, metrics) = crawl_all(&web, &mut state, &CrawlerConfig::default(), FOREVER);
        assert_eq!(metrics.sources_crawled, 42);
        assert!(metrics.new_reports > 0);
        assert_eq!(
            reports.iter().filter(|r| r.page == 1).count(),
            metrics.new_reports,
            "one page-1 raw report per new article"
        );
        assert_eq!(state.total_seen(), metrics.new_reports);
    }

    #[test]
    fn parallel_equals_sequential_coverage() {
        let web = web(6);
        let mut s1 = CrawlState::new();
        let mut s8 = CrawlState::new();
        let c1 = CrawlerConfig {
            threads: 1,
            ..CrawlerConfig::default()
        };
        let c8 = CrawlerConfig {
            threads: 8,
            ..CrawlerConfig::default()
        };
        let (_, m1) = crawl_all(&web, &mut s1, &c1, FOREVER);
        let (_, m8) = crawl_all(&web, &mut s8, &c8, FOREVER);
        assert_eq!(m1.new_reports, m8.new_reports);
        assert_eq!(s1.total_seen(), s8.total_seen());
    }

    #[test]
    fn virtual_throughput_scales_with_workers() {
        let web = web(10);
        let mut state = CrawlState::new();
        let (_, metrics) = crawl_all(&web, &mut state, &CrawlerConfig::default(), FOREVER);
        let t1 = metrics.reports_per_virtual_minute(1);
        let t8 = metrics.reports_per_virtual_minute(8);
        assert!(t8 > t1 * 2.0, "t1={t1:.0} t8={t8:.0}");
    }

    #[test]
    fn second_cycle_is_incremental() {
        let web = web(5);
        let mut state = CrawlState::new();
        let config = CrawlerConfig::default();
        let (_, m1) = crawl_all(&web, &mut state, &config, FOREVER);
        let (reports2, m2) = crawl_all(&web, &mut state, &config, FOREVER);
        assert!(m1.new_reports > 0);
        assert_eq!(m2.new_reports, 0);
        assert!(reports2.is_empty());
        // At minimum one index page per source is refetched; flaky sources
        // may re-attempt articles that hard-failed in cycle 1, but the second
        // cycle is still far cheaper than the first.
        assert!(m2.pages_fetched >= 42, "{}", m2.pages_fetched);
        assert!(
            m2.pages_fetched <= m1.pages_fetched / 2,
            "{} vs {}",
            m2.pages_fetched,
            m1.pages_fetched
        );
    }
}
