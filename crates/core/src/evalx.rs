//! Extraction-quality evaluation against the corpus ground truth — the
//! machinery behind experiment E3 ("our extractors are highly accurate,
//! > 92% F1").

use kg_corpus::GoldReport;
use kg_extract::metrics::{Prf, SpanMatch, SpanScores};
use kg_extract::ner::{sentence_mentions, SentenceExtraction};
use serde::Serialize;

/// One system's scores over an evaluation corpus.
#[derive(Debug, Clone, Default, Serialize)]
pub struct ExtractionScores {
    pub ner: SpanScores,
    pub relations: Prf,
    pub documents: usize,
}

impl ExtractionScores {
    /// Micro-averaged NER F1.
    pub fn ner_f1(&self) -> f64 {
        self.ner.overall.f1()
    }

    /// Relation extraction F1.
    pub fn relation_f1(&self) -> f64 {
        self.relations.f1()
    }
}

/// A uniform interface over the CRF pipeline and the regex baseline.
pub trait ExtractsSentences {
    fn run(&self, text: &str) -> Vec<SentenceExtraction>;
}

impl ExtractsSentences for kg_extract::NerPipeline {
    fn run(&self, text: &str) -> Vec<SentenceExtraction> {
        self.extract(text)
    }
}

impl ExtractsSentences for kg_extract::RegexNerBaseline {
    fn run(&self, text: &str) -> Vec<SentenceExtraction> {
        self.extract(text)
    }
}

/// Evaluate NER span F1 over gold reports.
pub fn evaluate_ner(system: &dyn ExtractsSentences, gold: &[GoldReport]) -> ExtractionScores {
    let mut scores = ExtractionScores {
        documents: gold.len(),
        ..Default::default()
    };
    for report in gold {
        let extractions = system.run(&report.text);
        let predicted: Vec<SpanMatch> = extractions
            .iter()
            .flat_map(|se| {
                sentence_mentions(se).into_iter().map(|m| SpanMatch {
                    kind: m.kind,
                    start: m.start,
                    end: m.end,
                })
            })
            .collect();
        let gold_spans: Vec<SpanMatch> = report
            .mentions
            .iter()
            .map(|m| SpanMatch {
                kind: m.kind,
                start: m.start,
                end: m.end,
            })
            .collect();
        scores.ner.add_document(&predicted, &gold_spans);
        scores.relations.add(relation_prf(&extractions, report));
    }
    scores
}

/// Evaluate relation extraction alone.
pub fn evaluate_relations(system: &dyn ExtractsSentences, gold: &[GoldReport]) -> Prf {
    let mut total = Prf::default();
    for report in gold {
        total.add(relation_prf(&system.run(&report.text), report));
    }
    total
}

/// Relation items are matched on `(subject byte-span, relation kind, object
/// byte-span)` — the strictest correct criterion, requiring both entity
/// boundaries and the ontology-resolved relation kind to be exact.
fn relation_prf(extractions: &[SentenceExtraction], gold: &GoldReport) -> Prf {
    type Item = ((usize, usize), kg_ontology::RelationKind, (usize, usize));
    let mut predicted: Vec<Item> = Vec::new();
    for se in extractions {
        for rel in &se.relations {
            let s = &se.spans[rel.subject];
            let o = &se.spans[rel.object];
            let s_bytes = (
                se.sentence.tokens[s.start].start,
                se.sentence.tokens[s.end - 1].end,
            );
            let o_bytes = (
                se.sentence.tokens[o.start].start,
                se.sentence.tokens[o.end - 1].end,
            );
            predicted.push((s_bytes, rel.kind, o_bytes));
        }
    }
    let gold_items: Vec<Item> = gold
        .relations
        .iter()
        .map(|r| {
            let s = &gold.mentions[r.subject];
            let o = &gold.mentions[r.object];
            ((s.start, s.end), r.kind, (o.start, o.end))
        })
        .collect();
    Prf::score_sets(&predicted, &gold_items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::{collect_gold, train_ner, TrainingConfig};
    use kg_corpus::{standard_sources, SimulatedWeb, World, WorldConfig};
    use kg_extract::RegexNerBaseline;
    use kg_ontology::EntityKind;

    fn web() -> SimulatedWeb {
        SimulatedWeb::new(
            World::generate(WorldConfig::tiny(5)),
            standard_sources(12),
            9,
        )
    }

    #[test]
    fn trained_crf_beats_uninformed_baseline() {
        let web = web();
        let trained = train_ner(
            &web,
            &TrainingConfig {
                articles: 120,
                ..TrainingConfig::default()
            },
        );
        let pipeline = trained.into_pipeline();
        let test = collect_gold(&web, 40, |i| i % 2 == 1);
        let crf_scores = evaluate_ner(&pipeline, &test);
        // Baseline with *no* gazetteers: IOC regex only.
        let bare = RegexNerBaseline::new(vec![]);
        let bare_scores = evaluate_ner(&bare, &test);
        assert!(
            crf_scores.ner_f1() > bare_scores.ner_f1(),
            "crf {:.3} vs bare {:.3}",
            crf_scores.ner_f1(),
            bare_scores.ner_f1()
        );
        assert!(crf_scores.ner_f1() > 0.6, "{:.3}", crf_scores.ner_f1());
    }

    #[test]
    fn gazetteer_baseline_scores_reasonably_but_misses_relations_less() {
        let web = web();
        let curated = web.world().curated_lists(1.0, 1);
        let baseline = RegexNerBaseline::new(vec![
            (EntityKind::Malware, curated.malware),
            (EntityKind::ThreatActor, curated.actors),
            (EntityKind::Technique, curated.techniques),
            (EntityKind::Tool, curated.tools),
            (EntityKind::Software, curated.software),
        ]);
        let test = collect_gold(&web, 30, |i| i % 2 == 1);
        let scores = evaluate_ner(&baseline, &test);
        assert!(scores.ner_f1() > 0.5, "{:.3}", scores.ner_f1());
        assert!(
            scores.relations.tp > 0,
            "some relations should match exactly"
        );
    }

    #[test]
    fn empty_predictions_score_zero_recall() {
        struct Nothing;
        impl ExtractsSentences for Nothing {
            fn run(&self, _text: &str) -> Vec<SentenceExtraction> {
                Vec::new()
            }
        }
        let web = web();
        let test = collect_gold(&web, 10, |_| true);
        let scores = evaluate_ner(&Nothing, &test);
        assert_eq!(scores.ner.overall.tp, 0);
        assert_eq!(scores.ner.overall.recall(), 0.0);
        assert_eq!(scores.ner.overall.precision(), 1.0);
    }
}
