//! STIX 2.1 export / import for the knowledge graph.
//!
//! The paper cites STIX \[15\] as the interchange baseline its ontology
//! extends; this module makes the comparison practical by round-tripping
//! the knowledge graph through a STIX 2.1 bundle: entity nodes become SDOs
//! (or `indicator` objects with pattern strings, for IOC kinds), relation
//! edges become SROs. Everything is deterministic: object ids derive from
//! node ids, so exports diff cleanly.
//!
//! Kinds that STIX cannot represent directly (report subtypes, registry
//! keys as first-class objects) use the closest spec-compliant encoding and
//! survive a round trip via `x_securitykg_*` custom properties.

use kg_graph::{GraphStore, NodeId, Value};
use kg_ontology::{EntityKind, RelationKind};
use serde_json::{json, Map, Value as Json};
use std::collections::HashMap;
use std::fmt;

/// Export / import errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StixError {
    /// The bundle JSON is malformed.
    Malformed(String),
}

impl fmt::Display for StixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StixError::Malformed(m) => write!(f, "malformed STIX bundle: {m}"),
        }
    }
}

impl std::error::Error for StixError {}

/// The STIX object type for an entity kind.
pub fn stix_type(kind: EntityKind) -> &'static str {
    match kind {
        EntityKind::Malware => "malware",
        EntityKind::ThreatActor => "threat-actor",
        EntityKind::Technique | EntityKind::Tactic => "attack-pattern",
        EntityKind::Tool => "tool",
        EntityKind::Software => "software",
        EntityKind::Vulnerability => "vulnerability",
        EntityKind::Campaign => "campaign",
        EntityKind::CtiVendor => "identity",
        EntityKind::MalwareReport | EntityKind::VulnerabilityReport | EntityKind::AttackReport => {
            "report"
        }
        // IOC kinds export as pattern-bearing indicators.
        _ => "indicator",
    }
}

/// STIX pattern string for an IOC kind + value.
pub fn stix_pattern(kind: EntityKind, value: &str) -> Option<String> {
    let escaped = value.replace('\\', "\\\\").replace('\'', "\\'");
    Some(match kind {
        EntityKind::FileName => format!("[file:name = '{escaped}']"),
        EntityKind::FilePath => format!("[file:parent_directory_ref.path = '{escaped}']"),
        EntityKind::IpAddress => format!("[ipv4-addr:value = '{escaped}']"),
        EntityKind::Url => format!("[url:value = '{escaped}']"),
        EntityKind::Email => format!("[email-addr:value = '{escaped}']"),
        EntityKind::Domain => format!("[domain-name:value = '{escaped}']"),
        EntityKind::RegistryKey => format!("[windows-registry-key:key = '{escaped}']"),
        EntityKind::HashMd5 => format!("[file:hashes.MD5 = '{escaped}']"),
        EntityKind::HashSha1 => format!("[file:hashes.'SHA-1' = '{escaped}']"),
        EntityKind::HashSha256 => format!("[file:hashes.'SHA-256' = '{escaped}']"),
        _ => return None,
    })
}

/// The STIX relationship type for a relation kind (kebab-cased; kinds STIX
/// does not define keep a descriptive custom verb, which the spec allows).
pub fn stix_relationship(kind: RelationKind) -> String {
    match kind {
        RelationKind::Uses => "uses".to_owned(),
        RelationKind::Targets => "targets".to_owned(),
        RelationKind::AttributedTo => "attributed-to".to_owned(),
        RelationKind::Exploits => "exploits".to_owned(),
        RelationKind::Mentions | RelationKind::Describes => "object-ref".to_owned(),
        RelationKind::Publishes => "created-by".to_owned(),
        other => other.label().to_lowercase().replace('_', "-"),
    }
}

/// Deterministic STIX-style id for a node: `<type>--<32-hex>` derived from
/// the node id (not a real UUIDv4, but stable and well-formed).
fn stix_id(kind_type: &str, node: NodeId) -> String {
    let h = kg_ir::fnv1a64(format!("securitykg-node-{}", node.0).as_bytes());
    let h2 = kg_ir::fnv1a64(format!("securitykg-salt-{}", node.0).as_bytes());
    format!("{kind_type}--{h:016x}{h2:016x}")
}

/// Export the knowledge graph as a STIX 2.1 bundle (JSON).
pub fn export_bundle(graph: &GraphStore) -> Json {
    let mut objects = Vec::new();
    let mut ids: HashMap<NodeId, String> = HashMap::new();

    for node in graph.all_nodes() {
        let Ok(kind) = node.label.parse::<EntityKind>() else {
            continue;
        };
        let typ = stix_type(kind);
        let id = stix_id(typ, node.id);
        ids.insert(node.id, id.clone());
        let name = node.name().unwrap_or("").to_owned();
        let mut object = Map::new();
        object.insert("type".into(), json!(typ));
        object.insert("spec_version".into(), json!("2.1"));
        object.insert("id".into(), json!(id));
        object.insert("name".into(), json!(name));
        object.insert("x_securitykg_kind".into(), json!(node.label));
        if typ == "indicator" {
            if let Some(pattern) = stix_pattern(kind, &name) {
                object.insert("pattern".into(), json!(pattern));
                object.insert("pattern_type".into(), json!("stix"));
            }
        }
        if let Some(Value::List(aliases)) = node.props.get("aliases") {
            let list: Vec<Json> = aliases
                .iter()
                .filter_map(|v| v.as_text().map(|s| json!(s)))
                .collect();
            if !list.is_empty() {
                object.insert("aliases".into(), Json::Array(list));
            }
        }
        objects.push(Json::Object(object));
    }

    for edge in graph.all_edges() {
        let (Some(src), Some(dst)) = (ids.get(&edge.from), ids.get(&edge.to)) else {
            continue;
        };
        let Ok(kind) = edge.rel_type.parse::<RelationKind>() else {
            continue;
        };
        let rel_id = {
            let h = kg_ir::fnv1a64(format!("securitykg-edge-{}", edge.id.0).as_bytes());
            let h2 = kg_ir::fnv1a64(format!("securitykg-edge-salt-{}", edge.id.0).as_bytes());
            format!("relationship--{h:016x}{h2:016x}")
        };
        objects.push(json!({
            "type": "relationship",
            "spec_version": "2.1",
            "id": rel_id,
            "relationship_type": stix_relationship(kind),
            "source_ref": src,
            "target_ref": dst,
            "x_securitykg_relation": edge.rel_type,
        }));
    }

    json!({
        "type": "bundle",
        "id": format!("bundle--{:016x}{:016x}",
            kg_ir::fnv1a64(b"securitykg-bundle"),
            objects.len() as u64),
        "objects": objects,
    })
}

/// Import a STIX bundle produced by [`export_bundle`] into a fresh graph.
/// Foreign bundles import best-effort: objects without the
/// `x_securitykg_kind` hint map back through [`stix_type`] inverses where
/// unambiguous, and are skipped otherwise.
pub fn import_bundle(bundle: &Json) -> Result<GraphStore, StixError> {
    let objects = bundle
        .get("objects")
        .and_then(Json::as_array)
        .ok_or_else(|| StixError::Malformed("missing objects array".into()))?;
    let mut graph = GraphStore::new();
    let mut by_stix_id: HashMap<String, NodeId> = HashMap::new();

    // Pass 1: nodes.
    for object in objects {
        let typ = object.get("type").and_then(Json::as_str).unwrap_or("");
        if typ == "relationship" || typ == "bundle" {
            continue;
        }
        let Some(id) = object.get("id").and_then(Json::as_str) else {
            continue;
        };
        let name = object.get("name").and_then(Json::as_str).unwrap_or("");
        let label = match object.get("x_securitykg_kind").and_then(Json::as_str) {
            Some(hint) => hint.to_owned(),
            None => match typ {
                "malware" => "Malware".to_owned(),
                "threat-actor" => "ThreatActor".to_owned(),
                "attack-pattern" => "Technique".to_owned(),
                "tool" => "Tool".to_owned(),
                "software" => "Software".to_owned(),
                "vulnerability" => "Vulnerability".to_owned(),
                "campaign" => "Campaign".to_owned(),
                "identity" => "CtiVendor".to_owned(),
                _ => continue,
            },
        };
        if label.parse::<EntityKind>().is_err() {
            continue;
        }
        let node = graph.merge_node(&label, name, [] as [(&str, Value); 0]);
        if let Some(aliases) = object.get("aliases").and_then(Json::as_array) {
            let list: Vec<Value> = aliases
                .iter()
                .filter_map(|a| a.as_str().map(Value::from))
                .collect();
            if let Some(n) = graph.node_mut(node) {
                n.props.insert("aliases".into(), Value::List(list));
            }
        }
        by_stix_id.insert(id.to_owned(), node);
    }

    // Pass 2: relationships.
    for object in objects {
        if object.get("type").and_then(Json::as_str) != Some("relationship") {
            continue;
        }
        let (Some(src), Some(dst)) = (
            object.get("source_ref").and_then(Json::as_str),
            object.get("target_ref").and_then(Json::as_str),
        ) else {
            continue;
        };
        let (Some(&from), Some(&to)) = (by_stix_id.get(src), by_stix_id.get(dst)) else {
            continue;
        };
        let rel = object
            .get("x_securitykg_relation")
            .and_then(Json::as_str)
            .unwrap_or("RELATED_TO");
        if rel.parse::<RelationKind>().is_err() {
            continue;
        }
        let _ = graph.merge_edge(from, rel, to);
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> GraphStore {
        let mut g = GraphStore::new();
        let mal = g.create_node("Malware", [("name", Value::from("wannacry"))]);
        g.node_mut(mal)
            .unwrap()
            .props
            .insert("aliases".into(), Value::List(vec![Value::from("wcry")]));
        let actor = g.create_node("ThreatActor", [("name", Value::from("lazarus group"))]);
        let file = g.create_node("FileName", [("name", Value::from("tasksche.exe"))]);
        let hash = g.create_node("HashSha256", [("name", Value::from("aa".repeat(32)))]);
        let vendor = g.create_node("CtiVendor", [("name", Value::from("securelist"))]);
        let report = g.create_node("MalwareReport", [("name", Value::from("securelist/r1"))]);
        g.create_edge(mal, "DROP", file, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(mal, "ATTRIBUTED_TO", actor, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(hash, "IDENTIFIES", file, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(vendor, "PUBLISHES", report, [] as [(&str, Value); 0])
            .unwrap();
        g.create_edge(report, "MENTIONS", mal, [] as [(&str, Value); 0])
            .unwrap();
        g
    }

    #[test]
    fn export_produces_valid_looking_stix() {
        let bundle = export_bundle(&sample_graph());
        assert_eq!(bundle["type"], "bundle");
        let objects = bundle["objects"].as_array().unwrap();
        // 6 nodes + 5 relationships.
        assert_eq!(objects.len(), 11);
        let malware = objects
            .iter()
            .find(|o| o["type"] == "malware")
            .expect("malware SDO");
        assert_eq!(malware["name"], "wannacry");
        assert_eq!(malware["aliases"][0], "wcry");
        assert!(malware["id"].as_str().unwrap().starts_with("malware--"));
        // IOC nodes carry pattern strings.
        let indicator = objects
            .iter()
            .find(|o| o["type"] == "indicator" && o["name"] == "tasksche.exe")
            .expect("file indicator");
        assert_eq!(indicator["pattern"], "[file:name = 'tasksche.exe']");
        // The hash indicator uses the hashes pattern.
        let hash_ind = objects
            .iter()
            .find(|o| {
                o["type"] == "indicator"
                    && o["pattern"].as_str().is_some_and(|p| p.contains("SHA-256"))
            })
            .expect("hash indicator");
        assert!(hash_ind["pattern"]
            .as_str()
            .unwrap()
            .starts_with("[file:hashes."));
        // Relationship types map to STIX vocabulary.
        assert!(objects
            .iter()
            .any(|o| o["type"] == "relationship" && o["relationship_type"] == "attributed-to"));
    }

    #[test]
    fn export_is_deterministic() {
        let a = export_bundle(&sample_graph());
        let b = export_bundle(&sample_graph());
        assert_eq!(a, b);
    }

    #[test]
    fn round_trip_preserves_graph_shape() {
        let original = sample_graph();
        let bundle = export_bundle(&original);
        let restored = import_bundle(&bundle).unwrap();
        assert_eq!(restored.node_count(), original.node_count());
        assert_eq!(restored.edge_count(), original.edge_count());
        // Facts survive.
        let mal = restored.node_by_name("Malware", "wannacry").unwrap();
        let rels: Vec<&str> = restored
            .outgoing(mal)
            .iter()
            .map(|e| e.rel_type.as_str())
            .collect();
        assert!(rels.contains(&"DROP"));
        assert!(rels.contains(&"ATTRIBUTED_TO"));
        match restored.node(mal).unwrap().props.get("aliases") {
            Some(Value::List(xs)) => assert_eq!(xs, &vec![Value::from("wcry")]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn foreign_bundle_imports_best_effort() {
        let bundle = json!({
            "type": "bundle",
            "id": "bundle--x",
            "objects": [
                {"type": "malware", "id": "malware--1", "name": "emotet"},
                {"type": "threat-actor", "id": "threat-actor--2", "name": "ta542"},
                {"type": "unknown-widget", "id": "widget--3", "name": "?"},
                {"type": "relationship", "id": "relationship--4",
                 "relationship_type": "attributed-to",
                 "source_ref": "malware--1", "target_ref": "threat-actor--2"}
            ]
        });
        let g = import_bundle(&bundle).unwrap();
        assert_eq!(g.node_count(), 2);
        // Foreign relationship without our hint defaults to RELATED_TO.
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.all_edges().next().unwrap().rel_type, "RELATED_TO");
    }

    #[test]
    fn malformed_bundles_error() {
        assert!(import_bundle(&json!({"type": "bundle"})).is_err());
        assert!(import_bundle(&json!({"objects": []})).is_ok());
    }

    #[test]
    fn pattern_escaping() {
        let p = stix_pattern(EntityKind::FilePath, "C:\\Temp\\o'brien.exe").unwrap();
        assert!(p.contains("C:\\\\Temp\\\\o\\'brien.exe"), "{p}");
    }
}
