//! Training the extraction models (paper §2.4).
//!
//! The CRF is trained on annotations synthesised by data programming over
//! curated entity lists — no manual labels. Features include word
//! embeddings trained on the crawled corpus itself, discretised into k-means
//! cluster ids.

use kg_corpus::{GoldReport, SimulatedWeb};
use kg_extract::crf::{Crf, CrfConfig, Example};
use kg_extract::features::{FeatureConfig, FeatureMap, Featurizer, Gazetteer};
use kg_extract::labeling::{standard_lfs, LabelModel};
use kg_extract::LabelSet;
use kg_nlp::{
    analyze, AnalyzedSentence, EmbeddingConfig, Embeddings, IocMatcher, KMeans, PosTagger,
};

/// Where the training labels come from (the E3 ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelSource {
    /// Data programming with the EM label model (the paper's approach).
    DataProgramming,
    /// Majority vote over labeling functions (no label model).
    MajorityVote,
    /// Oracle gold labels (upper bound; impossible on the real web).
    Gold,
}

/// Training configuration.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Number of training articles sampled round-robin across sources.
    pub articles: usize,
    /// Fraction of world entity names present on the curated lists.
    pub lf_coverage: f64,
    pub label_source: LabelSource,
    pub features: FeatureConfig,
    pub crf: CrfConfig,
    pub embeddings: EmbeddingConfig,
    /// k for the embedding-cluster feature (0 disables).
    pub clusters: usize,
    /// Also expose the curated lists to the CRF as gazetteer features.
    pub gazetteer_features: bool,
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            articles: 400,
            lf_coverage: 0.8,
            label_source: LabelSource::DataProgramming,
            features: FeatureConfig::default(),
            crf: CrfConfig::default(),
            embeddings: EmbeddingConfig {
                epochs: 2,
                ..EmbeddingConfig::default()
            },
            clusters: 24,
            gazetteer_features: true,
            seed: 0x7241,
        }
    }
}

/// A trained NER model plus the featurizer it must be decoded with.
pub struct TrainedNer {
    pub crf: Crf,
    pub featurizer: Featurizer,
    /// Learned labeling-function accuracies (diagnostics; empty for
    /// gold-label training).
    pub lf_accuracies: Vec<(String, f64)>,
}

impl TrainedNer {
    /// Wrap into the full extraction pipeline.
    pub fn into_pipeline(self) -> kg_extract::NerPipeline {
        kg_extract::NerPipeline::new(self.crf, self.featurizer)
    }
}

/// Collect gold reports by article index range, round-robin across sources
/// (ads skipped). `which(i)` filters article indices, so training and
/// evaluation can use disjoint slices (e.g. even vs odd).
pub fn collect_gold(
    web: &SimulatedWeb,
    max_reports: usize,
    which: impl Fn(usize) -> bool,
) -> Vec<GoldReport> {
    let mut out = Vec::new();
    let max_articles = web
        .sources()
        .iter()
        .map(|s| s.article_count)
        .max()
        .unwrap_or(0);
    'outer: for article in 0..max_articles {
        if !which(article) {
            continue;
        }
        for source in web.sources() {
            if article >= source.article_count {
                continue;
            }
            if let Some(gold) = web.gold(&source.name, article) {
                out.push(gold);
                if out.len() >= max_reports {
                    break 'outer;
                }
            }
        }
    }
    out
}

/// Analyse a gold report's text into sentences.
pub fn analyze_gold(
    gold: &GoldReport,
    matcher: &IocMatcher,
    tagger: &PosTagger,
) -> Vec<AnalyzedSentence> {
    analyze(&gold.text, matcher, tagger)
}

/// Gold BIO label ids for one analysed sentence.
pub fn gold_labels(
    gold: &GoldReport,
    sentence: &AnalyzedSentence,
    labels: &LabelSet,
) -> Vec<kg_extract::LabelId> {
    let spans: Vec<(usize, usize)> = sentence.tokens.iter().map(|t| (t.start, t.end)).collect();
    let tags = kg_corpus::bio_tags(&gold.mentions, &spans);
    tags.iter()
        .map(|t| labels.id(t).unwrap_or(LabelSet::O))
        .collect()
}

/// Train the NER model on the web's training slice (even article indices).
pub fn train_ner(web: &SimulatedWeb, config: &TrainingConfig) -> TrainedNer {
    let matcher = IocMatcher::standard();
    let tagger = PosTagger::standard();
    let labels = LabelSet::standard();

    let gold_reports = collect_gold(web, config.articles, |i| i % 2 == 0);

    // Analyse all training sentences (and remember their source report for
    // gold-label training).
    let mut sentences: Vec<AnalyzedSentence> = Vec::new();
    let mut sentence_gold: Vec<usize> = Vec::new();
    for (ri, gold) in gold_reports.iter().enumerate() {
        for s in analyze_gold(gold, &matcher, &tagger) {
            sentences.push(s);
            sentence_gold.push(ri);
        }
    }

    // Labels.
    let curated = web.world().curated_lists(config.lf_coverage, config.seed);
    let lfs = standard_lfs(
        curated.malware.clone(),
        curated.actors.clone(),
        curated.techniques.clone(),
        curated.tools.clone(),
        curated.software.clone(),
    );
    let (label_seqs, lf_accuracies) = match config.label_source {
        LabelSource::DataProgramming => {
            let (model, seqs) = LabelModel::fit(&lfs, &sentences, &labels, 10);
            let acc = model
                .names()
                .iter()
                .cloned()
                .zip(model.accuracies().iter().copied())
                .collect();
            (seqs, acc)
        }
        LabelSource::MajorityVote => (
            LabelModel::majority_vote(&lfs, &sentences, &labels),
            Vec::new(),
        ),
        LabelSource::Gold => {
            let seqs = sentences
                .iter()
                .zip(&sentence_gold)
                .map(|(s, &ri)| gold_labels(&gold_reports[ri], s, &labels))
                .collect();
            (seqs, Vec::new())
        }
    };

    // Embedding features.
    let mut featurizer = Featurizer::new(config.features.clone());
    if config.clusters > 0 && config.features.clusters {
        let token_corpus: Vec<Vec<String>> = sentences
            .iter()
            .map(|s| s.tokens.iter().map(|t| t.text.to_lowercase()).collect())
            .collect();
        let embeddings = Embeddings::train(&token_corpus, &config.embeddings);
        featurizer.clusters = Some(KMeans::fit(&embeddings, config.clusters, 25, config.seed));
    }
    if config.gazetteer_features && config.features.gazetteers {
        featurizer.gazetteers = vec![
            Gazetteer::new("malware", curated.malware),
            Gazetteer::new("actor", curated.actors),
            Gazetteer::new("technique", curated.techniques),
            Gazetteer::new("tool", curated.tools),
            Gazetteer::new("software", curated.software),
        ];
    }

    // Featurize + train.
    let mut map = FeatureMap::default();
    let examples: Vec<Example> = sentences
        .iter()
        .zip(label_seqs)
        .map(|(s, labels)| Example {
            features: featurizer.features_interned(s, &mut map),
            labels,
        })
        .collect();
    let crf = Crf::train(labels, map, &examples, &config.crf);
    TrainedNer {
        crf,
        featurizer,
        lf_accuracies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_corpus::{standard_sources, SimulatedWeb, World, WorldConfig};

    fn web() -> SimulatedWeb {
        SimulatedWeb::new(
            World::generate(WorldConfig::tiny(5)),
            standard_sources(10),
            9,
        )
    }

    #[test]
    fn collect_gold_respects_filter_and_cap() {
        let web = web();
        let even = collect_gold(&web, 30, |i| i % 2 == 0);
        assert_eq!(even.len(), 30);
        let odd = collect_gold(&web, 30, |i| i % 2 == 1);
        let even_keys: std::collections::HashSet<&str> =
            even.iter().map(|g| g.key.as_str()).collect();
        for o in &odd {
            assert!(
                !even_keys.contains(o.key.as_str()),
                "train/test slices must be disjoint"
            );
        }
    }

    #[test]
    fn gold_labels_align_with_tokens() {
        let web = web();
        let matcher = IocMatcher::standard();
        let tagger = PosTagger::standard();
        let labels = LabelSet::standard();
        let gold = collect_gold(&web, 5, |_| true);
        for g in &gold {
            for s in analyze_gold(g, &matcher, &tagger) {
                let seq = gold_labels(g, &s, &labels);
                assert_eq!(seq.len(), s.tokens.len());
            }
        }
    }

    #[test]
    fn training_produces_a_usable_model() {
        let web = web();
        let config = TrainingConfig {
            articles: 60,
            crf: CrfConfig {
                epochs: 4,
                ..CrfConfig::default()
            },
            clusters: 8,
            ..TrainingConfig::default()
        };
        let trained = train_ner(&web, &config);
        assert!(!trained.lf_accuracies.is_empty());
        let pipeline = trained.into_pipeline();
        // The model must at least find IOCs and some named entity in a
        // corpus-like sentence.
        let mentions =
            pipeline.mentions("the wannacry ransomware dropped tasksche.exe on the host.");
        assert!(mentions
            .iter()
            .any(|m| m.kind == kg_ontology::EntityKind::FileName));
        assert!(
            mentions
                .iter()
                .any(|m| m.kind == kg_ontology::EntityKind::Malware),
            "{mentions:?}"
        );
    }
}
