//! Crash-safe ingestion: the durable run driver.
//!
//! `run_durable` drives the crawl scheduler cycle-by-cycle through the
//! *sequential* pipeline, journaling every cycle and every ingested report
//! (see [`crate::journal`]) and periodically persisting a complete snapshot
//! sidecar: the knowledge base, the scheduler's whole control state
//! ([`kg_crawler::SchedulerCheckpoint`]: due-heap, crawl state, stats,
//! breakers) and the set of ingested content hashes.
//!
//! The recovery model is **snapshot + deterministic redo**: the snapshot is
//! the durable truth, and everything after it is recomputed rather than
//! replayed from the journal. Because the simulated web is a pure function
//! of `(seed, url, time)` and the scheduler's heap order is total, resuming
//! from the last intact snapshot and re-stepping to the same horizon
//! reproduces the uninterrupted run byte-for-byte — the property the chaos
//! harness (`tests/chaos.rs`, `scripts/chaos.sh`) asserts via
//! [`graph_digest`]. Journal records after the last snapshot marker are an
//! audit trail (and the chaos harness's kill-point counter), not replay
//! instructions; content-hash dedup keeps any re-ingestion idempotent.

use crate::journal::{self, Journal, JournalError, JournalRecord};
use crate::snapshot::KnowledgeBase;
use crate::SystemConfig;
use kg_corpus::{standard_sources, SimulatedWeb, World};
use kg_crawler::{Scheduler, SchedulerCheckpoint, SchedulerConfig, SchedulerStats};
use kg_graph::GraphStore;
use kg_ir::{combine_hashes, RawReport};
use kg_pipeline::{
    run_sequential, GraphConnector, ParserRegistry, PipelineMetrics, TraceEvent, TraceLog,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Default simulated start: the publication epoch of the synthetic corpus.
pub const DEFAULT_START_MS: u64 = 1_500_000_000_000;

/// Deterministic fingerprint of a knowledge graph — a thin alias for
/// [`GraphStore::digest`]: the commutative sum of per-element hashes over the
/// elements' canonical JSON (properties in BTreeMap order; the serde-skipped
/// hash indexes never leak in). The same scheme serves all three digest
/// consumers — durable snapshots, the determinism suite, and serving epochs
/// (`kg_serve::KgSnapshot::digest`) — so their fingerprints stay mutually
/// comparable, and the serving layer's `EpochBuilder` can maintain it in
/// O(delta) per publish.
pub fn graph_digest(graph: &GraphStore) -> u64 {
    graph.digest()
}

/// Everything a recovery needs, persisted atomically (tmp + rename) before
/// its marker is appended to the journal.
#[derive(Serialize, Deserialize)]
pub struct SnapshotPayload {
    pub seq: u64,
    /// Scheduler cycles completed when the snapshot was taken.
    pub cycles_done: u64,
    /// [`graph_digest`] of `kb.graph`, re-verified on load.
    pub kg_digest: u64,
    /// Sorted content hashes of every report ingested so far.
    pub ingested: Vec<u64>,
    pub scheduler: SchedulerCheckpoint,
    pub kb: KnowledgeBase,
}

/// Knobs of a durable run.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Persist a snapshot every this many scheduler cycles (plus one at the
    /// end of every run that made progress). `0` means only the final one.
    pub snapshot_every_cycles: u64,
    /// Chaos harness: fail with [`JournalError::InjectedCrash`] instead of
    /// appending journal record number N (counted from this run's start).
    pub crash_after_records: Option<u64>,
    /// Make the injected crash leave a torn half-written frame behind.
    pub crash_torn_tail: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            snapshot_every_cycles: 8,
            crash_after_records: None,
            crash_torn_tail: false,
        }
    }
}

/// What one `run_durable` call did.
#[derive(Debug)]
pub struct DurableReport {
    /// Scheduler cycles fired by this call.
    pub cycles_run: u64,
    /// Reports connected into the graph by this call.
    pub reports_ingested: usize,
    /// Journal records appended by this call.
    pub records_appended: u64,
    /// Report groups skipped because their content hash was already ingested.
    pub skipped_duplicates: usize,
    /// [`graph_digest`] of the final graph.
    pub kg_digest: u64,
    /// Snapshot sequence number recovery started from, if resuming.
    pub resumed_from_snapshot: Option<u64>,
    /// Intact journal records found on startup.
    pub replayed_records: usize,
    /// Whether startup had to discard a torn journal tail.
    pub torn_tail: bool,
    /// Scheduler stats over the whole journal directory's lifetime.
    pub stats: SchedulerStats,
    /// Accumulated pipeline accounting across this call's cycles.
    pub metrics: PipelineMetrics,
    /// Structured events: replay, snapshots, reboots, breaker transitions.
    pub trace: TraceLog,
}

fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq}.json"))
}

/// Load and verify one snapshot sidecar: the payload must parse, its graph
/// must rebuild, and the re-computed digest must match the stored one.
fn load_snapshot(dir: &Path, seq: u64) -> Result<SnapshotPayload, JournalError> {
    let bytes = std::fs::read(snapshot_path(dir, seq))?;
    let mut payload: SnapshotPayload = serde_json::from_slice(&bytes)?;
    // Rebuild the serde-skipped graph/search indexes.
    payload.kb = KnowledgeBase::from_bytes(&serde_json::to_vec(&payload.kb)?)?;
    Ok(payload)
}

/// Group a cycle's raw pages into whole reports (pages of one report arrive
/// contiguously, in page order) with an order-sensitive combined body hash.
fn group_reports(reports: Vec<RawReport>) -> Vec<(String, String, u64, Vec<RawReport>)> {
    let mut groups: Vec<(String, String, Vec<RawReport>)> = Vec::new();
    for report in reports {
        match groups.last_mut() {
            Some((_, key, pages)) if *key == report.report_key => pages.push(report),
            _ => groups.push((
                report.source_name.clone(),
                report.report_key.clone(),
                vec![report],
            )),
        }
    }
    groups
        .into_iter()
        .map(|(source, key, pages)| {
            let hash = combine_hashes(pages.iter().map(|p| p.content_hash()));
            (source, key, hash, pages)
        })
        .collect()
}

fn absorb_metrics(total: &mut PipelineMetrics, part: &PipelineMetrics) {
    total.input_pages += part.input_pages;
    total.ported += part.ported;
    total.screened_out += part.screened_out;
    total.parsed += part.parsed;
    total.parse_errors += part.parse_errors;
    total.extracted += part.extracted;
    total.connected += part.connected;
    total.quarantined += part.quarantined;
    total.wall_us += part.wall_us;
    total.wall_ms = total.wall_us / 1000;
}

struct DurableState<'w> {
    scheduler: Scheduler<'w>,
    connector: GraphConnector,
    ingested: BTreeSet<u64>,
    cycles_done: u64,
    snapshot_seq: u64,
}

#[allow(clippy::too_many_arguments)]
fn write_snapshot(
    dir: &Path,
    state: &DurableState<'_>,
    journal: &mut Journal,
    trace: &TraceLog,
) -> Result<u64, JournalError> {
    let seq = state.snapshot_seq;
    let digest = graph_digest(&state.connector.graph);
    let payload = SnapshotPayload {
        seq,
        cycles_done: state.cycles_done,
        kg_digest: digest,
        ingested: state.ingested.iter().copied().collect(),
        scheduler: state.scheduler.checkpoint(),
        kb: KnowledgeBase {
            graph: state.connector.graph.clone(),
            search: state.connector.search.clone(),
        },
    };
    // Atomic publish: a reader never observes a half-written sidecar under
    // the final name, and the journal marker is only appended afterwards.
    let tmp = dir.join(format!("snapshot-{seq}.json.tmp"));
    std::fs::write(&tmp, serde_json::to_vec(&payload)?)?;
    std::fs::rename(&tmp, snapshot_path(dir, seq))?;
    journal.append(&JournalRecord::Snapshot {
        seq,
        cycles_done: state.cycles_done,
        kg_digest: digest,
    })?;
    trace.record(TraceEvent::SnapshotTaken {
        seq,
        cycles_done: state.cycles_done,
        kg_digest: digest,
    });
    Ok(digest)
}

/// Run (or resume) a durable ingestion in `dir` up to simulated `until_ms`.
///
/// Fresh directories start every source at [`DEFAULT_START_MS`]. Existing
/// directories are recovered: the journal is replayed (tolerating a torn
/// tail), the newest snapshot whose sidecar loads and digest verifies is
/// restored, and the scheduler re-runs deterministically from that frontier.
/// Calling this again over a completed directory with the same horizon is a
/// no-op that returns the same digest.
pub fn run_durable(
    system: &SystemConfig,
    sched_config: &SchedulerConfig,
    dir: &Path,
    until_ms: u64,
    opts: &DurableOptions,
) -> Result<DurableReport, JournalError> {
    std::fs::create_dir_all(dir)?;
    let world = World::generate(system.world.clone());
    let web = SimulatedWeb::with_faults(
        world,
        standard_sources(system.articles_per_source),
        system.seed,
        system.faults,
    );
    let trace = TraceLog::new();
    let journal_path = dir.join("journal.log");

    let mut resumed_from = None;
    let mut replayed_records = 0;
    let mut torn_tail = false;

    let (mut journal, mut state) = if journal_path.exists() {
        let replayed = journal::replay(&journal_path)?;
        replayed_records = replayed.records.len();
        torn_tail = replayed.torn_tail;
        // Newest snapshot that is actually intact wins; older ones are the
        // fallback if its sidecar was lost with the crash.
        let mut restored = None;
        for (seq, _cycles, digest) in replayed.snapshots().into_iter().rev() {
            if let Ok(payload) = load_snapshot(dir, seq) {
                if payload.kg_digest == digest && graph_digest(&payload.kb.graph) == digest {
                    restored = Some(payload);
                    break;
                }
            }
        }
        let journal = Journal::open_after_replay(&journal_path, &replayed)?;
        let state = match restored {
            Some(payload) => {
                resumed_from = Some(payload.seq);
                DurableState {
                    snapshot_seq: payload.seq,
                    cycles_done: payload.cycles_done,
                    ingested: payload.ingested.into_iter().collect(),
                    scheduler: Scheduler::restore(&web, payload.scheduler),
                    connector: GraphConnector::with_state(payload.kb.graph, payload.kb.search),
                }
            }
            None => DurableState {
                scheduler: Scheduler::new(&web, sched_config.clone(), DEFAULT_START_MS),
                connector: GraphConnector::new(),
                ingested: BTreeSet::new(),
                cycles_done: 0,
                snapshot_seq: 0,
            },
        };
        trace.record(TraceEvent::JournalReplayed {
            records: replayed_records,
            torn_tail,
            resumed_from_snapshot: resumed_from,
        });
        (journal, state)
    } else {
        (
            Journal::create(&journal_path)?,
            DurableState {
                scheduler: Scheduler::new(&web, sched_config.clone(), DEFAULT_START_MS),
                connector: GraphConnector::new(),
                ingested: BTreeSet::new(),
                cycles_done: 0,
                snapshot_seq: 0,
            },
        )
    };

    let records_at_start = journal.records_written();
    if let Some(after) = opts.crash_after_records {
        journal.set_crash_after(records_at_start + after, opts.crash_torn_tail);
    }

    let registry = ParserRegistry::new();
    let extractor = crate::gazetteer_extractor(&web, &system.training);
    let mut metrics = PipelineMetrics::default();
    let mut cycles_run = 0u64;
    let mut reports_ingested = 0usize;
    let mut skipped_duplicates = 0usize;
    let mut seen_reboots = state.scheduler.stats.reboot_events.len();
    let mut seen_breaker_events = state.scheduler.stats.breaker_events.len();

    while let Some(fired) = state.scheduler.step_due(until_ms) {
        // Surface new scheduler events in the structured trace.
        for event in &state.scheduler.stats.breaker_events[seen_breaker_events..] {
            trace.record(TraceEvent::BreakerTransition {
                source: event.source.clone(),
                at_ms: event.at_ms,
                from: event.from.to_string(),
                to: event.to.to_string(),
                reason: event.reason.clone(),
            });
        }
        seen_breaker_events = state.scheduler.stats.breaker_events.len();
        for event in &state.scheduler.stats.reboot_events[seen_reboots..] {
            trace.record(TraceEvent::SchedulerReboot {
                source: event.source.clone(),
                due_ms: event.due_ms,
                error: event.error.clone(),
            });
        }
        seen_reboots = state.scheduler.stats.reboot_events.len();

        // Dedup whole reports by combined content hash, then ingest the
        // batch through the deterministic sequential pipeline.
        let mut batch = Vec::new();
        let mut newly_ingested = Vec::new();
        for (source, key, hash, pages) in group_reports(fired.reports) {
            if !state.ingested.insert(hash) {
                skipped_duplicates += 1;
                continue;
            }
            newly_ingested.push((hash, source, key));
            batch.extend(pages);
        }
        if !batch.is_empty() {
            let out = run_sequential(
                batch,
                &registry,
                &extractor,
                std::mem::take(&mut state.connector),
                &system.pipeline,
            );
            state.connector = out.connector;
            absorb_metrics(&mut metrics, &out.metrics);
            reports_ingested += out.metrics.connected;
        }

        for (content_hash, source, report_key) in newly_ingested {
            journal.append(&JournalRecord::Ingested {
                content_hash,
                source,
                report_key,
            })?;
        }
        journal.append(&JournalRecord::Cycle {
            source: fired.source,
            due_ms: fired.due_ms,
            new_reports: fired.new_reports,
            pages_fetched: fired.pages_fetched,
            error: fired.error,
        })?;

        state.cycles_done += 1;
        cycles_run += 1;
        if opts.snapshot_every_cycles > 0 && state.cycles_done % opts.snapshot_every_cycles == 0 {
            state.snapshot_seq += 1;
            write_snapshot(dir, &state, &mut journal, &trace)?;
        }
    }

    // Seal the run with a final snapshot (unless this call was a pure no-op
    // resume of an already-complete directory).
    if cycles_run > 0 || state.snapshot_seq == 0 {
        state.snapshot_seq += 1;
        write_snapshot(dir, &state, &mut journal, &trace)?;
    }

    Ok(DurableReport {
        cycles_run,
        reports_ingested,
        records_appended: journal.records_written() - records_at_start,
        skipped_duplicates,
        kg_digest: graph_digest(&state.connector.graph),
        resumed_from_snapshot: resumed_from,
        replayed_records,
        torn_tail,
        stats: state.scheduler.stats.clone(),
        metrics,
        trace,
    })
}
